"""Programmatic AST-building API.

The paper (section 5) notes that besides the concrete syntax, HipHop.js
offers "an API to directly build abstract syntax trees from within
JavaScript", enabling on-the-fly program construction.  This module is the
Python analogue: a set of ergonomic constructors so reactive programs can
be assembled without going through the parser.

Example — the classic ABRO::

    from repro.lang import dsl as hh

    ABRO = hh.module(
        "ABRO", "in A, in B, in R, out O",
        hh.loopeach(hh.sig("R"),
            hh.seq(hh.par(hh.await_(hh.sig("A")), hh.await_(hh.sig("B"))),
                   hh.emit("O"))),
    )

Expression fragments accept either :class:`~repro.lang.expr.Expr` values,
plain Python literals (wrapped in ``Lit``), or strings, which are parsed
with the surface-syntax expression grammar.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.signals import LOCAL, SignalDecl, VarDecl

ExprLike = Union[E.Expr, str, int, float, bool, None]
DelayLike = Union[A.Delay, ExprLike]
StmtLike = Union[A.Stmt, Sequence[A.Stmt]]


def expr(value: ExprLike) -> E.Expr:
    """Coerce a value to an expression.

    Strings are parsed with the embedded expression grammar (so
    ``expr("login.now && name.nowval.length >= 2")`` works); other Python
    scalars become literals.
    """
    if isinstance(value, E.Expr):
        return value
    if isinstance(value, str):
        from repro.syntax.parser import parse_expression

        return parse_expression(value)
    return E.Lit(value)


def value_expr(value: ExprLike) -> E.Expr:
    """Like :func:`expr` but strings are literals, not parsed source."""
    if isinstance(value, E.Expr):
        return value
    return E.Lit(value)


def sig(name: str, kind: str = E.NOW) -> E.SigRef:
    """``sig("login")`` is ``login.now``; pass ``kind`` for other accesses."""
    return E.SigRef(name, kind)


def nowval(name: str) -> E.SigRef:
    return E.SigRef(name, E.NOWVAL)


def preval(name: str) -> E.SigRef:
    return E.SigRef(name, E.PREVAL)


def pre(name: str) -> E.SigRef:
    return E.SigRef(name, E.PRE)


def host(fn: Callable[[E.EvalEnv], Any], deps: Iterable[str] = (), label: str = "<hostcall>") -> E.HostCall:
    """Wrap an opaque Python callable as an expression; ``deps`` lists the
    signals whose current-instant value/status it reads."""
    return E.HostCall(fn, deps, label)


# -- delays -----------------------------------------------------------------


def delay(guard: DelayLike, immediate: bool = False, count: ExprLike = None) -> A.Delay:
    if isinstance(guard, A.Delay):
        return guard
    return A.Delay(expr(guard), immediate, None if count is None else expr(count))


def immediate(guard: DelayLike) -> A.Delay:
    d = delay(guard)
    return A.Delay(d.expr, True, d.count, d.loc)


def count(n: ExprLike, guard: DelayLike) -> A.Delay:
    d = delay(guard)
    return A.Delay(d.expr, d.immediate, expr(n), d.loc)


# -- statements ---------------------------------------------------------------


def _stmt(value: StmtLike) -> A.Stmt:
    if isinstance(value, A.Stmt):
        return value
    return seq(*value)


def nothing() -> A.Nothing:
    return A.Nothing()


def pause() -> A.Pause:
    return A.Pause()


def halt() -> A.Halt:
    return A.Halt()


def emit(signal: str, value: ExprLike = ...) -> A.Emit:
    """``emit("S")`` is a pure emission; ``emit("S", v)`` a valued one.

    ``v`` may be an expression, a parseable string, or a literal.  To emit
    a *string literal*, pass ``E.Lit("...")`` or use :func:`emit_value`.
    """
    if value is ...:
        return A.Emit(signal)
    return A.Emit(signal, expr(value))


def emit_value(signal: str, value: Any) -> A.Emit:
    """Emit with a literal Python value (never parsed)."""
    return A.Emit(signal, E.Lit(value))


def sustain(signal: str, value: ExprLike = ...) -> A.Sustain:
    if value is ...:
        return A.Sustain(signal)
    return A.Sustain(signal, expr(value))


def atom(*body: Union[A.HostStmt, Callable[[E.EvalEnv], Any]], deps: Iterable[str] = ()) -> A.Atom:
    """A host-statement block.  Bare callables are wrapped as
    ``ExprStmt(HostCall(...))`` with the given signal ``deps``."""
    stmts: List[A.HostStmt] = []
    for item in body:
        if isinstance(item, A.HostStmt):
            stmts.append(item)
        else:
            stmts.append(A.ExprStmt(E.HostCall(item, deps, label=getattr(item, "__name__", "<atom>"))))
    return A.Atom(stmts)


def assign(name: str, value: ExprLike) -> A.Assign:
    return A.Assign(name, expr(value))


def seq(*items: StmtLike) -> A.Stmt:
    flat: List[A.Stmt] = []
    for item in items:
        stmt = _stmt(item)
        if isinstance(stmt, A.Seq):
            flat.extend(stmt.items)
        else:
            flat.append(stmt)
    if not flat:
        return A.Nothing()
    if len(flat) == 1:
        return flat[0]
    return A.Seq(flat)


def par(*branches: StmtLike) -> A.Stmt:
    """``fork {} par {}``."""
    items = [_stmt(b) for b in branches]
    if not items:
        return A.Nothing()
    if len(items) == 1:
        return items[0]
    return A.Par(items)


fork = par


def loop(*body: StmtLike) -> A.Loop:
    return A.Loop(seq(*body))


def if_(test: ExprLike, then: StmtLike, orelse: Optional[StmtLike] = None) -> A.If:
    return A.If(expr(test), _stmt(then), None if orelse is None else _stmt(orelse))


def present(signal: str, then: StmtLike, orelse: Optional[StmtLike] = None) -> A.If:
    """Esterel's ``present S then p else q`` as an ``if`` on ``S.now``."""
    return if_(sig(signal), then, orelse)


def suspend(guard: DelayLike, *body: StmtLike) -> A.Suspend:
    return A.Suspend(delay(guard), seq(*body))


def abort(guard: DelayLike, *body: StmtLike) -> A.Abort:
    return A.Abort(delay(guard), seq(*body))


def weakabort(guard: DelayLike, *body: StmtLike) -> A.WeakAbort:
    return A.WeakAbort(delay(guard), seq(*body))


def await_(guard: DelayLike) -> A.Await:
    return A.Await(delay(guard))


def await_count(n: ExprLike, guard: DelayLike) -> A.Await:
    return A.Await(count(n, guard))


def every(guard: DelayLike, *body: StmtLike) -> A.Every:
    return A.Every(delay(guard), seq(*body))


def do_every(body: StmtLike, guard: DelayLike) -> A.DoEvery:
    return A.DoEvery(_stmt(body), delay(guard))


def loopeach(guard: DelayLike, *body: StmtLike) -> A.DoEvery:
    """Esterel's ``loop … each d``: run the body now, restart on ``d``."""
    return A.DoEvery(seq(*body), delay(guard))


def trap(label: str, *body: StmtLike) -> A.Trap:
    return A.Trap(label, seq(*body))


def break_(label: str) -> A.Break:
    return A.Break(label)


def local(decls: Union[str, Sequence[SignalDecl]], *body: StmtLike) -> A.Local:
    """Declare local signals; ``decls`` may be a declaration string like
    ``"freeze, restart, tmo=0"``."""
    if isinstance(decls, str):
        decls = parse_signal_decls(decls, LOCAL)
    return A.Local(list(decls), seq(*body))


def run(module: Union[str, A.Module], bindings: Optional[Dict[str, str]] = None,
        **var_args: ExprLike) -> A.Run:
    """``run M(sig as connected)`` is ``run(M, {"sig": "connected"})``;
    ``var`` parameters are passed as keyword arguments."""
    return A.Run(module, bindings, {k: value_expr(v) for k, v in var_args.items()})


def exec_(
    start: Callable[[A.ExecContext], None],
    signal: Optional[str] = None,
    kill: Optional[Callable[[A.ExecContext], None]] = None,
    on_suspend: Optional[Callable[[A.ExecContext], None]] = None,
    on_resume: Optional[Callable[[A.ExecContext], None]] = None,
    name: str = "async",
) -> A.Exec:
    """The ``async … kill …`` statement (named ``exec_`` here because
    ``async`` is a Python keyword)."""
    return A.Exec(start, signal, kill, on_suspend, on_resume, name)


async_ = exec_


# -- interfaces ----------------------------------------------------------------


def parse_signal_decls(text: str, default_direction: str = LOCAL) -> List[SignalDecl]:
    """Parse a compact interface string: ``"in name='', in login, out s"``.

    Each comma-separated entry is ``[in|out|inout] name [= expr]``.
    """
    from repro.syntax.parser import parse_interface_fragment

    return parse_interface_fragment(text, default_direction)


def module(
    name: str,
    interface: Union[str, Sequence[SignalDecl]],
    *body: StmtLike,
    variables: Sequence[VarDecl] = (),
    implements: Optional[Sequence[SignalDecl]] = None,
) -> A.Module:
    """Build a module.  ``interface`` may be a declaration string.

    ``implements`` prepends another module's interface (the paper's
    ``implements ${Main.interface}``).
    """
    if isinstance(interface, str):
        decls = parse_signal_decls(interface, LOCAL) if interface.strip() else []
    else:
        decls = list(interface)
    if implements is not None:
        have = {d.name for d in decls}
        decls = [d for d in implements if d.name not in have] + decls
    return A.Module(name, decls, seq(*body), variables)


def signal_decl(
    name: str,
    direction: str = LOCAL,
    init: ExprLike = ...,
    combine: Optional[Callable[[Any, Any], Any]] = None,
) -> SignalDecl:
    return SignalDecl(name, direction, None if init is ... else value_expr(init), combine)


def var_decl(name: str, init: ExprLike = ...) -> VarDecl:
    return VarDecl(name, None if init is ... else value_expr(init))
