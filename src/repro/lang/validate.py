"""Static validation of kernel programs.

Runs between macro expansion and circuit translation.  Checks:

* every signal referenced by an expression, ``emit`` or ``async`` is in
  scope;
* ``emit`` does not target a pure ``in`` signal (inputs are set by the
  environment only; ``inout`` is the two-way form);
* every ``break L`` is enclosed by a trap labelled ``L``;
* no ``loop`` body can terminate in the instant it starts (instantaneous
  loops diverge; Esterel and HipHop reject them statically).

The instantaneous-termination analysis computes, per statement, the set of
completion behaviours reachable in the statement's first instant: the
token ``0`` for normal termination plus the labels of escaping traps.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

from repro.errors import InstantaneousLoopError, ValidationError
from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.signals import IN, SignalDecl

#: instantaneous-completion token for normal termination
TERMINATE = 0


def instant_codes(stmt: A.Stmt) -> FrozenSet:
    """Completion behaviours possibly reachable in the starting instant.

    Returns a set containing ``0`` if the statement may terminate
    instantly, and each trap label it may instantly escape through.
    """
    if isinstance(stmt, (A.Nothing, A.Emit, A.Atom)):
        return frozenset({TERMINATE})
    if isinstance(stmt, (A.Pause, A.Exec)):
        return frozenset()
    if isinstance(stmt, A.Break):
        return frozenset({stmt.label})
    if isinstance(stmt, A.Seq):
        codes: Set = set()
        for item in stmt.items:
            item_codes = instant_codes(item)
            codes |= set(item_codes) - {TERMINATE}
            if TERMINATE not in item_codes:
                return frozenset(codes)
        return frozenset(codes | {TERMINATE})
    if isinstance(stmt, A.Par):
        codes = set()
        all_terminate = True
        for branch in stmt.branches:
            branch_codes = instant_codes(branch)
            codes |= set(branch_codes) - {TERMINATE}
            if TERMINATE not in branch_codes:
                all_terminate = False
        if all_terminate and stmt.branches:
            codes.add(TERMINATE)
        return frozenset(codes)
    if isinstance(stmt, A.Loop):
        return frozenset(instant_codes(stmt.body) - {TERMINATE})
    if isinstance(stmt, A.If):
        return instant_codes(stmt.then) | instant_codes(stmt.orelse)
    if isinstance(stmt, A.Suspend):
        return instant_codes(stmt.body)
    if isinstance(stmt, A.Abort):
        codes = set(instant_codes(stmt.body))
        if stmt.delay.immediate:
            codes.add(TERMINATE)
        return frozenset(codes)
    if isinstance(stmt, A.Trap):
        codes = set(instant_codes(stmt.body))
        if TERMINATE in codes or stmt.label in codes:
            codes.discard(stmt.label)
            codes.add(TERMINATE)
        return frozenset(codes)
    if isinstance(stmt, A.Local):
        return instant_codes(stmt.body)
    # Surface statements (validation may be called pre-expansion in tests)
    if isinstance(stmt, (A.Halt, A.Sustain)):
        return frozenset()
    if isinstance(stmt, A.Await):
        return frozenset({TERMINATE}) if stmt.delay.immediate else frozenset()
    if isinstance(stmt, A.WeakAbort):
        codes = set(instant_codes(stmt.body))
        if stmt.delay.immediate:
            codes.add(TERMINATE)
        return frozenset(codes)
    if isinstance(stmt, (A.Every,)):
        return frozenset()
    if isinstance(stmt, A.DoEvery):
        return frozenset(instant_codes(stmt.body) - {TERMINATE})
    if isinstance(stmt, A.LinkedRun):
        # Precomputed at expansion time from the callee's expanded body.
        return stmt.codes
    if isinstance(stmt, A.Run):
        # Unlinked run: be conservative (may terminate instantly).
        return frozenset({TERMINATE})
    raise ValidationError(f"cannot analyse {type(stmt).__name__}")


class _Scope:
    """Lexical signal scope chain."""

    def __init__(self, decls: Iterable[SignalDecl], parent: Optional["_Scope"] = None):
        self.decls = {d.name: d for d in decls}
        self.parent = parent

    def find(self, name: str) -> Optional[SignalDecl]:
        scope: Optional[_Scope] = self
        while scope is not None:
            decl = scope.decls.get(name)
            if decl is not None:
                return decl
            scope = scope.parent
        return None


class Validator:
    """Single-pass validator; collects all problems before raising."""

    def __init__(self) -> None:
        self.errors: List[str] = []

    def error(self, message: str, loc=None) -> None:
        if loc is not None:
            message = f"{loc}: {message}"
        self.errors.append(message)

    # ------------------------------------------------------------------

    def validate_module(self, module: A.Module, body: Optional[A.Stmt] = None) -> None:
        """Validate ``module`` (or an already-expanded ``body`` for it)."""
        scope = _Scope(module.interface)
        stmt = body if body is not None else module.body
        self._check(stmt, scope, traps=())
        if self.errors:
            raise ValidationError(
                f"module {module.name}: " + "; ".join(self.errors)
            )

    def validate_statement(self, stmt: A.Stmt, decls: Iterable[SignalDecl]) -> None:
        self._check(stmt, _Scope(decls), traps=())
        if self.errors:
            raise ValidationError("; ".join(self.errors))

    # ------------------------------------------------------------------

    def _check_expr(self, expr: E.Expr, scope: _Scope, loc) -> None:
        for name, _kind in expr.signal_deps():
            if scope.find(name) is None:
                self.error(f"unknown signal {name!r}", loc)

    def _check_emit_target(self, name: str, scope: _Scope, loc) -> None:
        decl = scope.find(name)
        if decl is None:
            self.error(f"emit of unknown signal {name!r}", loc)
        elif decl.direction == IN:
            self.error(
                f"cannot emit input signal {name!r} from the program "
                "(declare it inout if both sides set it)",
                loc,
            )

    def _check(self, stmt: A.Stmt, scope: _Scope, traps: tuple) -> None:
        loc = stmt.loc
        if isinstance(stmt, (A.Nothing, A.Pause, A.Halt)):
            return
        if isinstance(stmt, (A.Emit, A.Sustain)):
            self._check_emit_target(stmt.signal, scope, loc)
            if stmt.value is not None:
                self._check_expr(stmt.value, scope, loc)
            return
        if isinstance(stmt, A.Atom):
            for host in stmt.body:
                for expr in host.exprs():
                    self._check_expr(expr, scope, loc)
            return
        if isinstance(stmt, A.Seq):
            for item in stmt.items:
                self._check(item, scope, traps)
            return
        if isinstance(stmt, A.Par):
            for branch in stmt.branches:
                self._check(branch, scope, traps)
            return
        if isinstance(stmt, A.Loop):
            if TERMINATE in instant_codes(stmt.body):
                raise InstantaneousLoopError(
                    f"{loc or ''} loop body may terminate instantly; "
                    "insert a pause or an await"
                )
            self._check(stmt.body, scope, traps)
            return
        if isinstance(stmt, A.If):
            self._check_expr(stmt.test, scope, loc)
            self._check(stmt.then, scope, traps)
            self._check(stmt.orelse, scope, traps)
            return
        if isinstance(stmt, (A.Suspend, A.Abort, A.WeakAbort)):
            self._check_expr(stmt.delay.expr, scope, loc)
            if stmt.delay.count is not None:
                self._check_expr(stmt.delay.count, scope, loc)
            self._check(stmt.body, scope, traps)
            return
        if isinstance(stmt, A.Await):
            self._check_expr(stmt.delay.expr, scope, loc)
            if stmt.delay.count is not None:
                self._check_expr(stmt.delay.count, scope, loc)
            return
        if isinstance(stmt, (A.Every, A.DoEvery)):
            self._check_expr(stmt.delay.expr, scope, loc)
            if stmt.delay.count is not None:
                self._check_expr(stmt.delay.count, scope, loc)
            self._check(stmt.body, scope, traps)
            return
        if isinstance(stmt, A.Trap):
            self._check(stmt.body, scope, traps + (stmt.label,))
            return
        if isinstance(stmt, A.Break):
            if stmt.label not in traps:
                self.error(f"break to unknown label {stmt.label!r}", loc)
            return
        if isinstance(stmt, A.Local):
            for decl in stmt.decls:
                if decl.init is not None:
                    self._check_expr(decl.init, scope, loc)
            self._check(stmt.body, _Scope(stmt.decls, scope), traps)
            return
        if isinstance(stmt, A.Exec):
            if stmt.signal is not None:
                self._check_emit_target(stmt.signal, scope, loc)
            for expr in stmt.exprs():
                # `this` is bound inside async bodies; signals still checked
                self._check_expr(expr, scope, loc)
            return
        if isinstance(stmt, A.LinkedRun):
            # The callee body was validated in its own scope when the
            # template facts were computed; here only the boundary is
            # checked: every bound caller signal exists, and interface
            # signals the callee emits must not land on pure inputs.
            for iface_name, caller_name in sorted(stmt.bindings.items()):
                decl = scope.find(caller_name)
                if decl is None:
                    self.error(
                        f"run {stmt.module.name}: unknown signal "
                        f"{caller_name!r} bound to {iface_name!r}",
                        loc,
                    )
                elif iface_name in stmt.emitted and decl.direction == IN:
                    self.error(
                        f"run {stmt.module.name}: callee emits {iface_name!r} "
                        f"but it is bound to pure input signal {caller_name!r} "
                        "(declare it inout if both sides set it)",
                        loc,
                    )
            return
        if isinstance(stmt, A.Run):
            self.error(
                "run statement survived expansion (validate after linking)", loc
            )
            return
        self.error(f"unknown statement {type(stmt).__name__}", loc)


def validate_module(module: A.Module, body: Optional[A.Stmt] = None) -> None:
    Validator().validate_module(module, body)


def validate_statement(stmt: A.Stmt, decls: Iterable[SignalDecl]) -> None:
    Validator().validate_statement(stmt, decls)
