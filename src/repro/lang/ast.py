"""Statement AST of the HipHop language.

The surface statements mirror the paper's constructs; a lowering pass
(:mod:`repro.compiler.expand`) reduces them to the *kernel* subset that the
circuit translator understands:

    nothing, pause, emit, atom, seq, par, loop, if, suspend,
    abort (strong), trap/exit, local signal, exec (async)

Surface-only statements: ``halt``, ``sustain``, ``await``, ``every``,
``do/every``, ``loopeach``, ``weakabort``, ``run``.

All nodes support structural equality (for parser/pretty round-trip tests),
``children()`` traversal, and ``rename_signals`` (used when inlining
``run M(sig as other)``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.errors import SourceLocation
from repro.lang import expr as E
from repro.lang.signals import SignalDecl, VarDecl

# ---------------------------------------------------------------------------
# Host statements (the bodies of `atom { ... }` / `hop { ... }` blocks)
# ---------------------------------------------------------------------------


class HostStmt:
    """A statement of the embedded host mini-language."""

    __slots__ = ("loc",)

    def __init__(self, loc: Optional[SourceLocation] = None):
        self.loc = loc

    def exprs(self) -> Iterable[E.Expr]:
        return ()

    def rename_signals(self, mapping: Dict[str, str]) -> "HostStmt":
        raise NotImplementedError

    def execute(self, env: E.EvalEnv) -> None:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class Assign(HostStmt):
    """``name = expr`` — write a host variable in the machine frame."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: E.Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.name = name
        self.value = value

    def exprs(self) -> Iterable[E.Expr]:
        return (self.value,)

    def rename_signals(self, mapping: Dict[str, str]) -> "HostStmt":
        return Assign(self.name, self.value.rename_signals(mapping), self.loc)

    def execute(self, env: E.EvalEnv) -> None:
        env.assign(self.name, self.value.eval(env))

    def _key(self) -> tuple:
        return (self.name, self.value)

    def __repr__(self) -> str:
        return f"Assign({self.name} = {self.value!r})"


class TargetAssign(HostStmt):
    """``target = expr`` where target is an attribute or index lvalue
    (``this.sec = 0`` in the paper's Timer)."""

    __slots__ = ("target", "value")

    def __init__(self, target: E.Expr, value: E.Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.target = target
        self.value = value

    def exprs(self) -> Iterable[E.Expr]:
        return (self.target, self.value)

    def rename_signals(self, mapping: Dict[str, str]) -> "HostStmt":
        return TargetAssign(
            self.target.rename_signals(mapping), self.value.rename_signals(mapping), self.loc
        )

    def execute(self, env: E.EvalEnv) -> None:
        E.assign_target(self.target, self.value.eval(env), env)

    def _key(self) -> tuple:
        return (self.target, self.value)

    def __repr__(self) -> str:
        return f"TargetAssign({self.target!r} = {self.value!r})"


class ExprStmt(HostStmt):
    """Evaluate an expression for its side effect (typically a host call)."""

    __slots__ = ("value",)

    def __init__(self, value: E.Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.value = value

    def exprs(self) -> Iterable[E.Expr]:
        return (self.value,)

    def rename_signals(self, mapping: Dict[str, str]) -> "HostStmt":
        return ExprStmt(self.value.rename_signals(mapping), self.loc)

    def execute(self, env: E.EvalEnv) -> None:
        self.value.eval(env)

    def _key(self) -> tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return f"ExprStmt({self.value!r})"


# ---------------------------------------------------------------------------
# Delays
# ---------------------------------------------------------------------------


class Delay:
    """A temporal guard, as used by ``await``, ``abort``, ``every``...

    ``expr`` is the boolean host expression tested at each instant.
    ``immediate`` makes the guard checked already at the starting instant
    (paper section 3: abort/weakabort are *delayed* by default).
    ``count`` makes the guard fire only at the *n*-th occurrence
    (``await count(n, e)``); the count expression is evaluated when the
    guarded statement starts.
    """

    __slots__ = ("expr", "immediate", "count", "loc")

    def __init__(
        self,
        expr: E.Expr,
        immediate: bool = False,
        count: Optional[E.Expr] = None,
        loc: Optional[SourceLocation] = None,
    ):
        self.expr = expr
        self.immediate = immediate
        self.count = count
        self.loc = loc

    @property
    def counted(self) -> bool:
        return self.count is not None

    def rename_signals(self, mapping: Dict[str, str]) -> "Delay":
        return Delay(
            self.expr.rename_signals(mapping),
            self.immediate,
            None if self.count is None else self.count.rename_signals(mapping),
            self.loc,
        )

    def exprs(self) -> Iterable[E.Expr]:
        yield self.expr
        if self.count is not None:
            yield self.count

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Delay)
            and self.expr == other.expr
            and self.immediate == other.immediate
            and self.count == other.count
        )

    def __hash__(self) -> int:
        return hash((self.expr, self.immediate, self.count))

    def __repr__(self) -> str:
        flags = ", immediate" if self.immediate else ""
        count = f", count={self.count!r}" if self.count is not None else ""
        return f"Delay({self.expr!r}{flags}{count})"


def sig_delay(name: str, immediate: bool = False, count: Optional[E.Expr] = None) -> Delay:
    """Delay on a signal's presence: ``Delay(name.now)``."""
    return Delay(E.SigRef(name, E.NOW), immediate, count)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of temporal statements."""

    __slots__ = ("loc",)

    KERNEL = False  # kernel statements survive macro expansion

    def __init__(self, loc: Optional[SourceLocation] = None):
        self.loc = loc

    def children(self) -> Iterable["Stmt"]:
        return ()

    def exprs(self) -> Iterable[E.Expr]:
        """Expressions directly attached to this node (not descendants)."""
        return ()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        raise NotImplementedError

    # Traversal helpers ------------------------------------------------------

    def walk(self) -> Iterable["Stmt"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class Nothing(Stmt):
    """The empty statement; terminates instantly."""

    KERNEL = True
    __slots__ = ()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return self

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "Nothing()"


class Pause(Stmt):
    """Stop for the current instant; terminate at the next one (Esterel's
    ``pause``, HipHop's ``yield``)."""

    KERNEL = True
    __slots__ = ()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return self

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "Pause()"


class Halt(Stmt):
    """Stop forever (``loop { pause }``)."""

    __slots__ = ()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return self

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "Halt()"


class Emit(Stmt):
    """``emit S`` or ``emit S(expr)`` — set S present this instant, and
    update its value if an expression is given.  Instantaneous."""

    KERNEL = True
    __slots__ = ("signal", "value")

    def __init__(self, signal: str, value: Optional[E.Expr] = None, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.signal = signal
        self.value = value

    def exprs(self) -> Iterable[E.Expr]:
        if self.value is not None:
            yield self.value

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Emit(
            mapping.get(self.signal, self.signal),
            None if self.value is None else self.value.rename_signals(mapping),
            self.loc,
        )

    def _key(self) -> tuple:
        return (self.signal, self.value)

    def __repr__(self) -> str:
        value = "" if self.value is None else f"({self.value!r})"
        return f"Emit({self.signal}{value})"


class Sustain(Stmt):
    """``sustain S(expr)`` — emit S at every instant forever."""

    __slots__ = ("signal", "value")

    def __init__(self, signal: str, value: Optional[E.Expr] = None, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.signal = signal
        self.value = value

    def exprs(self) -> Iterable[E.Expr]:
        if self.value is not None:
            yield self.value

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Sustain(
            mapping.get(self.signal, self.signal),
            None if self.value is None else self.value.rename_signals(mapping),
            self.loc,
        )

    def _key(self) -> tuple:
        return (self.signal, self.value)

    def __repr__(self) -> str:
        value = "" if self.value is None else f"({self.value!r})"
        return f"Sustain({self.signal}{value})"


class Atom(Stmt):
    """``hop { ... }`` — run host statements instantaneously.

    The body is either a list of :class:`HostStmt` or an opaque Python
    callable taking the evaluation environment (with declared signal
    dependencies carried by :class:`repro.lang.expr.HostCall` wrappers).
    """

    KERNEL = True
    __slots__ = ("body",)

    def __init__(self, body: Sequence[HostStmt], loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.body = list(body)

    def exprs(self) -> Iterable[E.Expr]:
        for stmt in self.body:
            yield from stmt.exprs()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Atom([s.rename_signals(mapping) for s in self.body], self.loc)

    def _key(self) -> tuple:
        return (tuple(self.body),)

    def __repr__(self) -> str:
        return f"Atom({self.body!r})"


class Seq(Stmt):
    """Sequential composition (instantaneous control transfer)."""

    KERNEL = True
    __slots__ = ("items",)

    def __init__(self, items: Sequence[Stmt], loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.items = list(items)

    def children(self) -> Iterable[Stmt]:
        return tuple(self.items)

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Seq([s.rename_signals(mapping) for s in self.items], self.loc)

    def _key(self) -> tuple:
        return (tuple(self.items),)

    def __repr__(self) -> str:
        return f"Seq({self.items!r})"


class Par(Stmt):
    """``fork { } par { }`` — synchronous parallel; terminates when all
    branches have terminated."""

    KERNEL = True
    __slots__ = ("branches",)

    def __init__(self, branches: Sequence[Stmt], loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.branches = list(branches)

    def children(self) -> Iterable[Stmt]:
        return tuple(self.branches)

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Par([s.rename_signals(mapping) for s in self.branches], self.loc)

    def _key(self) -> tuple:
        return (tuple(self.branches),)

    def __repr__(self) -> str:
        return f"Par({self.branches!r})"


class Loop(Stmt):
    """``loop { body }`` — restart the body instantly when it terminates.
    The body must not be able to terminate in its starting instant."""

    KERNEL = True
    __slots__ = ("body",)

    def __init__(self, body: Stmt, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.body = body

    def children(self) -> Iterable[Stmt]:
        return (self.body,)

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Loop(self.body.rename_signals(mapping), self.loc)

    def _key(self) -> tuple:
        return (self.body,)

    def __repr__(self) -> str:
        return f"Loop({self.body!r})"


class If(Stmt):
    """``if (expr) { } else { }`` — instantaneous branch on a host test."""

    KERNEL = True
    __slots__ = ("test", "then", "orelse")

    def __init__(
        self,
        test: E.Expr,
        then: Stmt,
        orelse: Optional[Stmt] = None,
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.test = test
        self.then = then
        self.orelse = orelse if orelse is not None else Nothing()

    def children(self) -> Iterable[Stmt]:
        return (self.then, self.orelse)

    def exprs(self) -> Iterable[E.Expr]:
        yield self.test

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return If(
            self.test.rename_signals(mapping),
            self.then.rename_signals(mapping),
            self.orelse.rename_signals(mapping),
            self.loc,
        )

    def _key(self) -> tuple:
        return (self.test, self.then, self.orelse)

    def __repr__(self) -> str:
        return f"If({self.test!r}, {self.then!r}, {self.orelse!r})"


class Suspend(Stmt):
    """``suspend (delay) { body }`` — freeze the body (hold its state,
    don't run it) at instants where the delay guard holds."""

    KERNEL = True
    __slots__ = ("delay", "body")

    def __init__(self, delay: Delay, body: Stmt, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.delay = delay
        self.body = body

    def children(self) -> Iterable[Stmt]:
        return (self.body,)

    def exprs(self) -> Iterable[E.Expr]:
        return self.delay.exprs()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Suspend(self.delay.rename_signals(mapping), self.body.rename_signals(mapping), self.loc)

    def _key(self) -> tuple:
        return (self.delay, self.body)

    def __repr__(self) -> str:
        return f"Suspend({self.delay!r}, {self.body!r})"


class Abort(Stmt):
    """``abort (delay) { body }`` — strong preemption: kill the body the
    instant the guard holds (the body does not run at that instant)."""

    KERNEL = True
    __slots__ = ("delay", "body")

    def __init__(self, delay: Delay, body: Stmt, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.delay = delay
        self.body = body

    def children(self) -> Iterable[Stmt]:
        return (self.body,)

    def exprs(self) -> Iterable[E.Expr]:
        return self.delay.exprs()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Abort(self.delay.rename_signals(mapping), self.body.rename_signals(mapping), self.loc)

    def _key(self) -> tuple:
        return (self.delay, self.body)

    def __repr__(self) -> str:
        return f"Abort({self.delay!r}, {self.body!r})"


class WeakAbort(Stmt):
    """``weakabort (delay) { body }`` — weak preemption: the body *does*
    run at the abortion instant, then is discarded (paper section 3)."""

    __slots__ = ("delay", "body")

    def __init__(self, delay: Delay, body: Stmt, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.delay = delay
        self.body = body

    def children(self) -> Iterable[Stmt]:
        return (self.body,)

    def exprs(self) -> Iterable[E.Expr]:
        return self.delay.exprs()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return WeakAbort(self.delay.rename_signals(mapping), self.body.rename_signals(mapping), self.loc)

    def _key(self) -> tuple:
        return (self.delay, self.body)

    def __repr__(self) -> str:
        return f"WeakAbort({self.delay!r}, {self.body!r})"


class Await(Stmt):
    """``await (delay)`` — pause until the guard holds."""

    __slots__ = ("delay",)

    def __init__(self, delay: Delay, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.delay = delay

    def exprs(self) -> Iterable[E.Expr]:
        return self.delay.exprs()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Await(self.delay.rename_signals(mapping), self.loc)

    def _key(self) -> tuple:
        return (self.delay,)

    def __repr__(self) -> str:
        return f"Await({self.delay!r})"


class Every(Stmt):
    """``every (delay) { body }`` — preemptive loop: wait for the guard,
    run the body, and kill/restart it at every further occurrence."""

    __slots__ = ("delay", "body")

    def __init__(self, delay: Delay, body: Stmt, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.delay = delay
        self.body = body

    def children(self) -> Iterable[Stmt]:
        return (self.body,)

    def exprs(self) -> Iterable[E.Expr]:
        return self.delay.exprs()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Every(self.delay.rename_signals(mapping), self.body.rename_signals(mapping), self.loc)

    def _key(self) -> tuple:
        return (self.delay, self.body)

    def __repr__(self) -> str:
        return f"Every({self.delay!r}, {self.body!r})"


class DoEvery(Stmt):
    """``do { body } every (delay)`` — run the body immediately, then
    restart it at every occurrence of the guard (paper's Identity module)."""

    __slots__ = ("body", "delay")

    def __init__(self, body: Stmt, delay: Delay, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.body = body
        self.delay = delay

    def children(self) -> Iterable[Stmt]:
        return (self.body,)

    def exprs(self) -> Iterable[E.Expr]:
        return self.delay.exprs()

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return DoEvery(self.body.rename_signals(mapping), self.delay.rename_signals(mapping), self.loc)

    def _key(self) -> tuple:
        return (self.body, self.delay)

    def __repr__(self) -> str:
        return f"DoEvery({self.body!r}, {self.delay!r})"


class Trap(Stmt):
    """A labelled statement: ``L: stmt``.  ``break L`` inside exits it
    instantly, weakly preempting concurrent branches (paper section 4.1)."""

    KERNEL = True
    __slots__ = ("label", "body")

    def __init__(self, label: str, body: Stmt, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.label = label
        self.body = body

    def children(self) -> Iterable[Stmt]:
        return (self.body,)

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return Trap(self.label, self.body.rename_signals(mapping), self.loc)

    def _key(self) -> tuple:
        return (self.label, self.body)

    def __repr__(self) -> str:
        return f"Trap({self.label}, {self.body!r})"


class Break(Stmt):
    """``break L`` — exit the enclosing :class:`Trap` labelled ``L``."""

    KERNEL = True
    __slots__ = ("label",)

    def __init__(self, label: str, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.label = label

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        return self

    def _key(self) -> tuple:
        return (self.label,)

    def __repr__(self) -> str:
        return f"Break({self.label})"


class Local(Stmt):
    """``signal S1, S2=init; body`` — declare body-scoped signals."""

    KERNEL = True
    __slots__ = ("decls", "body")

    def __init__(self, decls: Sequence[SignalDecl], body: Stmt, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.decls = list(decls)
        self.body = body

    def children(self) -> Iterable[Stmt]:
        return (self.body,)

    def exprs(self) -> Iterable[E.Expr]:
        for decl in self.decls:
            if decl.init is not None:
                yield decl.init

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        # Locally declared names shadow outer ones: strip them from the map.
        inner = {k: v for k, v in mapping.items() if k not in {d.name for d in self.decls}}
        decls = [
            SignalDecl(
                d.name,
                d.direction,
                None if d.init is None else d.init.rename_signals(mapping),
                d.combine,
                d.loc,
            )
            for d in self.decls
        ]
        return Local(decls, self.body.rename_signals(inner), self.loc)

    def _key(self) -> tuple:
        return (tuple(self.decls), self.body)

    def __repr__(self) -> str:
        return f"Local({self.decls!r}, {self.body!r})"


class Run(Stmt):
    """``run M(...)`` — instantiate module ``M`` in place.

    ``bindings`` maps the callee's interface signal names to caller-scope
    names (``sig as connected`` gives ``{"sig": "connected"}``); interface
    signals absent from the map bind to the same name (the ``...`` form).
    ``var_args`` provides values for the module's ``var`` parameters.
    ``module`` may be a module name (resolved against a
    :class:`ModuleTable`) or a :class:`Module` object.
    """

    __slots__ = ("module", "bindings", "var_args")

    def __init__(
        self,
        module: Union[str, "Module"],
        bindings: Optional[Dict[str, str]] = None,
        var_args: Optional[Dict[str, E.Expr]] = None,
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.module = module
        self.bindings = dict(bindings or {})
        self.var_args = dict(var_args or {})

    def exprs(self) -> Iterable[E.Expr]:
        return tuple(self.var_args.values())

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        bindings = {k: mapping.get(v, v) for k, v in self.bindings.items()}
        # Unbound interface signals implicitly bind by name; make the
        # renaming explicit for them so inlining later still lands on the
        # caller's (renamed) environment.
        module = self.module
        if isinstance(module, Module):
            for decl in module.interface:
                if decl.name not in bindings and decl.name in mapping:
                    bindings[decl.name] = mapping[decl.name]
        else:
            for name, target in mapping.items():
                if name not in bindings:
                    bindings[name] = target
        var_args = {k: v.rename_signals(mapping) for k, v in self.var_args.items()}
        return Run(self.module, bindings, var_args, self.loc)

    def _module_key(self) -> Any:
        return self.module if isinstance(self.module, str) else self.module.name

    def _key(self) -> tuple:
        return (self._module_key(), tuple(sorted(self.bindings.items())),
                tuple(sorted(self.var_args.items())))

    def __repr__(self) -> str:
        return f"Run({self._module_key()}, bindings={self.bindings!r})"


class LinkedRun(Stmt):
    """A ``run M(...)`` resolved for *sub-circuit linking* instead of
    inlining: the callee compiles once to a relocatable template circuit
    (see :mod:`repro.compiler.link`) and each instantiation splices a
    renumbered copy in O(interface) work.

    Produced by the expander under ``CompileOptions(link=True)`` for
    modules that qualify (no ``var`` parameters, no free trap labels, no
    free signal names, no frame variables introduced by nested inlining).

    ``bindings`` is the *total* interface map (every interface signal name
    → caller-scope name); ``body`` is the callee's expanded kernel body in
    callee-side names; ``codes``/``sensitive``/``emitted`` are facts
    precomputed at expansion time so validation and reincarnation analysis
    need not reopen the body.
    """

    KERNEL = True
    __slots__ = ("module", "bindings", "body", "codes", "sensitive", "emitted")

    def __init__(
        self,
        module: "Module",
        bindings: Dict[str, str],
        body: Stmt,
        codes: FrozenSet,
        sensitive: bool,
        emitted: FrozenSet,
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.module = module
        self.bindings = dict(bindings)
        self.body = body
        self.codes = frozenset(codes)
        self.sensitive = sensitive
        self.emitted = frozenset(emitted)

    # The body is callee-side: caller traversals must not descend into it
    # (its names live in the callee's scope, not the caller's).

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        bindings = {k: mapping.get(v, v) for k, v in self.bindings.items()}
        return LinkedRun(
            self.module, bindings, self.body, self.codes,
            self.sensitive, self.emitted, self.loc,
        )

    def _key(self) -> tuple:
        return (self.module.name, tuple(sorted(self.bindings.items())))

    def __repr__(self) -> str:
        return f"LinkedRun({self.module.name}, bindings={self.bindings!r})"


class ExecContext:
    """The object bound to ``this`` inside an ``async`` body.

    Provided by the runtime; declared here so actions can be written and
    type-checked against it.
    """

    def notify(self, value: Any = None) -> None:
        """Complete the async block, emitting its completion signal (with
        ``value``) in the next reaction."""
        raise NotImplementedError

    def react(self, inputs: Optional[Dict[str, Any]] = None) -> None:
        """Queue a machine reaction with the given input signals."""
        raise NotImplementedError

    @property
    def machine(self) -> Any:
        raise NotImplementedError


#: An exec action: either an opaque Python callable taking the
#: :class:`ExecContext`, or a list of host statements executed with
#: ``this`` bound to the context (the textual ``async { ... }`` form).
ExecAction = Union[Callable[["ExecContext"], None], Sequence[HostStmt]]


class Exec(Stmt):
    """``async [S] { start } kill { cleanup }`` — the paper's bridge from
    synchronous to asynchronous code (section 2.2.4).

    ``start`` fires when the statement starts.  If ``signal`` is given the
    statement stays selected until the host calls ``ctx.notify(v)``, which
    emits the signal (valued with ``v``) and terminates the statement;
    without a signal the statement never terminates on its own (like the
    Timer of the paper).  ``kill`` runs whenever the statement is preempted
    while active — automatic resource cleanup.  ``suspend``/``resume``
    hooks mirror HipHop's suspend handling.

    Actions are either Python callables (receiving the
    :class:`ExecContext`) or lists of :class:`HostStmt` evaluated with
    ``this`` bound to the context — the latter is what the surface parser
    produces, and supports signal renaming when the module is inlined.
    """

    KERNEL = True

    _counter = 0

    __slots__ = ("signal", "start", "kill", "on_suspend", "on_resume", "name", "uid")

    def __init__(
        self,
        start: ExecAction,
        signal: Optional[str] = None,
        kill: Optional[ExecAction] = None,
        on_suspend: Optional[ExecAction] = None,
        on_resume: Optional[ExecAction] = None,
        name: str = "async",
        loc: Optional[SourceLocation] = None,
        uid: Optional[int] = None,
    ):
        super().__init__(loc)
        self.start = self._coerce(start)
        self.signal = signal
        self.kill = self._coerce(kill)
        self.on_suspend = self._coerce(on_suspend)
        self.on_resume = self._coerce(on_resume)
        self.name = name
        if uid is None:
            Exec._counter += 1
            uid = Exec._counter
        self.uid = uid

    @staticmethod
    def _coerce(action: Optional[ExecAction]) -> Optional[ExecAction]:
        if action is None or callable(action):
            return action
        return list(action)

    def exprs(self) -> Iterable[E.Expr]:
        for action in (self.start, self.kill, self.on_suspend, self.on_resume):
            if isinstance(action, list):
                for stmt in action:
                    yield from stmt.exprs()

    def start_signal_deps(self) -> Iterable[str]:
        """Signals whose current-instant resolution the start action reads."""
        deps: set = set()
        if isinstance(self.start, list):
            for stmt in self.start:
                for ex in stmt.exprs():
                    deps.update(ex.current_signal_deps())
        return sorted(deps)

    @staticmethod
    def _rename_action(action: Optional[ExecAction], mapping: Dict[str, str]) -> Optional[ExecAction]:
        if isinstance(action, list):
            return [s.rename_signals(mapping) for s in action]
        return action

    def rename_signals(self, mapping: Dict[str, str]) -> "Stmt":
        signal = self.signal
        if signal is not None:
            signal = mapping.get(signal, signal)
        return Exec(
            self._rename_action(self.start, mapping),
            signal,
            self._rename_action(self.kill, mapping),
            self._rename_action(self.on_suspend, mapping),
            self._rename_action(self.on_resume, mapping),
            self.name,
            self.loc,
            uid=self.uid,
        )

    def _key(self) -> tuple:
        return (self.uid,)

    def __repr__(self) -> str:
        sig = f" {self.signal}" if self.signal else ""
        return f"Exec({self.name}{sig})"


# ---------------------------------------------------------------------------
# Modules
# ---------------------------------------------------------------------------


class Module:
    """A HipHop module: named interface + body.

    :param interface: interface signals in declaration order.
    :param variables: ``var`` parameters.
    """

    __slots__ = ("name", "interface", "variables", "body", "loc")

    def __init__(
        self,
        name: str,
        interface: Sequence[SignalDecl],
        body: Stmt,
        variables: Sequence[VarDecl] = (),
        loc: Optional[SourceLocation] = None,
    ):
        self.name = name
        self.interface = list(interface)
        self.variables = list(variables)
        self.body = body
        self.loc = loc
        seen = set()
        for decl in self.interface:
            if decl.name in seen:
                raise ValueError(f"duplicate interface signal {decl.name!r} in module {name}")
            seen.add(decl.name)

    def signal(self, name: str) -> SignalDecl:
        for decl in self.interface:
            if decl.name == name:
                return decl
        raise KeyError(name)

    @property
    def inputs(self) -> List[SignalDecl]:
        return [d for d in self.interface if d.is_input]

    @property
    def outputs(self) -> List[SignalDecl]:
        return [d for d in self.interface if d.is_output]

    def __repr__(self) -> str:
        sigs = ", ".join(f"{d.direction} {d.name}" for d in self.interface)
        return f"Module({self.name}({sigs}))"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Module)
            and self.name == other.name
            and self.interface == other.interface
            and self.variables == other.variables
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash(self.name)


class ModuleTable:
    """A name → :class:`Module` registry used to resolve ``run M(...)``."""

    def __init__(self, modules: Iterable[Module] = ()):
        self._modules: Dict[str, Module] = {}
        for module in modules:
            self.add(module)

    def add(self, module: Module) -> Module:
        self._modules[module.name] = module
        return module

    def get(self, name: str) -> Module:
        try:
            return self._modules[name]
        except KeyError:
            raise KeyError(f"unknown module {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    def __iter__(self) -> Iterable[Module]:
        return iter(self._modules.values())

    def names(self) -> List[str]:
        return sorted(self._modules)
