"""Host data-expression language.

HipHop.js delegates all data computation to JavaScript expressions embedded
in temporal statements, with signals accessed through ``S.now``, ``S.pre``,
``S.nowval`` and ``S.preval``.  We reproduce that design with a small,
self-contained expression language whose AST is defined here.  Expressions
are either parsed from the surface syntax (``repro.syntax``) or built
programmatically through the DSL (``repro.lang.dsl``).

Having our own expression AST (rather than opaque Python lambdas) is what
lets the compiler *extract signal dependencies* automatically — the paper's
"data dependencies to other augmented nets" (section 5.1) — so that the
microscheduler can order every emitter of a signal before every reader of
its value within an instant.

Python callables can still be embedded via :class:`HostCall`; their signal
dependencies must then be declared explicitly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.errors import HipHopError, SourceLocation

# Signal access kinds -------------------------------------------------------

NOW = "now"          # presence status in the current instant (bool)
PRE = "pre"          # presence status in the previous instant (bool)
NOWVAL = "nowval"    # value in the current instant
PREVAL = "preval"    # value in the previous instant
SIGNAME = "signame"  # the signal's bound name (a string, statically known)

ACCESS_KINDS = (NOW, PRE, NOWVAL, PREVAL, SIGNAME)

#: Access kinds whose evaluation requires the *current* instant's resolution
#: of the signal, and therefore create intra-instant data dependencies.
CURRENT_INSTANT_KINDS = frozenset({NOW, NOWVAL})


class EvalEnv:
    """Evaluation environment protocol for expressions.

    The runtime supplies a concrete implementation; tests may use
    :class:`DictEnv`.
    """

    def signal_now(self, name: str) -> bool:
        raise NotImplementedError

    def signal_pre(self, name: str) -> bool:
        raise NotImplementedError

    def signal_nowval(self, name: str) -> Any:
        raise NotImplementedError

    def signal_preval(self, name: str) -> Any:
        raise NotImplementedError

    def signal_name(self, name: str) -> str:
        """The externally visible name a (possibly renamed) signal is bound
        to; mirrors HipHop's ``S.signame``."""
        return name

    def lookup(self, name: str) -> Any:
        """Resolve a free identifier (module ``var``, ``let`` binding, or a
        host-environment binding)."""
        raise NotImplementedError

    def assign(self, name: str, value: Any) -> None:
        raise NotImplementedError


class DictEnv(EvalEnv):
    """Simple dictionary-backed environment, mainly for tests.

    ``signals`` maps a signal name to a ``(now, pre, nowval, preval)``
    tuple; ``bindings`` holds free identifiers.
    """

    def __init__(
        self,
        signals: Optional[Dict[str, Tuple[bool, bool, Any, Any]]] = None,
        bindings: Optional[Dict[str, Any]] = None,
    ):
        self.signals = dict(signals or {})
        self.bindings = dict(bindings or {})

    def signal_now(self, name: str) -> bool:
        return self.signals[name][0]

    def signal_pre(self, name: str) -> bool:
        return self.signals[name][1]

    def signal_nowval(self, name: str) -> Any:
        return self.signals[name][2]

    def signal_preval(self, name: str) -> Any:
        return self.signals[name][3]

    def lookup(self, name: str) -> Any:
        return self.bindings[name]

    def assign(self, name: str, value: Any) -> None:
        self.bindings[name] = value


class EvalError(HipHopError):
    """Raised when a host expression fails to evaluate."""


# ---------------------------------------------------------------------------
# Expression AST
# ---------------------------------------------------------------------------


class Expr:
    """Base class for host expressions."""

    __slots__ = ("loc",)

    def __init__(self, loc: Optional[SourceLocation] = None):
        self.loc = loc

    # -- analysis ----------------------------------------------------------

    def signal_deps(self) -> FrozenSet[Tuple[str, str]]:
        """All ``(signal_name, access_kind)`` pairs this expression reads."""
        acc: set = set()
        self._collect_deps(acc)
        return frozenset(acc)

    def current_signal_deps(self) -> FrozenSet[str]:
        """Names of signals whose *current-instant* status or value is read.

        These are the dependencies that constrain microscheduling.
        """
        return frozenset(
            name for name, kind in self.signal_deps() if kind in CURRENT_INSTANT_KINDS
        )

    def free_vars(self) -> FrozenSet[str]:
        acc: set = set()
        self._collect_vars(acc)
        return frozenset(acc)

    def _collect_deps(self, acc: set) -> None:
        for child in self.children():
            child._collect_deps(acc)

    def _collect_vars(self, acc: set) -> None:
        for child in self.children():
            child._collect_vars(acc)

    def children(self) -> Iterable["Expr"]:
        return ()

    # -- renaming (used when inlining `run M(...)` with `as` bindings) -----

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        """Return a copy with signal references renamed per ``mapping``.

        Names absent from the mapping are kept unchanged.
        """
        raise NotImplementedError

    # -- evaluation ---------------------------------------------------------

    def eval(self, env: EvalEnv) -> Any:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class Lit(Expr):
    """A literal constant (number, string, bool, ``None``)."""

    __slots__ = ("value",)

    def __init__(self, value: Any, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.value = value

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return self

    def eval(self, env: EvalEnv) -> Any:
        return self.value

    def _key(self) -> tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


class Var(Expr):
    """A free identifier resolved in the evaluation environment."""

    __slots__ = ("name",)

    def __init__(self, name: str, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.name = name

    def _collect_vars(self, acc: set) -> None:
        acc.add(self.name)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return self

    def eval(self, env: EvalEnv) -> Any:
        try:
            return env.lookup(self.name)
        except KeyError:
            raise EvalError(f"unbound identifier {self.name!r}") from None

    def _key(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return f"Var({self.name})"


class SigRef(Expr):
    """A signal access: ``S.now``, ``S.pre``, ``S.nowval``, ``S.preval`` or
    ``S.signame``."""

    __slots__ = ("signal", "kind")

    def __init__(self, signal: str, kind: str, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        if kind not in ACCESS_KINDS:
            raise ValueError(f"bad signal access kind: {kind!r}")
        self.signal = signal
        self.kind = kind

    def _collect_deps(self, acc: set) -> None:
        acc.add((self.signal, self.kind))

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        new = mapping.get(self.signal, self.signal)
        if new == self.signal:
            return self
        return SigRef(new, self.kind, self.loc)

    def eval(self, env: EvalEnv) -> Any:
        if self.kind == NOW:
            return env.signal_now(self.signal)
        if self.kind == PRE:
            return env.signal_pre(self.signal)
        if self.kind == NOWVAL:
            return env.signal_nowval(self.signal)
        if self.kind == PREVAL:
            return env.signal_preval(self.signal)
        return env.signal_name(self.signal)

    def _key(self) -> tuple:
        return (self.signal, self.kind)

    def __repr__(self) -> str:
        return f"SigRef({self.signal}.{self.kind})"


_BINOPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "===": lambda a, b: type(a) is type(b) and a == b,
    "!==": lambda a, b: not (type(a) is type(b) and a == b),
}

_SHORT_CIRCUIT = ("&&", "||")


class BinOp(Expr):
    """A binary operation.  ``&&`` and ``||`` short-circuit like in
    JavaScript (returning one of the operands, not a coerced boolean)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        if op not in _BINOPS and op not in _SHORT_CIRCUIT:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Iterable[Expr]:
        return (self.left, self.right)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return BinOp(
            self.op,
            self.left.rename_signals(mapping),
            self.right.rename_signals(mapping),
            self.loc,
        )

    def eval(self, env: EvalEnv) -> Any:
        if self.op == "&&":
            left = self.left.eval(env)
            return self.right.eval(env) if truthy(left) else left
        if self.op == "||":
            left = self.left.eval(env)
            return left if truthy(left) else self.right.eval(env)
        try:
            return _BINOPS[self.op](self.left.eval(env), self.right.eval(env))
        except EvalError:
            raise
        except Exception as exc:  # noqa: BLE001 - host data errors surface uniformly
            raise EvalError(f"error evaluating {self.op!r}: {exc}") from exc

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"BinOp({self.left!r} {self.op} {self.right!r})"


class UnOp(Expr):
    """Unary ``!`` or ``-`` or ``+``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        if op not in ("!", "-", "+"):
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> Iterable[Expr]:
        return (self.operand,)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return UnOp(self.op, self.operand.rename_signals(mapping), self.loc)

    def eval(self, env: EvalEnv) -> Any:
        value = self.operand.eval(env)
        if self.op == "!":
            return not truthy(value)
        if self.op == "-":
            return -value
        return +value

    def _key(self) -> tuple:
        return (self.op, self.operand)

    def __repr__(self) -> str:
        return f"UnOp({self.op}{self.operand!r})"


class Cond(Expr):
    """The ternary conditional ``test ? then : else``."""

    __slots__ = ("test", "then", "orelse")

    def __init__(self, test: Expr, then: Expr, orelse: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.test = test
        self.then = then
        self.orelse = orelse

    def children(self) -> Iterable[Expr]:
        return (self.test, self.then, self.orelse)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return Cond(
            self.test.rename_signals(mapping),
            self.then.rename_signals(mapping),
            self.orelse.rename_signals(mapping),
            self.loc,
        )

    def eval(self, env: EvalEnv) -> Any:
        return self.then.eval(env) if truthy(self.test.eval(env)) else self.orelse.eval(env)

    def _key(self) -> tuple:
        return (self.test, self.then, self.orelse)


class Attr(Expr):
    """Attribute access ``obj.name`` on a host value."""

    __slots__ = ("obj", "name")

    def __init__(self, obj: Expr, name: str, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.obj = obj
        self.name = name

    def children(self) -> Iterable[Expr]:
        return (self.obj,)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return Attr(self.obj.rename_signals(mapping), self.name, self.loc)

    def eval(self, env: EvalEnv) -> Any:
        obj = self.obj.eval(env)
        # JavaScript-style convenience: `.length` works on strings/sequences.
        if self.name == "length" and not hasattr(obj, "length"):
            try:
                return len(obj)
            except TypeError as exc:
                raise EvalError(f"no .length on {obj!r}") from exc
        if isinstance(obj, dict):
            try:
                return obj[self.name]
            except KeyError:
                raise EvalError(f"no property {self.name!r} on {obj!r}") from None
        try:
            return getattr(obj, self.name)
        except AttributeError as exc:
            raise EvalError(str(exc)) from exc

    def _key(self) -> tuple:
        return (self.obj, self.name)


class Index(Expr):
    """Subscript access ``obj[key]``."""

    __slots__ = ("obj", "key")

    def __init__(self, obj: Expr, key: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.obj = obj
        self.key = key

    def children(self) -> Iterable[Expr]:
        return (self.obj, self.key)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return Index(self.obj.rename_signals(mapping), self.key.rename_signals(mapping), self.loc)

    def eval(self, env: EvalEnv) -> Any:
        try:
            return self.obj.eval(env)[self.key.eval(env)]
        except EvalError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise EvalError(f"index error: {exc}") from exc

    def _key(self) -> tuple:
        return (self.obj, self.key)


class Call(Expr):
    """A call ``fn(args...)`` where ``fn`` is any expression evaluating to a
    Python callable (typically a :class:`Var` bound in the host frame)."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: Expr, args: List[Expr], loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.fn = fn
        self.args = list(args)

    def children(self) -> Iterable[Expr]:
        return (self.fn, *self.args)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return Call(
            self.fn.rename_signals(mapping),
            [a.rename_signals(mapping) for a in self.args],
            self.loc,
        )

    def eval(self, env: EvalEnv) -> Any:
        fn = self.fn.eval(env)
        args = [a.eval(env) for a in self.args]
        try:
            return fn(*args)
        except EvalError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise EvalError(f"host call failed: {exc}") from exc

    def _key(self) -> tuple:
        return (self.fn, tuple(self.args))


class ArrayLit(Expr):
    """An array literal ``[a, b, c]`` (evaluates to a Python list)."""

    __slots__ = ("items",)

    def __init__(self, items: List[Expr], loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.items = list(items)

    def children(self) -> Iterable[Expr]:
        return tuple(self.items)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return ArrayLit([i.rename_signals(mapping) for i in self.items], self.loc)

    def eval(self, env: EvalEnv) -> Any:
        return [i.eval(env) for i in self.items]

    def _key(self) -> tuple:
        return (tuple(self.items),)


class ObjectLit(Expr):
    """An object literal ``{a: 1, b: x}`` (evaluates to a Python dict).

    Keys may be plain strings or expressions for JavaScript computed keys:
    ``{[time.signame]: this.sec}`` (paper's Timer module).
    """

    __slots__ = ("fields",)

    def __init__(
        self,
        fields: List[Tuple[Union[str, "Expr"], Expr]],
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.fields = list(fields)

    def children(self) -> Iterable[Expr]:
        out: List[Expr] = []
        for key, value in self.fields:
            if isinstance(key, Expr):
                out.append(key)
            out.append(value)
        return tuple(out)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return ObjectLit(
            [
                (k.rename_signals(mapping) if isinstance(k, Expr) else k,
                 v.rename_signals(mapping))
                for k, v in self.fields
            ],
            self.loc,
        )

    def eval(self, env: EvalEnv) -> Any:
        result = {}
        for key, value in self.fields:
            name = key.eval(env) if isinstance(key, Expr) else key
            result[name] = value.eval(env)
        return result

    def _key(self) -> tuple:
        return (tuple(self.fields),)


class Lambda(Expr):
    """An arrow function ``(a, b) => expr`` — evaluates to a Python
    closure over the current environment (used for promise callbacks such
    as ``.then(v => this.notify(v))``)."""

    __slots__ = ("params", "body")

    def __init__(self, params: List[str], body: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        self.params = list(params)
        self.body = body

    def children(self) -> Iterable[Expr]:
        return (self.body,)

    def _collect_vars(self, acc: set) -> None:
        inner: set = set()
        self.body._collect_vars(inner)
        acc.update(inner - set(self.params))

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return Lambda(self.params, self.body.rename_signals(mapping), self.loc)

    def eval(self, env: EvalEnv) -> Any:
        params, body = self.params, self.body

        def closure(*args: Any) -> Any:
            return body.eval(ScopedEnv(env, dict(zip(params, args))))

        closure.__name__ = "lambda_" + "_".join(params or ("void",))
        return closure

    def _key(self) -> tuple:
        return (tuple(self.params), self.body)


class IncDec(Expr):
    """Prefix ``++x`` / ``--x`` on a variable or attribute target; mutates
    the target and returns the new value (the paper's ``++this.sec``)."""

    __slots__ = ("op", "target")

    def __init__(self, op: str, target: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        if op not in ("++", "--"):
            raise ValueError(f"bad inc/dec operator {op!r}")
        if not isinstance(target, (Var, Attr, Index)):
            raise ValueError("++/-- requires a variable, attribute or index target")
        self.op = op
        self.target = target

    def children(self) -> Iterable[Expr]:
        return (self.target,)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return IncDec(self.op, self.target.rename_signals(mapping), self.loc)

    def eval(self, env: EvalEnv) -> Any:
        delta = 1 if self.op == "++" else -1
        new = self.target.eval(env) + delta
        assign_target(self.target, new, env)
        return new

    def _key(self) -> tuple:
        return (self.op, self.target)


class AssignExpr(Expr):
    """A JavaScript assignment expression ``target = value``; assigns and
    returns the value (``this.sec = 0`` inside a call argument)."""

    __slots__ = ("target", "value")

    def __init__(self, target: Expr, value: Expr, loc: Optional[SourceLocation] = None):
        super().__init__(loc)
        if not isinstance(target, (Var, Attr, Index)):
            raise ValueError("invalid assignment target")
        self.target = target
        self.value = value

    def children(self) -> Iterable[Expr]:
        return (self.target, self.value)

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        return AssignExpr(
            self.target.rename_signals(mapping), self.value.rename_signals(mapping), self.loc
        )

    def eval(self, env: EvalEnv) -> Any:
        value = self.value.eval(env)
        assign_target(self.target, value, env)
        return value

    def _key(self) -> tuple:
        return (self.target, self.value)


def assign_target(target: Expr, value: Any, env: EvalEnv) -> None:
    """Store ``value`` into an lvalue expression (Var, Attr or Index)."""
    if isinstance(target, Var):
        env.assign(target.name, value)
    elif isinstance(target, Attr):
        obj = target.obj.eval(env)
        if isinstance(obj, dict):
            obj[target.name] = value
        else:
            setattr(obj, target.name, value)
    elif isinstance(target, Index):
        target.obj.eval(env)[target.key.eval(env)] = value
    else:
        raise EvalError(f"not an assignable target: {target!r}")


class ScopedEnv(EvalEnv):
    """An environment layering local bindings over a base environment
    (lambda parameters, ``this`` inside async bodies...)."""

    def __init__(self, base: EvalEnv, bindings: Dict[str, Any]):
        self.base = base
        self.bindings = bindings

    def signal_now(self, name: str) -> bool:
        return self.base.signal_now(name)

    def signal_pre(self, name: str) -> bool:
        return self.base.signal_pre(name)

    def signal_nowval(self, name: str) -> Any:
        return self.base.signal_nowval(name)

    def signal_preval(self, name: str) -> Any:
        return self.base.signal_preval(name)

    def signal_name(self, name: str) -> str:
        return self.base.signal_name(name)

    def lookup(self, name: str) -> Any:
        if name in self.bindings:
            return self.bindings[name]
        return self.base.lookup(name)

    def assign(self, name: str, value: Any) -> None:
        if name in self.bindings:
            self.bindings[name] = value
        else:
            self.base.assign(name, value)


class HostCall(Expr):
    """Escape hatch: an opaque Python callable with *declared* signal
    dependencies.

    ``fn`` receives the :class:`EvalEnv` and returns the expression value.
    ``deps`` lists the signals whose current-instant resolution ``fn``
    reads; forgetting one breaks the microscheduling guarantee, so prefer
    structured expressions when possible.
    """

    __slots__ = ("fn", "deps", "label")

    def __init__(
        self,
        fn: Callable[[EvalEnv], Any],
        deps: Iterable[str] = (),
        label: str = "<hostcall>",
        loc: Optional[SourceLocation] = None,
    ):
        super().__init__(loc)
        self.fn = fn
        self.deps = tuple(deps)
        self.label = label

    def _collect_deps(self, acc: set) -> None:
        for name in self.deps:
            acc.add((name, NOWVAL))
            acc.add((name, NOW))

    def rename_signals(self, mapping: Dict[str, str]) -> "Expr":
        if not any(d in mapping for d in self.deps):
            return self
        renamed = tuple(mapping.get(d, d) for d in self.deps)
        inverse = {mapping.get(d, d): d for d in self.deps}
        fn = self.fn

        def wrapped(env: EvalEnv, _fn=fn, _inv=inverse) -> Any:
            return _fn(_RenamingEnv(env, _inv))

        return HostCall(wrapped, renamed, self.label, self.loc)

    def eval(self, env: EvalEnv) -> Any:
        try:
            return self.fn(env)
        except EvalError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise EvalError(f"{self.label} failed: {exc}") from exc

    def _key(self) -> tuple:
        return (id(self.fn), self.deps, self.label)


class _RenamingEnv(EvalEnv):
    """Presents renamed signals under their original names to a HostCall."""

    def __init__(self, base: EvalEnv, inner_to_outer: Dict[str, str]):
        self._base = base
        # inner_to_outer maps the *new* outer name back to nothing; we need
        # original -> outer, so invert.
        self._map = {orig: outer for outer, orig in inner_to_outer.items()}

    def _resolve(self, name: str) -> str:
        return self._map.get(name, name)

    def signal_now(self, name: str) -> bool:
        return self._base.signal_now(self._resolve(name))

    def signal_pre(self, name: str) -> bool:
        return self._base.signal_pre(self._resolve(name))

    def signal_nowval(self, name: str) -> Any:
        return self._base.signal_nowval(self._resolve(name))

    def signal_preval(self, name: str) -> Any:
        return self._base.signal_preval(self._resolve(name))

    def signal_name(self, name: str) -> str:
        return self._base.signal_name(self._resolve(name))

    def lookup(self, name: str) -> Any:
        return self._base.lookup(name)

    def assign(self, name: str, value: Any) -> None:
        self._base.assign(name, value)


def truthy(value: Any) -> bool:
    """JavaScript-flavoured truthiness (``0``, ``""``, ``None``, ``False``
    and ``NaN`` are false; everything else true — including empty lists,
    matching JS arrays)."""
    if value is None or value is False:
        return False
    if value is True:
        return True
    if isinstance(value, (int, float)):
        return value != 0 and value == value  # NaN is falsy
    if isinstance(value, str):
        return value != ""
    return True


def const(value: Any) -> Lit:
    """Shorthand for a literal expression."""
    return Lit(value)


TRUE = Lit(True)
FALSE = Lit(False)
NULL = Lit(None)
