"""Generic AST transformations: host-variable renaming.

When a module with ``var`` parameters is instantiated twice
(``run Button(d=TryDelay, ...)`` twice in the pillbox), each instance needs
its own frame slot for ``d``.  The linker alpha-renames the module's
declared variables to fresh frame names; this module implements the
underlying expression/statement renaming.
"""

from __future__ import annotations

from typing import Dict

from repro.lang import ast as A
from repro.lang import expr as E


def rename_vars_expr(node: E.Expr, mapping: Dict[str, str]) -> E.Expr:
    """Return ``node`` with free :class:`~repro.lang.expr.Var` occurrences
    renamed per ``mapping``.  Lambda parameters shadow outer names."""
    if isinstance(node, E.Var):
        new = mapping.get(node.name)
        return node if new is None else E.Var(new, node.loc)
    if isinstance(node, (E.Lit, E.SigRef, E.HostCall)):
        return node
    if isinstance(node, E.BinOp):
        return E.BinOp(
            node.op,
            rename_vars_expr(node.left, mapping),
            rename_vars_expr(node.right, mapping),
            node.loc,
        )
    if isinstance(node, E.UnOp):
        return E.UnOp(node.op, rename_vars_expr(node.operand, mapping), node.loc)
    if isinstance(node, E.Cond):
        return E.Cond(
            rename_vars_expr(node.test, mapping),
            rename_vars_expr(node.then, mapping),
            rename_vars_expr(node.orelse, mapping),
            node.loc,
        )
    if isinstance(node, E.Attr):
        return E.Attr(rename_vars_expr(node.obj, mapping), node.name, node.loc)
    if isinstance(node, E.Index):
        return E.Index(
            rename_vars_expr(node.obj, mapping), rename_vars_expr(node.key, mapping), node.loc
        )
    if isinstance(node, E.Call):
        return E.Call(
            rename_vars_expr(node.fn, mapping),
            [rename_vars_expr(a, mapping) for a in node.args],
            node.loc,
        )
    if isinstance(node, E.ArrayLit):
        return E.ArrayLit([rename_vars_expr(i, mapping) for i in node.items], node.loc)
    if isinstance(node, E.ObjectLit):
        return E.ObjectLit(
            [
                (rename_vars_expr(k, mapping) if isinstance(k, E.Expr) else k,
                 rename_vars_expr(v, mapping))
                for k, v in node.fields
            ],
            node.loc,
        )
    if isinstance(node, E.Lambda):
        inner = {k: v for k, v in mapping.items() if k not in node.params}
        return E.Lambda(node.params, rename_vars_expr(node.body, inner), node.loc)
    if isinstance(node, E.IncDec):
        return E.IncDec(node.op, rename_vars_expr(node.target, mapping), node.loc)
    if isinstance(node, E.AssignExpr):
        return E.AssignExpr(
            rename_vars_expr(node.target, mapping),
            rename_vars_expr(node.value, mapping),
            node.loc,
        )
    raise TypeError(f"unknown expression node {type(node).__name__}")


def rename_vars_host(stmt: A.HostStmt, mapping: Dict[str, str]) -> A.HostStmt:
    if isinstance(stmt, A.Assign):
        return A.Assign(
            mapping.get(stmt.name, stmt.name), rename_vars_expr(stmt.value, mapping), stmt.loc
        )
    if isinstance(stmt, A.TargetAssign):
        return A.TargetAssign(
            rename_vars_expr(stmt.target, mapping),
            rename_vars_expr(stmt.value, mapping),
            stmt.loc,
        )
    if isinstance(stmt, A.ExprStmt):
        return A.ExprStmt(rename_vars_expr(stmt.value, mapping), stmt.loc)
    raise TypeError(f"unknown host statement {type(stmt).__name__}")


def _rename_action(action, mapping: Dict[str, str]):
    if isinstance(action, list):
        return [rename_vars_host(s, mapping) for s in action]
    return action


def rename_vars_stmt(stmt: A.Stmt, mapping: Dict[str, str]) -> A.Stmt:
    """Rename free host variables in a statement tree."""
    if not mapping:
        return stmt
    rs = lambda s: rename_vars_stmt(s, mapping)  # noqa: E731
    re_ = lambda e: rename_vars_expr(e, mapping)  # noqa: E731

    def rd(delay: A.Delay) -> A.Delay:
        return A.Delay(
            re_(delay.expr),
            delay.immediate,
            None if delay.count is None else re_(delay.count),
            delay.loc,
        )

    if isinstance(stmt, (A.Nothing, A.Pause, A.Halt, A.Break)):
        return stmt
    if isinstance(stmt, A.Emit):
        return A.Emit(stmt.signal, None if stmt.value is None else re_(stmt.value), stmt.loc)
    if isinstance(stmt, A.Sustain):
        return A.Sustain(stmt.signal, None if stmt.value is None else re_(stmt.value), stmt.loc)
    if isinstance(stmt, A.Atom):
        return A.Atom([rename_vars_host(s, mapping) for s in stmt.body], stmt.loc)
    if isinstance(stmt, A.Seq):
        return A.Seq([rs(s) for s in stmt.items], stmt.loc)
    if isinstance(stmt, A.Par):
        return A.Par([rs(s) for s in stmt.branches], stmt.loc)
    if isinstance(stmt, A.Loop):
        return A.Loop(rs(stmt.body), stmt.loc)
    if isinstance(stmt, A.If):
        return A.If(re_(stmt.test), rs(stmt.then), rs(stmt.orelse), stmt.loc)
    if isinstance(stmt, A.Suspend):
        return A.Suspend(rd(stmt.delay), rs(stmt.body), stmt.loc)
    if isinstance(stmt, A.Abort):
        return A.Abort(rd(stmt.delay), rs(stmt.body), stmt.loc)
    if isinstance(stmt, A.WeakAbort):
        return A.WeakAbort(rd(stmt.delay), rs(stmt.body), stmt.loc)
    if isinstance(stmt, A.Await):
        return A.Await(rd(stmt.delay), stmt.loc)
    if isinstance(stmt, A.Every):
        return A.Every(rd(stmt.delay), rs(stmt.body), stmt.loc)
    if isinstance(stmt, A.DoEvery):
        return A.DoEvery(rs(stmt.body), rd(stmt.delay), stmt.loc)
    if isinstance(stmt, A.Trap):
        return A.Trap(stmt.label, rs(stmt.body), stmt.loc)
    if isinstance(stmt, A.Local):
        from repro.lang.signals import SignalDecl

        decls = [
            SignalDecl(d.name, d.direction, None if d.init is None else re_(d.init), d.combine, d.loc)
            for d in stmt.decls
        ]
        return A.Local(decls, rs(stmt.body), stmt.loc)
    if isinstance(stmt, A.Run):
        return A.Run(
            stmt.module,
            stmt.bindings,
            {k: re_(v) for k, v in stmt.var_args.items()},
            stmt.loc,
        )
    if isinstance(stmt, A.Exec):
        return A.Exec(
            _rename_action(stmt.start, mapping),
            stmt.signal,
            _rename_action(stmt.kill, mapping),
            _rename_action(stmt.on_suspend, mapping),
            _rename_action(stmt.on_resume, mapping),
            stmt.name,
            stmt.loc,
            uid=stmt.uid,
        )
    raise TypeError(f"unknown statement {type(stmt).__name__}")
