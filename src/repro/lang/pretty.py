"""Pretty printer: AST → concrete surface syntax.

``parse(pretty(ast))`` is structurally equal to ``ast`` for every program
the parser can produce (checked by property tests).  DSL-only constructs
with opaque Python callables (``HostCall`` expressions, callable exec
actions) cannot be rendered as source; they print as a placeholder and are
excluded from round-tripping.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast as A
from repro.lang import expr as E

_INDENT = "  "

# Binary operator precedence (higher binds tighter).
_PREC = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "===": 3,
    "!==": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_TERNARY_PREC = 0
_UNARY_PREC = 7
_POSTFIX_PREC = 8


def _literal(value: object) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        # keep floats float-shaped so round-trips preserve the token kind
        return repr(value)
    return repr(value)


def pretty_expr(node: E.Expr, prec: int = 0) -> str:
    """Render an expression, parenthesizing per ``prec`` context."""
    text, my_prec = _expr(node)
    if my_prec < prec:
        return f"({text})"
    return text


def _expr(node: E.Expr):
    if isinstance(node, E.Lit):
        return _literal(node.value), _POSTFIX_PREC
    if isinstance(node, E.Var):
        return node.name, _POSTFIX_PREC
    if isinstance(node, E.SigRef):
        return f"{node.signal}.{node.kind}", _POSTFIX_PREC
    if isinstance(node, E.BinOp):
        prec = _PREC[node.op]
        left = pretty_expr(node.left, prec)
        right = pretty_expr(node.right, prec + 1)
        return f"{left} {node.op} {right}", prec
    if isinstance(node, E.UnOp):
        return f"{node.op}{pretty_expr(node.operand, _UNARY_PREC)}", _UNARY_PREC
    if isinstance(node, E.IncDec):
        return f"{node.op}{pretty_expr(node.target, _UNARY_PREC)}", _UNARY_PREC
    if isinstance(node, E.Cond):
        test = pretty_expr(node.test, _TERNARY_PREC + 1)
        then = pretty_expr(node.then, _TERNARY_PREC)
        orelse = pretty_expr(node.orelse, _TERNARY_PREC)
        return f"{test} ? {then} : {orelse}", _TERNARY_PREC
    if isinstance(node, E.Attr):
        return f"{pretty_expr(node.obj, _POSTFIX_PREC)}.{node.name}", _POSTFIX_PREC
    if isinstance(node, E.Index):
        return (
            f"{pretty_expr(node.obj, _POSTFIX_PREC)}[{pretty_expr(node.key)}]",
            _POSTFIX_PREC,
        )
    if isinstance(node, E.Call):
        args = ", ".join(pretty_expr(a) for a in node.args)
        return f"{pretty_expr(node.fn, _POSTFIX_PREC)}({args})", _POSTFIX_PREC
    if isinstance(node, E.ArrayLit):
        return "[" + ", ".join(pretty_expr(i) for i in node.items) + "]", _POSTFIX_PREC
    if isinstance(node, E.ObjectLit):
        fields = []
        for key, value in node.fields:
            if isinstance(key, E.Expr):
                fields.append(f"[{pretty_expr(key)}]: {pretty_expr(value)}")
            else:
                fields.append(f"{key}: {pretty_expr(value)}")
        return "{" + ", ".join(fields) + "}", _POSTFIX_PREC
    if isinstance(node, E.Lambda):
        params = ", ".join(node.params)
        if len(node.params) == 1:
            return f"{node.params[0]} => {pretty_expr(node.body)}", _TERNARY_PREC
        return f"({params}) => {pretty_expr(node.body)}", _TERNARY_PREC
    if isinstance(node, E.AssignExpr):
        return (
            f"{pretty_expr(node.target, _POSTFIX_PREC)} = {pretty_expr(node.value)}",
            _TERNARY_PREC,
        )
    if isinstance(node, E.HostCall):
        return f"$hostcall(/* {node.label} */)", _POSTFIX_PREC
    raise TypeError(f"cannot pretty-print {type(node).__name__}")


def _host_stmt(stmt: A.HostStmt) -> str:
    if isinstance(stmt, A.Assign):
        return f"{stmt.name} = {pretty_expr(stmt.value)}"
    if isinstance(stmt, A.TargetAssign):
        return f"{pretty_expr(stmt.target, _POSTFIX_PREC)} = {pretty_expr(stmt.value)}"
    if isinstance(stmt, A.ExprStmt):
        return pretty_expr(stmt.value)
    raise TypeError(f"cannot pretty-print host statement {type(stmt).__name__}")


def _host_block(stmts, indent: int) -> List[str]:
    pad = _INDENT * indent
    lines = ["{"]
    for stmt in stmts:
        lines.append(f"{pad}{_INDENT}{_host_stmt(stmt)};")
    lines.append(pad + "}")
    return lines


def _delay_head(delay: A.Delay) -> str:
    if delay.count is not None:
        head = f"count({pretty_expr(delay.count)}, {pretty_expr(delay.expr)})"
    else:
        head = f"({pretty_expr(delay.expr)})"
    if delay.immediate:
        return f"immediate {head}"
    return head


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.indent + text)

    def emit_lines(self, lines: List[str], prefix: str = "") -> None:
        """Attach a multi-line fragment, first line appended to prefix."""
        self.emit(prefix + lines[0])
        for line in lines[1:]:
            self.lines.append(_INDENT * self.indent + line)

    # -- statements -----------------------------------------------------------

    def statement(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Nothing):
            self.emit("nothing;")
        elif isinstance(stmt, A.Pause):
            self.emit("yield;")
        elif isinstance(stmt, A.Halt):
            self.emit("halt;")
        elif isinstance(stmt, A.Emit):
            value = "" if stmt.value is None else f"({pretty_expr(stmt.value)})"
            if stmt.value is None:
                value = "()"
            self.emit(f"emit {stmt.signal}{value};")
        elif isinstance(stmt, A.Sustain):
            value = "()" if stmt.value is None else f"({pretty_expr(stmt.value)})"
            self.emit(f"sustain {stmt.signal}{value};")
        elif isinstance(stmt, A.Atom):
            pad = _INDENT * self.indent
            body = _host_block(stmt.body, self.indent)
            self.emit("hop " + body[0])
            self.lines.extend(pad + line for line in body[1:])
        elif isinstance(stmt, A.Seq):
            for item in stmt.items:
                self.statement(item)
        elif isinstance(stmt, A.Par):
            first = True
            for branch in stmt.branches:
                self._braced("fork" if first else "par", branch)
                first = False
        elif isinstance(stmt, A.Loop):
            self._braced("loop", stmt.body)
        elif isinstance(stmt, A.If):
            self._braced(f"if ({pretty_expr(stmt.test)})", stmt.then)
            if not isinstance(stmt.orelse, A.Nothing):
                self._braced("else", stmt.orelse)
        elif isinstance(stmt, A.Suspend):
            self._braced(f"suspend {_delay_head(stmt.delay)}", stmt.body)
        elif isinstance(stmt, A.Abort):
            self._braced(f"abort {_delay_head(stmt.delay)}", stmt.body)
        elif isinstance(stmt, A.WeakAbort):
            self._braced(f"weakabort {_delay_head(stmt.delay)}", stmt.body)
        elif isinstance(stmt, A.Await):
            delay = stmt.delay
            immediate = "immediate " if delay.immediate else ""
            if delay.count is not None:
                self.emit(
                    f"await {immediate}count({pretty_expr(delay.count)}, "
                    f"{pretty_expr(delay.expr)});"
                )
            else:
                self.emit(f"await {immediate}{pretty_expr(delay.expr, _TERNARY_PREC + 1)};")
        elif isinstance(stmt, A.Every):
            self._braced(f"every {_delay_head(stmt.delay)}", stmt.body)
        elif isinstance(stmt, A.DoEvery):
            self._braced("do", stmt.body, trailing=f" every {_delay_head(stmt.delay)}")
        elif isinstance(stmt, A.Trap):
            self._braced(f"{stmt.label}:", stmt.body)
        elif isinstance(stmt, A.Break):
            self.emit(f"break {stmt.label};")
        elif isinstance(stmt, A.Local):
            decls = []
            for decl in stmt.decls:
                text = decl.name
                if decl.init is not None:
                    text += f" = {pretty_expr(decl.init)}"
                if isinstance(decl.combine, str):
                    text += f" combine {decl.combine}"
                decls.append(text)
            self.emit(f"signal {', '.join(decls)};")
            self.statement(stmt.body)
        elif isinstance(stmt, A.Run):
            name = stmt.module if isinstance(stmt.module, str) else stmt.module.name
            args = [f"{k} as {v}" for k, v in stmt.bindings.items()]
            args += [f"{k}={pretty_expr(v)}" for k, v in stmt.var_args.items()]
            args.append("...")
            self.emit(f"run {name}({', '.join(args)});")
        elif isinstance(stmt, A.Exec):
            signal = f" {stmt.signal}" if stmt.signal else ""
            self._exec("async" + signal, stmt.start)
            if stmt.kill is not None:
                self._exec("kill", stmt.kill)
            if stmt.on_suspend is not None:
                self._exec("suspend", stmt.on_suspend)
            if stmt.on_resume is not None:
                self._exec("resume", stmt.on_resume)
        else:
            raise TypeError(f"cannot pretty-print {type(stmt).__name__}")

    def _exec(self, keyword: str, action) -> None:
        if callable(action):
            self.emit(f"{keyword} {{ /* python callable */ }}")
            return
        pad = _INDENT * self.indent
        body = _host_block(action, self.indent)
        self.emit(f"{keyword} " + body[0])
        self.lines.extend(pad + line for line in body[1:])

    def _braced(self, head: str, body: A.Stmt, trailing: str = "") -> None:
        self.emit(head + " {")
        self.indent += 1
        self.statement(body)
        self.indent -= 1
        self.emit("}" + trailing)


def pretty_statement(stmt: A.Stmt) -> str:
    printer = _Printer()
    printer.statement(stmt)
    return "\n".join(printer.lines)


def pretty_module(module: A.Module) -> str:
    entries = []
    for var in module.variables:
        if var.init is not None:
            entries.append(f"var {var.name} = {pretty_expr(var.init)}")
        else:
            entries.append(f"var {var.name}")
    for decl in module.interface:
        direction = "" if decl.direction == "inout" else decl.direction + " "
        if decl.direction == "inout":
            direction = "inout "
        init = "" if decl.init is None else f" = {pretty_expr(decl.init)}"
        combine = f" combine {decl.combine}" if isinstance(decl.combine, str) else ""
        entries.append(f"{direction}{decl.name}{init}{combine}")
    printer = _Printer()
    printer.emit(f"module {module.name}({', '.join(entries)}) {{")
    printer.indent += 1
    printer.statement(module.body)
    printer.indent -= 1
    printer.emit("}")
    return "\n".join(printer.lines)
