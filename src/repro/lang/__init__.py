"""Language layer: AST, signals, host expressions, builder DSL, validation."""

from repro.lang.signals import SignalDecl, VarDecl, IN, OUT, INOUT, LOCAL
from repro.lang import ast
from repro.lang import expr

__all__ = ["SignalDecl", "VarDecl", "IN", "OUT", "INOUT", "LOCAL", "ast", "expr"]
