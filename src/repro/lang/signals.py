"""Signal and variable interface declarations.

A HipHop module declares its interface signals as ``in``, ``out`` or
``inout``; bodies can additionally declare ``local`` signals with the
``signal`` statement.  A signal always has a presence *status* per instant
(reset to absent at every reaction) and, if used with values, a *value*
that persists across instants (paper section 2.2.1).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SourceLocation
from repro.lang import expr as E

IN = "in"
OUT = "out"
INOUT = "inout"
LOCAL = "local"

DIRECTIONS = (IN, OUT, INOUT, LOCAL)


class SignalDecl:
    """Declaration of one signal.

    :param name: the signal's name in its scope.
    :param direction: ``in``/``out``/``inout``/``local``.
    :param init: optional :class:`~repro.lang.expr.Expr` giving the initial
        value (the ``=`` form of the paper's interfaces).  Evaluated once,
        when the reactive machine (or the local scope) boots.
    :param combine: optional binary Python callable used to combine multiple
        same-instant emissions; without it, double emission is an error.
    """

    __slots__ = ("name", "direction", "init", "combine", "loc")

    def __init__(
        self,
        name: str,
        direction: str = LOCAL,
        init: Optional[E.Expr] = None,
        combine: Optional[Callable[[Any, Any], Any]] = None,
        loc: Optional[SourceLocation] = None,
    ):
        if direction not in DIRECTIONS:
            raise ValueError(f"bad signal direction {direction!r}")
        self.name = name
        self.direction = direction
        self.init = init
        self.combine = combine
        self.loc = loc

    @property
    def is_input(self) -> bool:
        return self.direction in (IN, INOUT)

    @property
    def is_output(self) -> bool:
        return self.direction in (OUT, INOUT)

    def renamed(self, name: str) -> "SignalDecl":
        return SignalDecl(name, self.direction, self.init, self.combine, self.loc)

    def with_direction(self, direction: str) -> "SignalDecl":
        return SignalDecl(self.name, direction, self.init, self.combine, self.loc)

    def __repr__(self) -> str:
        init = "" if self.init is None else f"={self.init!r}"
        return f"SignalDecl({self.direction} {self.name}{init})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SignalDecl)
            and self.name == other.name
            and self.direction == other.direction
            and self.init == other.init
            # string combine names compare by value; callables by identity
            and self.combine == other.combine
        )

    def __hash__(self) -> int:
        return hash((self.name, self.direction, self.init))


class VarDecl:
    """A module ``var`` parameter (paper section 3: ``Freeze(var max, ...)``).

    Vars are host-level values bound at ``run`` time and readable from the
    module's embedded expressions.  They must not be shared between
    parallel branches (read in one, written in another).
    """

    __slots__ = ("name", "init", "loc")

    def __init__(self, name: str, init: Optional[E.Expr] = None, loc: Optional[SourceLocation] = None):
        self.name = name
        self.init = init
        self.loc = loc

    def __repr__(self) -> str:
        init = "" if self.init is None else f"={self.init!r}"
        return f"VarDecl({self.name}{init})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VarDecl) and self.name == other.name and self.init == other.init

    def __hash__(self) -> int:
        return hash((self.name, self.init))
