"""Deterministic delta-debugging shrinker for fuzz cases.

Given a failing (program, plan) and a predicate ("does it still fail"),
the shrinker minimizes three things, in order:

1. the lifecycle op script, by classic ddmin (drop chunks, halve chunk
   size on a fixed pass);
2. the program body, by a structural fixpoint: repeatedly try replacing
   each node with ``nothing`` or with one of its own children (unwrap),
   dropping ``seq``/``par`` arms, and removing now-unreferenced worker
   modules — keeping any rewrite under which the case still fails;
3. op payloads, by dropping input-map keys one at a time.

Candidates that no longer even compile are simply rejected by the
predicate wrapper (the failure must be *the same kind of* failure —
a validation error is not a repro).  Everything is deterministic: the
same failing case always shrinks to the same minimal repro, which the
corpus stores and tier-1 replays forever.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.lang import ast as A

from repro.fuzz.gen import FuzzProgram

__all__ = ["shrink_case", "ShrinkBudget"]


class ShrinkBudget:
    """Bounds the number of predicate evaluations (each one re-runs the
    whole differential harness)."""

    def __init__(self, checks: int = 400):
        self.remaining = checks

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


# ---------------------------------------------------------------------------
# structural statement rewrites
# ---------------------------------------------------------------------------


def _children(stmt: A.Stmt) -> List[A.Stmt]:
    if isinstance(stmt, A.Seq):
        return list(stmt.items)
    if isinstance(stmt, A.Par):
        return list(stmt.branches)
    if isinstance(stmt, A.If):
        return [stmt.then, stmt.orelse]
    if isinstance(stmt, (A.Abort, A.WeakAbort, A.Suspend, A.Every, A.Loop)):
        return [stmt.body]
    if isinstance(stmt, (A.DoEvery, A.Trap, A.Local)):
        return [stmt.body]
    return []


def _rebuild(stmt: A.Stmt, index: int, child: A.Stmt) -> A.Stmt:
    if isinstance(stmt, A.Seq):
        items = list(stmt.items)
        items[index] = child
        return A.Seq(items)
    if isinstance(stmt, A.Par):
        branches = list(stmt.branches)
        branches[index] = child
        return A.Par(branches)
    if isinstance(stmt, A.If):
        if index == 0:
            return A.If(stmt.test, child, stmt.orelse)
        return A.If(stmt.test, stmt.then, child)
    if isinstance(stmt, A.Abort):
        return A.Abort(stmt.delay, child)
    if isinstance(stmt, A.WeakAbort):
        return A.WeakAbort(stmt.delay, child)
    if isinstance(stmt, A.Suspend):
        return A.Suspend(stmt.delay, child)
    if isinstance(stmt, A.Every):
        return A.Every(stmt.delay, child)
    if isinstance(stmt, A.Loop):
        return A.Loop(child)
    if isinstance(stmt, A.DoEvery):
        return A.DoEvery(child, stmt.delay)
    if isinstance(stmt, A.Trap):
        return A.Trap(stmt.label, child)
    if isinstance(stmt, A.Local):
        return A.Local(stmt.decls, child)
    raise AssertionError(type(stmt).__name__)


def _local_candidates(stmt: A.Stmt) -> List[A.Stmt]:
    """Smaller statements that could replace ``stmt`` wholesale."""
    out: List[A.Stmt] = []
    if not isinstance(stmt, A.Nothing):
        out.append(A.Nothing())
    if isinstance(stmt, A.Seq) and len(stmt.items) > 2:
        for drop in range(len(stmt.items)):
            out.append(A.Seq([s for i, s in enumerate(stmt.items) if i != drop]))
    if isinstance(stmt, A.Par) and len(stmt.branches) > 2:
        for drop in range(len(stmt.branches)):
            out.append(
                A.Par([s for i, s in enumerate(stmt.branches) if i != drop])
            )
    # unwrap: the node's own children (invalid ones — a break escaping
    # its trap, a local body using an undeclared signal — fail to
    # compile and are rejected by the predicate)
    out.extend(_children(stmt))
    return out


def _variants(stmt: A.Stmt):
    """All one-step smaller whole trees, outermost first."""
    for candidate in _local_candidates(stmt):
        yield candidate
    for index, child in enumerate(_children(stmt)):
        for variant in _variants(child):
            yield _rebuild(stmt, index, variant)


# ---------------------------------------------------------------------------
# the shrink loop
# ---------------------------------------------------------------------------


def _run_names(stmt: A.Stmt) -> set:
    names = set()
    if isinstance(stmt, A.Run):
        module = stmt.module
        names.add(module if isinstance(module, str) else module.name)
    for child in stmt.children():
        names |= _run_names(child)
    return names


def _prune_workers(program: FuzzProgram) -> FuzzProgram:
    """Drop worker modules no remaining ``run`` references (workers may
    reference each other, so keep the transitive closure from main)."""
    keep = _run_names(program.main.body)
    changed = True
    while changed:
        changed = False
        for module in program.modules[:-1]:
            if module.name in keep:
                extra = _run_names(module.body) - keep
                if extra:
                    keep |= extra
                    changed = True
    modules = [m for m in program.modules[:-1] if m.name in keep]
    return FuzzProgram(modules + [program.main], program.pure)


def _ddmin_ops(
    plan: Dict[str, Any],
    predicate: Callable[[FuzzProgram, Dict[str, Any]], bool],
    program: FuzzProgram,
    budget: ShrinkBudget,
) -> Dict[str, Any]:
    ops = list(plan["ops"])
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        index = 0
        while index < len(ops) and len(ops) > 1:
            candidate = ops[:index] + ops[index + chunk :]
            if not candidate:
                index += chunk
                continue
            if not budget.spend():
                plan = dict(plan, ops=ops)
                return plan
            if predicate(program, dict(plan, ops=candidate)):
                ops = candidate
            else:
                index += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return dict(plan, ops=ops)


def _shrink_body(
    program: FuzzProgram,
    plan: Dict[str, Any],
    predicate: Callable[[FuzzProgram, Dict[str, Any]], bool],
    budget: ShrinkBudget,
) -> FuzzProgram:
    improved = True
    while improved:
        improved = False
        # main body first, then each worker body
        for slot in range(len(program.modules) - 1, -1, -1):
            module = program.modules[slot]
            for variant in _variants(module.body):
                if not budget.spend():
                    return program
                rebuilt = A.Module(
                    module.name,
                    list(module.interface),
                    variant,
                    variables=tuple(module.variables),
                )
                modules = list(program.modules)
                modules[slot] = rebuilt
                candidate = FuzzProgram(modules, program.pure)
                if predicate(candidate, plan):
                    program = _prune_workers(candidate)
                    improved = True
                    break
            if improved:
                break
    return program


def _shrink_inputs(
    program: FuzzProgram,
    plan: Dict[str, Any],
    predicate: Callable[[FuzzProgram, Dict[str, Any]], bool],
    budget: ShrinkBudget,
) -> Dict[str, Any]:
    ops = [list(op) for op in plan["ops"]]
    for position, op in enumerate(ops):
        payload_at = next(
            (i for i, part in enumerate(op) if isinstance(part, dict)), None
        )
        if payload_at is None:
            continue
        for key in sorted(op[payload_at]):
            smaller = {k: v for k, v in op[payload_at].items() if k != key}
            candidate_op = list(op)
            candidate_op[payload_at] = smaller
            candidate_ops = [
                candidate_op if i == position else other
                for i, other in enumerate(ops)
            ]
            if not budget.spend():
                return dict(plan, ops=ops)
            if predicate(program, dict(plan, ops=candidate_ops)):
                ops = [list(o) for o in candidate_ops]
                op = list(candidate_op)
    return dict(plan, ops=ops)


def shrink_case(
    program: FuzzProgram,
    plan: Dict[str, Any],
    predicate: Callable[[FuzzProgram, Dict[str, Any]], bool],
    max_checks: int = 400,
) -> Tuple[FuzzProgram, Dict[str, Any]]:
    """Minimize a failing case.  ``predicate(program, plan)`` must return
    True exactly when the case still exhibits the failure (and False for
    cases that fail differently or not at all)."""
    budget = ShrinkBudget(max_checks)
    plan = _ddmin_ops(plan, predicate, program, budget)
    program = _shrink_body(program, plan, predicate, budget)
    plan = _ddmin_ops(plan, predicate, program, budget)
    plan = _shrink_inputs(program, plan, predicate, budget)
    return program, plan
