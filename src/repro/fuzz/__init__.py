"""ReactorFuzz: whole-program differential fuzzing and lifecycle
crash-consistency testing for the reactive runtime.

The pieces:

* :mod:`repro.fuzz.gen` — seeded program generation (valued signals,
  combine functions, traps, suspend, nested ``run``), always parser
  round-trippable;
* :mod:`repro.fuzz.lifecycle` — op-script generation (reactions,
  snapshots, journal replay, crash injection, mailbox admission,
  reaction budgets, hot upgrade);
* :mod:`repro.fuzz.harness` — runs each case under every backend × link
  configuration and asserts observational parity;
* :mod:`repro.fuzz.shrink` — deterministic delta-debugging minimizer;
* :mod:`repro.fuzz.corpus` — minimal repros under ``tests/corpus/``,
  replayed by tier-1;
* :mod:`repro.fuzz.cli` — the ``python -m repro.fuzz`` entry point.
"""

from repro.fuzz.gen import FuzzProgram, generate_program
from repro.fuzz.harness import CaseResult, Driver, FuzzFailure, run_case
from repro.fuzz.lifecycle import generate_plan
from repro.fuzz.shrink import shrink_case

__all__ = [
    "FuzzProgram",
    "generate_program",
    "generate_plan",
    "run_case",
    "Driver",
    "CaseResult",
    "FuzzFailure",
    "shrink_case",
]
