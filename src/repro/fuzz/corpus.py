"""Corpus persistence: minimized fuzz failures as self-contained JSON
repros under ``tests/corpus/``.

Each entry stores the *pretty-printed sources* of the program (workers
first, main last) plus the lifecycle plan — nothing else is needed to
re-run the case, because the generator guarantees every program is
parser round-trippable and the v2 upgrade target is a deterministic
function of the v1 main module.  Tier-1 (``tests/test_fuzz.py``)
replays every entry on every run, so a fixed divergence can never
silently regress.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from repro.syntax.parser import parse_program

from repro.fuzz.gen import FuzzProgram

__all__ = [
    "CORPUS_FORMAT",
    "entry_for",
    "save_entry",
    "load_entry",
    "load_corpus_case",
    "corpus_files",
]

CORPUS_FORMAT = 1


def entry_for(
    program: FuzzProgram,
    plan: Dict[str, Any],
    seed: Any = None,
    reason: str = "",
) -> Dict[str, Any]:
    return {
        "format": CORPUS_FORMAT,
        "seed": seed,
        "reason": reason,
        "pure": program.pure,
        "sources": program.sources(),
        "plan": {
            "capacity": plan["capacity"],
            "policy": plan["policy"],
            "ops": plan["ops"],
        },
    }


def save_entry(path: str, entry: Dict[str, Any]) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_entry(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        entry = json.load(fh)
    if entry.get("format") != CORPUS_FORMAT:
        raise ValueError(
            f"{path}: corpus format {entry.get('format')!r} is not "
            f"{CORPUS_FORMAT}"
        )
    return entry


def load_corpus_case(path: str) -> Tuple[FuzzProgram, Dict[str, Any]]:
    """Rebuild the (program, plan) a corpus entry describes."""
    entry = load_entry(path)
    source = "\n\n".join(entry["sources"])
    modules = list(parse_program(source, filename=path))
    program = FuzzProgram(modules, bool(entry["pure"]))
    return program, entry["plan"]


def corpus_files(directory: str) -> List[str]:
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )
