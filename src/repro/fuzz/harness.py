"""The ReactorFuzz differential harness.

One fuzz *case* = (program, lifecycle plan).  :func:`run_case` drives
the case through every backend configuration —

    {worklist, levelized, sparse, lockstep} × {link off, link on}

(the lockstep configurations only when the compiled plan is pure, since
the bit-parallel word engine refuses impure plans) — and asserts that
every configuration observed *the same thing*:

* per-instant emitted signals, pause/termination flags, and an
  interface-level state digest;
* fatal errors (causality deadlocks, budget violations that escape) —
  byte-identical within a link group, same exception type across link
  groups (net numbering legitimately differs between linked and inlined
  circuits);
* snapshot round trips restore to byte-identical payloads;
* journal replays of the supervisor checkpoint reconverge with the live
  machine's state digest;
* the host-effect ledger (listener invocations) is *exactly once*:
  crash/retry cycles must not double-deliver or drop an effect.

Pure programs are additionally replayed through the behavioral
interpreter (:class:`repro.interp.Interpreter`) as a semantics oracle.

Observations after a hot ``upgrade`` op are only compared *within* a
link group: inlined compiles degenerate to a single migration segment
and legitimately carry less state across the edit than linked compiles
(see ``docs/``, state migration), so cross-link comparison stops at the
upgrade boundary.

Any violation raises :class:`FuzzFailure` naming the divergent
configuration and op index; the runner (``repro.fuzz.cli``) shrinks the
case and writes a corpus repro.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.compiler.compile import CompileOptions, compile_cached
from repro.errors import (
    CausalityError,
    FleetReactionError,
    HipHopError,
    MachineError,
    ReactionBudgetExceeded,
)
from repro.host.chaos import MachineCrasher
from repro.interp import Interpreter, UnsupportedProgram
from repro.runtime.fleet import MachineFleet
from repro.runtime.journal import MemoryJournal
from repro.runtime.machine import ReactiveMachine
from repro.runtime.recovery import MachineSupervisor

from repro.fuzz.gen import HOST_GLOBALS, FuzzProgram

__all__ = ["FuzzFailure", "Driver", "run_case", "CaseResult", "CONFIGS"]

SCALAR_BACKENDS = ("worklist", "levelized", "sparse")
#: every configuration a case runs under; reference is the first
CONFIGS: Tuple[Tuple[str, bool], ...] = tuple(
    (backend, link)
    for link in (False, True)
    for backend in SCALAR_BACKENDS + ("lockstep",)
)
REFERENCE = ("worklist", False)


class FuzzFailure(AssertionError):
    """A differential violation: what diverged, where, and between whom."""

    def __init__(
        self,
        kind: str,
        detail: str,
        config: Optional[Tuple[str, bool]] = None,
        op_index: Optional[int] = None,
    ):
        self.kind = kind
        self.detail = detail
        self.config = config
        self.op_index = op_index
        where = ""
        if config is not None:
            where = f" [backend={config[0]}, link={config[1]}]"
        if op_index is not None:
            where += f" [op #{op_index}]"
        super().__init__(f"{kind}{where}: {detail}")


def _norm_error(err: BaseException) -> List[Any]:
    """Normalized fatal-error observation.  CausalityError messages and
    net lists are byte-stable across backends by construction (the
    normalized constructor in ``repro.compiler.netlist``), so the full
    rendering participates in strict comparison."""
    if isinstance(err, CausalityError):
        return [type(err).__name__, str(err), list(getattr(err, "nets", []))]
    return [type(err).__name__, str(err), []]


def obs_digest(machine: ReactiveMachine) -> str:
    """Interface-level digest of a machine's between-instant state:
    presence/pre flags and values of every interface signal, the
    termination flag, and the reaction count.  Deliberately *not* the
    positional ``state_digest`` — register layouts differ across link
    modes; the interface view is what the paper's semantics defines."""
    machine._ensure_scalar()
    items = []
    for name in sorted(machine.compiled.circuit.interface):
        view = machine.signal(name)
        items.append([name, view.now, view.pre, view.nowval, view.preval])
    payload = json.dumps(
        [items, machine.terminated, machine.reaction_count], default=repr
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _emitted(result: Any) -> List[Any]:
    return sorted([name, value] for name, value in dict(result).items())


class Driver:
    """Runs one (program, plan) under one backend configuration,
    recording an observation trace the comparator diffs."""

    def __init__(self, program: FuzzProgram, backend: str, link: bool):
        self.program = program
        self.backend = backend
        self.link = link
        self.config = (backend, link)
        self.options = CompileOptions(link=link)
        self.compiled = compile_cached(
            program.main, program.table(), self.options
        )
        if backend == "lockstep":
            # a size-1 lockstep fleet: reactions run on the bit-parallel
            # word engine until a scalar-only feature (journal, mailbox,
            # snapshot) demotes the member — exactly the promote/demote
            # churn the fuzzer wants to exercise
            self.fleet: Optional[MachineFleet] = MachineFleet(
                self.compiled,
                size=1,
                backend="lockstep",
                host_globals=dict(HOST_GLOBALS),
            )
            self.machine = self.fleet[0]
        else:
            self.fleet = None
            self.machine = ReactiveMachine(
                self.compiled,
                host_globals=dict(HOST_GLOBALS),
                backend=backend,
            )
        self.sup: Optional[MachineSupervisor] = None
        self.upgraded = False
        self.done = False
        #: the observation trace compared across configurations
        self.obs: List[List[Any]] = []
        #: host-effect ledger: every listener invocation, in order
        self.ledger: List[List[Any]] = []
        #: committed live instants (inputs) — the oracle's script
        self.logical_inputs: List[Dict[str, Any]] = []
        #: present outputs of each committed live instant (oracle checks)
        self.logical_outputs: List[List[str]] = []
        self.stats: Dict[str, int] = {}
        self._install_listeners(self.machine)

    # -- plumbing --------------------------------------------------------

    def _install_listeners(self, machine: ReactiveMachine) -> None:
        for name, info in machine.compiled.circuit.interface.items():
            if info.direction in ("out", "inout"):
                machine.add_listener(
                    name,
                    lambda value, name=name: self.ledger.append([name, value]),
                )

    def _member_backend(self) -> str:
        return "auto" if self.backend == "lockstep" else self.backend

    def _fresh_machine(self) -> ReactiveMachine:
        compiled = (
            compile_cached(
                self.program.v2_main, self.program.v2_table(), self.options
            )
            if self.upgraded
            else self.compiled
        )
        return ReactiveMachine(
            compiled,
            host_globals=dict(HOST_GLOBALS),
            backend=self._member_backend(),
        )

    def _ensure_sup(self) -> MachineSupervisor:
        if self.sup is None:
            self.sup = MachineSupervisor(
                self.machine, journal=MemoryJournal(), max_retries=1
            )
        return self.sup

    def _react_live(self, inputs: Dict[str, Any]) -> Any:
        if self.sup is not None:
            result = self.sup.react(inputs)
        elif self.fleet is not None:
            try:
                result = self.fleet.react_all(inputs)[0]
            except FleetReactionError as err:
                raise next(iter(err.failures.values()))
        else:
            result = self.machine.react(inputs)
        if not self.upgraded:
            self.logical_inputs.append(dict(inputs))
            self.logical_outputs.append(sorted(dict(result)))
        return result

    def _record(self, entry: List[Any]) -> None:
        self.obs.append(entry)

    def _count(self, key: str) -> None:
        self.stats[key] = self.stats.get(key, 0) + 1

    # -- op dispatch -----------------------------------------------------

    def run_plan(self, plan: Dict[str, Any]) -> None:
        for index, op in enumerate(plan["ops"]):
            if self.done:
                break
            try:
                self._dispatch(index, op, plan)
            except FuzzFailure:
                raise
            except HipHopError as err:
                # a fatal reactive error ends the run: the trace up to
                # and including the normalized error is what's compared
                self._record(["fatal", index, _norm_error(err)])
                self.done = True

    def _dispatch(self, index: int, op: List[Any], plan: Dict[str, Any]) -> None:
        kind = op[0]
        if kind == "react":
            result = self._react_live(op[1])
            self._record(
                [
                    "react",
                    index,
                    _emitted(result),
                    result.paused,
                    result.terminated,
                    obs_digest(self.machine),
                ]
            )
        elif kind == "budget_react":
            self._op_budget_react(index, op[1], op[2])
        elif kind == "offer":
            self._op_offer(index, op[1], plan)
        elif kind == "pump":
            self._op_pump(index, op[1])
        elif kind == "snapshot_roundtrip":
            self._op_snapshot_roundtrip(index)
        elif kind == "checkpoint":
            sup = self._ensure_sup()
            sup.checkpoint()
            self._record(["ckpt", index, obs_digest(self.machine)])
        elif kind == "journal_replay":
            self._op_journal_replay(index)
        elif kind == "crash_between":
            self._op_crash(index, "between", None, op[1])
        elif kind == "crash_mid":
            self._op_crash(index, "mid", op[1], op[2])
        elif kind == "upgrade":
            self._op_upgrade(index)
        else:
            raise AssertionError(f"unknown op {kind!r}")

    # -- individual ops --------------------------------------------------

    def _op_budget_react(
        self, index: int, inputs: Dict[str, Any], budget: int
    ) -> None:
        """Attempt the instant under a tiny net-evaluation budget; if the
        watchdog fires, roll back (snapshot + journal rewind) and redo it
        unbudgeted.  Whether the budget sufficed is backend-dependent
        (evaluation order differs), so only the converged result is
        compared."""
        self.machine._ensure_scalar()
        snap = self.machine.snapshot()
        try:
            result = self.machine.react(inputs, budget=budget)
        except ReactionBudgetExceeded:
            self._count("budget_aborts")
            if self.machine.journal is not None:
                self.machine.journal.rewind(snap["reaction_count"])
            self.machine.restore(snap)
            result = self.machine.react(inputs)
        if not self.upgraded:
            self.logical_inputs.append(dict(inputs))
            self.logical_outputs.append(sorted(dict(result)))
        self._record(
            [
                "budget",
                index,
                _emitted(result),
                result.paused,
                result.terminated,
                obs_digest(self.machine),
            ]
        )

    def _ensure_mailbox(self, plan: Dict[str, Any]) -> None:
        if self.machine.mailbox is None:
            self.machine._ensure_scalar()
            self.machine.attach_mailbox(
                capacity=plan["capacity"], policy=plan["policy"]
            )

    def _op_offer(
        self, index: int, inputs: Dict[str, Any], plan: Dict[str, Any]
    ) -> None:
        self._ensure_mailbox(plan)
        decision = self.machine.offer(inputs)
        self._record(["offer", index, decision])

    def _op_pump(self, index: int, max_instants: int) -> None:
        """Drain admitted instants manually (``take`` + live react) so
        the consumed inputs land in the oracle script like any other
        instant."""
        mailbox = self.machine.mailbox
        drained: List[List[Any]] = []
        if mailbox is not None:
            remaining = min(max_instants, mailbox.pending)
            while remaining > 0 and mailbox.pending:
                remaining -= 1
                result = self._react_live(mailbox.take())
                drained.append(_emitted(result))
        self._record(["pump", index, drained, obs_digest(self.machine)])

    def _op_snapshot_roundtrip(self, index: int) -> None:
        self.machine._ensure_scalar()
        snap = self.machine.snapshot()
        wire = json.loads(json.dumps(snap))
        fresh = self._fresh_machine()
        fresh.restore(wire)
        resnap = fresh.snapshot()
        if resnap != snap:
            diff = sorted(
                key
                for key in set(snap) | set(resnap)
                if snap.get(key) != resnap.get(key)
            )
            raise FuzzFailure(
                "snapshot-roundtrip",
                f"restore+snapshot changed fields {diff}",
                self.config,
                index,
            )
        self._record(["snap", index, obs_digest(self.machine)])

    def _op_journal_replay(self, index: int) -> None:
        sup = self._ensure_sup()
        fresh = self._fresh_machine()
        fresh.restore(sup.last_checkpoint)
        fresh.replay(
            sup.journal.entries(sup.last_checkpoint["reaction_count"])
        )
        live = self.machine.state_digest()
        rebuilt = fresh.state_digest()
        if live != rebuilt:
            raise FuzzFailure(
                "journal-replay-divergence",
                f"cold rebuild digest {rebuilt} != live {live}",
                self.config,
                index,
            )
        self._record(["replay", index, obs_digest(self.machine)])

    def _op_crash(
        self,
        index: int,
        shape: str,
        after_calls: Optional[int],
        inputs: Dict[str, Any],
    ) -> None:
        """Inject a crash and let the supervisor recover it.  Between-
        instant kills always fire; mid-instant kills count host payload
        calls, so whether one fires is backend-dependent — the crasher is
        disarmed afterwards either way so no countdown leaks into later
        ops."""
        sup = self._ensure_sup()
        crasher = MachineCrasher(sup.machine)
        if shape == "between":
            crasher.kill_between_instants()
        else:
            crasher.kill_mid_instant(after_calls=after_calls)
        try:
            result = sup.react(inputs)
        finally:
            if crasher.armed:
                self._count("crash_dud")
            else:
                self._count(f"crash_{shape}")
            crasher.disarm()
        if not self.upgraded:
            self.logical_inputs.append(dict(inputs))
            self.logical_outputs.append(sorted(dict(result)))
        self._record(
            [
                "crash",
                index,
                _emitted(result),
                result.paused,
                result.terminated,
                obs_digest(self.machine),
            ]
        )

    def _op_upgrade(self, index: int) -> None:
        sup = self._ensure_sup()
        v2 = compile_cached(
            self.program.v2_main, self.program.v2_table(), self.options
        )
        fresh = ReactiveMachine(
            v2,
            host_globals=dict(HOST_GLOBALS),
            backend=self._member_backend(),
        )
        sup.upgrade(fresh)
        self.machine = fresh
        self.fleet = None
        self.upgraded = True
        self._install_listeners(fresh)
        self._record(["upgrade", index, obs_digest(fresh)])


# ---------------------------------------------------------------------------
# cross-configuration comparison
# ---------------------------------------------------------------------------


def _weak_view(obs: List[List[Any]]) -> List[List[Any]]:
    """Projection used across link groups: stop at the upgrade boundary
    (migration carries different state under inline vs link) and reduce
    fatal errors to their exception type (net numbering differs)."""
    out: List[List[Any]] = []
    for entry in obs:
        if entry[0] == "upgrade":
            out.append(["upgrade", entry[1]])
            break
        if entry[0] == "fatal":
            out.append(["fatal", entry[1], entry[2][0]])
        else:
            out.append(entry)
    return out


def _diff_index(a: List[Any], b: List[Any]) -> str:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"first divergence at entry {i}: {x!r} != {y!r}"
    return f"length mismatch: {len(a)} vs {len(b)} entries"


class CaseResult:
    __slots__ = ("configs", "stats", "oracle_checked")

    def __init__(self, configs, stats, oracle_checked):
        self.configs = configs
        self.stats = stats
        self.oracle_checked = oracle_checked

    def __repr__(self) -> str:
        return (
            f"CaseResult({len(self.configs)} configs, "
            f"oracle={'yes' if self.oracle_checked else 'no'}, {self.stats})"
        )


def _check_oracle(program: FuzzProgram, reference: Driver) -> bool:
    """Replay the reference run's committed instants through the
    behavioral interpreter.  Returns whether the oracle actually ran
    (programs using constructs outside its subset are skipped)."""
    try:
        interp = Interpreter(program.main, modules=program.table())
    except UnsupportedProgram:
        return False
    for step, inputs in enumerate(reference.logical_inputs):
        present = {name for name, value in inputs.items() if value}
        try:
            outs = interp.react(present)
        except UnsupportedProgram:
            return False
        expected = reference.logical_outputs[step]
        if sorted(outs) != expected:
            raise FuzzFailure(
                "oracle-divergence",
                f"instant {step} inputs {sorted(present)}: interpreter "
                f"emitted {sorted(outs)}, circuits emitted {expected}",
                REFERENCE,
                None,
            )
    return True


def run_case(program: FuzzProgram, plan: Dict[str, Any]) -> CaseResult:
    """Run one case under every configuration and compare.  Raises
    :class:`FuzzFailure` on any differential violation."""
    drivers: Dict[Tuple[str, bool], Driver] = {}
    lockstep_ok = compile_cached(
        program.main, program.table(), CompileOptions(link=False)
    ).evaluation_plan().is_pure
    for backend, link in CONFIGS:
        if backend == "lockstep" and not lockstep_ok:
            continue
        try:
            driver = Driver(program, backend, link)
        except MachineError as err:
            if backend == "lockstep":
                # word-plan rejection (e.g. cyclic-but-constructive
                # plans): scalar configs still cover this case
                continue
            raise FuzzFailure(
                "construction", str(err), (backend, link), None
            )
        driver.run_plan(plan)
        drivers[(backend, link)] = driver

    reference = drivers[REFERENCE]
    for config, driver in drivers.items():
        if config == REFERENCE:
            continue
        if config[1] == REFERENCE[1]:
            if driver.obs != reference.obs:
                raise FuzzFailure(
                    "trace-divergence",
                    _diff_index(driver.obs, reference.obs),
                    config,
                    None,
                )
            if driver.ledger != reference.ledger:
                raise FuzzFailure(
                    "effect-ledger-divergence",
                    _diff_index(driver.ledger, reference.ledger),
                    config,
                    None,
                )
        else:
            mine, ref = _weak_view(driver.obs), _weak_view(reference.obs)
            if mine != ref:
                raise FuzzFailure(
                    "cross-link-divergence",
                    _diff_index(mine, ref),
                    config,
                    None,
                )
            if not driver.upgraded and driver.ledger != reference.ledger:
                raise FuzzFailure(
                    "effect-ledger-divergence",
                    _diff_index(driver.ledger, reference.ledger),
                    config,
                    None,
                )

    # strict within the link=True group too (reference there is worklist)
    linked_ref = drivers.get(("worklist", True))
    if linked_ref is not None:
        for config, driver in drivers.items():
            if config[1] is not True or config == ("worklist", True):
                continue
            if driver.obs != linked_ref.obs:
                raise FuzzFailure(
                    "trace-divergence",
                    _diff_index(driver.obs, linked_ref.obs),
                    config,
                    None,
                )

    oracle_checked = False
    if program.pure:
        oracle_checked = _check_oracle(program, reference)

    stats: Dict[str, int] = {}
    for driver in drivers.values():
        for key, value in driver.stats.items():
            stats[key] = stats.get(key, 0) + value
    return CaseResult(sorted(drivers), stats, oracle_checked)
