"""Seeded random program generation for the ReactorFuzz harness.

Unlike the Hypothesis strategies in ``tests/strategies.py`` (which stay
inside the interpreter's pure kernel subset), this generator covers the
full surface the differential harness exercises:

* valued signals with textual ``combine`` functions (resolved against
  :data:`HOST_GLOBALS` at machine construction);
* pre/count/immediate delays, weak aborts, traps, suspend, every;
* local signal scopes — valued ones with initializers — including
  reincarnation inside loops;
* nested ``run`` module instantiation (worker modules may themselves
  run earlier workers).

Every generated program is *parser round-trippable*: the generator
asserts ``parse(pretty(modules)) == modules`` before handing a program
out, so any failure the harness reports can be reproduced from its
pretty-printed source alone (the corpus stores exactly that).

Programs are drawn from a seeded :class:`random.Random` — no Hypothesis
involvement — so a seed fully determines the case and CI can replay any
nightly finding from its seed number.

A ``pure`` program restricts itself to the construct set the
differential oracle (:class:`repro.interp.Interpreter`) supports, so the
harness can additionally check every reaction against the paper's
behavioral semantics; impure programs are checked backend-against-
backend only.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.compiler.compile import CompileOptions, compile_cached
from repro.errors import HipHopError
from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.pretty import pretty_module
from repro.lang.signals import SignalDecl
from repro.syntax.parser import parse_program

__all__ = [
    "HOST_GLOBALS",
    "FuzzProgram",
    "generate_program",
    "mutate_program",
    "fz_sum",
]

PURE_INPUTS = ("A", "B", "C")
PURE_OUTPUTS = ("X", "Y", "Z")
VALUED_INPUT = "VI"
VALUED_OUTPUT = "VO"
LOCAL_NAMES = ("L1", "L2")
MAIN_NAME = "FzMain"
WORKER_NAMES = ("FzW1", "FzW2")
#: the output the deterministic v2 mutation adds (see :func:`mutate_program`)
UPGRADE_SIGNAL = "UPG"


def fz_sum(a, b):
    """The combine function every generated valued signal declares (by
    its textual name, exercising ``_resolve_combine``)."""
    return a + b


#: host scope handed to every machine the harness builds
HOST_GLOBALS = {"fz_sum": fz_sum}


def mutate_program(main: A.Module) -> A.Module:
    """The deterministic "v2" edit used by the hot-upgrade lifecycle op:
    add one output (:data:`UPGRADE_SIGNAL`) and graft a monitor branch
    emitting it whenever input ``A`` is present, in parallel with the
    old body.  Purely structural — no randomness — so a corpus entry can
    re-derive v2 from its stored v1 sources."""
    interface = list(main.interface) + [SignalDecl(UPGRADE_SIGNAL, "out")]
    monitor = A.Loop(
        A.Seq(
            [
                A.If(E.SigRef(PURE_INPUTS[0], E.NOW), A.Emit(UPGRADE_SIGNAL)),
                A.Pause(),
            ]
        )
    )
    return A.Module(
        main.name,
        interface,
        A.Par([main.body, monitor]),
        variables=tuple(main.variables),
    )


class FuzzProgram:
    """One generated program: the worker modules plus the main module
    (definition order, main last), its purity flag, and the derived v2
    used by the upgrade op."""

    __slots__ = ("modules", "main", "pure", "v2_main")

    def __init__(self, modules: List[A.Module], pure: bool):
        self.modules = list(modules)
        self.main = self.modules[-1]
        self.pure = pure
        self.v2_main = mutate_program(self.main)

    def table(self) -> A.ModuleTable:
        return A.ModuleTable(self.modules)

    def v2_table(self) -> A.ModuleTable:
        return A.ModuleTable(self.modules[:-1] + [self.v2_main])

    def sources(self) -> List[str]:
        """Pretty-printed module sources in definition order — the
        self-contained repro the corpus stores."""
        return [pretty_module(module) for module in self.modules]

    def input_names(self) -> List[str]:
        names = [
            decl.name for decl in self.main.interface if decl.direction == "in"
        ]
        return names

    def __repr__(self) -> str:
        kind = "pure" if self.pure else "impure"
        return f"FuzzProgram({self.main.name}, {kind}, {len(self.modules)} modules)"


# ---------------------------------------------------------------------------
# generation context
# ---------------------------------------------------------------------------


class _Ctx:
    """Scope carried down the recursive statement builder."""

    __slots__ = (
        "pure", "scope", "ins", "outs", "iface_outs",
        "valued_outs", "traps", "in_loop", "workers",
    )

    def __init__(
        self, pure, scope, ins, outs, iface_outs,
        valued_outs, traps, in_loop, workers,
    ):
        self.pure = pure
        #: interface inputs of the enclosing module (run-binding targets)
        self.ins = tuple(ins)
        #: interface outputs only (run-binding targets exclude locals)
        self.iface_outs = tuple(iface_outs)
        #: presence-readable names (guards draw from these)
        self.scope = tuple(scope)
        #: pure emittable targets (outputs + pure locals in scope)
        self.outs = tuple(outs)
        #: valued emittable targets (valued outputs + valued locals)
        self.valued_outs = tuple(valued_outs)
        self.traps = tuple(traps)
        self.in_loop = in_loop
        #: worker module names this body may ``run``
        self.workers = tuple(workers)

    def nested(self, **overrides) -> "_Ctx":
        fields = {slot: getattr(self, slot) for slot in self.__slots__}
        fields.update(overrides)
        return _Ctx(**fields)


class _Gen:
    def __init__(self, rng: random.Random, max_depth: int = 4):
        self.rng = rng
        self.max_depth = max_depth
        self._trap_counter = 0

    # -- expressions -----------------------------------------------------

    def guard(self, ctx: _Ctx, depth: int = 2) -> E.Expr:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.55:
            name = rng.choice(ctx.scope)
            kind = E.PRE if rng.random() < 0.3 else E.NOW
            return E.SigRef(name, kind)
        roll = rng.random()
        if roll < 0.34:
            return E.UnOp("!", self.guard(ctx, depth - 1))
        op = "&&" if roll < 0.67 else "||"
        return E.BinOp(op, self.guard(ctx, depth - 1), self.guard(ctx, depth - 1))

    def delay(self, ctx: _Ctx, immediate_ok: bool = True, count_ok: bool = False) -> A.Delay:
        rng = self.rng
        immediate = immediate_ok and rng.random() < 0.3
        count = None
        if count_ok and not ctx.pure and not immediate and rng.random() < 0.3:
            count = E.Lit(rng.randint(1, 3))
        return A.Delay(self.guard(ctx), immediate=immediate, count=count)

    # -- statements ------------------------------------------------------

    def emit(self, ctx: _Ctx) -> A.Stmt:
        rng = self.rng
        if ctx.valued_outs and not ctx.pure and rng.random() < 0.4:
            return A.Emit(rng.choice(ctx.valued_outs), E.Lit(rng.randint(0, 9)))
        return A.Emit(rng.choice(ctx.outs))

    def leaf(self, ctx: _Ctx) -> A.Stmt:
        rng = self.rng
        choices = ["nothing", "pause", "pause", "emit", "emit", "emit"]
        if ctx.traps:
            choices.append("break")
        if not ctx.pure:
            choices += ["await", "halt"]
        kind = rng.choice(choices)
        if kind == "nothing":
            return A.Nothing()
        if kind == "pause":
            return A.Pause()
        if kind == "emit":
            return self.emit(ctx)
        if kind == "break":
            return A.Break(rng.choice(ctx.traps))
        if kind == "await":
            return A.Await(self.delay(ctx, immediate_ok=False, count_ok=True))
        return A.Halt()

    def stmt(self, ctx: _Ctx, depth: int) -> A.Stmt:
        rng = self.rng
        if depth <= 0:
            return self.leaf(ctx)
        choices = [
            "leaf", "leaf",
            "seq", "seq",
            "par",
            "if",
            "abort",
            "suspend",
            "loop",
            "trap",
            "local",
        ]
        if ctx.workers:
            choices.append("run")
        if not ctx.pure:
            choices += ["weakabort", "every", "doevery", "sustain"]
        kind = rng.choice(choices)
        if kind == "leaf":
            return self.leaf(ctx)
        if kind == "seq":
            return A.Seq(
                [self.stmt(ctx, depth - 1) for _ in range(rng.randint(2, 3))]
            )
        if kind == "par":
            return A.Par(
                [self.stmt(ctx, depth - 1) for _ in range(rng.randint(2, 3))]
            )
        if kind == "if":
            orelse = self.stmt(ctx, depth - 1) if rng.random() < 0.5 else None
            return A.If(self.guard(ctx), self.stmt(ctx, depth - 1), orelse)
        if kind == "abort":
            return A.Abort(self.delay(ctx, count_ok=True), self.stmt(ctx, depth - 1))
        if kind == "weakabort":
            return A.WeakAbort(
                self.delay(ctx, count_ok=True), self.stmt(ctx, depth - 1)
            )
        if kind == "suspend":
            return A.Suspend(
                self.delay(ctx, immediate_ok=False), self.stmt(ctx, depth - 1)
            )
        if kind == "every":
            return A.Every(
                self.delay(ctx, immediate_ok=False), self.stmt(ctx, depth - 1)
            )
        if kind == "doevery":
            return A.DoEvery(
                self.stmt(ctx, depth - 1), self.delay(ctx, immediate_ok=False)
            )
        if kind == "sustain":
            if ctx.valued_outs and rng.random() < 0.4:
                return A.Sustain(
                    rng.choice(ctx.valued_outs), E.Lit(rng.randint(0, 9))
                )
            return A.Sustain(rng.choice(ctx.outs))
        if kind == "loop":
            # loop bodies always end in a pause so the loop can never be
            # instantaneous (the validator would reject it)
            inner = ctx.nested(in_loop=True)
            return A.Loop(A.Seq([self.stmt(inner, depth - 1), A.Pause()]))
        if kind == "trap":
            label = f"T{self._trap_counter}"
            self._trap_counter += 1
            inner = ctx.nested(traps=ctx.traps + (label,))
            return A.Trap(label, self.stmt(inner, depth - 1))
        if kind == "local":
            return self.local(ctx, depth)
        if kind == "run":
            return self.run(ctx)
        raise AssertionError(kind)

    def local(self, ctx: _Ctx, depth: int) -> A.Stmt:
        rng = self.rng
        # the pure subset keeps locals out of loops (reincarnation is not
        # part of the interpreter oracle's subset)
        if ctx.pure and ctx.in_loop:
            return self.leaf(ctx)
        names = [n for n in LOCAL_NAMES if n not in ctx.scope]
        if not names:
            return self.leaf(ctx)
        name = rng.choice(names)
        valued = not ctx.pure and rng.random() < 0.4
        if valued:
            init = E.Lit(rng.randint(0, 9)) if rng.random() < 0.5 else None
            decl = SignalDecl(name, "local", init=init, combine="fz_sum")
            inner = ctx.nested(
                scope=ctx.scope + (name,),
                valued_outs=ctx.valued_outs + (name,),
            )
        else:
            decl = SignalDecl(name, "local")
            inner = ctx.nested(
                scope=ctx.scope + (name,), outs=ctx.outs + (name,)
            )
        return A.Local([decl], self.stmt(inner, depth - 1))

    def run(self, ctx: _Ctx) -> A.Stmt:
        rng = self.rng
        name = rng.choice(ctx.workers)
        # workers read A/B and drive X/Y; rebind some of those to other
        # caller signals of the same direction, leaving the rest to the
        # implicit same-name "..." binding
        bindings = {}
        if rng.random() < 0.5:
            bindings["A"] = rng.choice(ctx.ins)
        if rng.random() < 0.4:
            bindings["X"] = rng.choice(ctx.iface_outs)
        return A.Run(name, bindings=bindings or None)

    # -- modules ---------------------------------------------------------

    def worker(self, name: str, pure: bool, runnable: Tuple[str, ...]) -> A.Module:
        interface = [
            SignalDecl("A", "in"),
            SignalDecl("B", "in"),
            SignalDecl("X", "out"),
            SignalDecl("Y", "out"),
        ]
        ctx = _Ctx(
            pure=pure,
            scope=("A", "B", "X", "Y"),
            ins=("A", "B"),
            outs=("X", "Y"),
            iface_outs=("X", "Y"),
            valued_outs=(),
            traps=(),
            in_loop=False,
            workers=runnable,
        )
        body = self.stmt(ctx, max(1, self.max_depth - 2))
        return A.Module(name, interface, body)

    def main(self, pure: bool, workers: Tuple[str, ...]) -> A.Module:
        interface = [SignalDecl(n, "in") for n in PURE_INPUTS] + [
            SignalDecl(n, "out") for n in PURE_OUTPUTS
        ]
        scope = PURE_INPUTS + PURE_OUTPUTS
        valued_outs: Tuple[str, ...] = ()
        if not pure:
            interface.append(SignalDecl(VALUED_INPUT, "in", combine="fz_sum"))
            interface.append(SignalDecl(VALUED_OUTPUT, "out", combine="fz_sum"))
            scope = scope + (VALUED_INPUT, VALUED_OUTPUT)
            valued_outs = (VALUED_OUTPUT,)
        ctx = _Ctx(
            pure=pure,
            scope=scope,
            ins=PURE_INPUTS,
            outs=PURE_OUTPUTS,
            iface_outs=PURE_OUTPUTS,
            valued_outs=valued_outs,
            traps=(),
            in_loop=False,
            workers=workers,
        )
        top = [
            self.stmt(ctx, self.max_depth)
            for _ in range(self.rng.randint(1, 3))
        ]
        body = top[0] if len(top) == 1 else (
            A.Par(top) if self.rng.random() < 0.5 else A.Seq(top)
        )
        return A.Module(MAIN_NAME, interface, body)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _build(rng: random.Random, pure: bool, max_depth: int) -> FuzzProgram:
    gen = _Gen(rng, max_depth=max_depth)
    modules: List[A.Module] = []
    worker_names: Tuple[str, ...] = ()
    n_workers = rng.choice((0, 0, 1, 1, 2))
    for i in range(n_workers):
        name = WORKER_NAMES[i]
        # later workers may run earlier ones (nested instantiation)
        modules.append(gen.worker(name, pure, worker_names))
        worker_names = worker_names + (name,)
    modules.append(gen.main(pure, worker_names))
    return FuzzProgram(modules, pure)


def _validate(program: FuzzProgram) -> None:
    """Reject a candidate unless it compiles under both link modes (v1
    and v2) and survives a pretty-print → parse round trip."""
    table = program.table()
    for link in (False, True):
        options = CompileOptions(link=link)
        compile_cached(program.main, table, options)
        compile_cached(program.v2_main, program.v2_table(), options)
    source = "\n\n".join(program.sources())
    reparsed = list(parse_program(source, filename="<fuzz>"))
    if reparsed != program.modules:
        raise HipHopError(
            f"pretty/parse round trip changed the program "
            f"({[m.name for m in program.modules]})"
        )


def generate_program(
    seed: int, max_depth: int = 4, max_attempts: int = 50
) -> FuzzProgram:
    """Generate the program for ``seed``.

    Candidates that fail static validation (instantaneous loops the
    appended pauses did not prevent, causality rejections at compile
    time, round-trip mismatches) are discarded and redrawn from a
    derived stream, so every seed deterministically yields *some* valid
    program.
    """
    last: Optional[Exception] = None
    for attempt in range(max_attempts):
        rng = random.Random(f"prog:{seed}:{attempt}")
        pure = rng.random() < 0.45
        try:
            program = _build(rng, pure, max_depth)
            _validate(program)
            return program
        except HipHopError as err:
            last = err
    raise RuntimeError(
        f"seed {seed}: no valid program in {max_attempts} attempts "
        f"(last rejection: {last})"
    )
