"""``python -m repro.fuzz`` — the ReactorFuzz runner.

Generates seeded cases, runs each through the differential harness
(:mod:`repro.fuzz.harness`), and on the first violation shrinks it to a
minimal repro and writes a corpus entry::

    python -m repro.fuzz --seed 0 --cases 300          # CI smoke
    python -m repro.fuzz --seed 20260807 --budget 600  # nightly

Exit status is 0 when every case agreed, 1 on a violation (the corpus
path and the pretty-printed repro are printed), 2 on a harness bug
(an exception that is not a differential finding).
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.fuzz import corpus
from repro.fuzz.gen import FuzzProgram, generate_program
from repro.fuzz.harness import FuzzFailure, run_case
from repro.fuzz.lifecycle import generate_plan
from repro.fuzz.shrink import shrink_case

__all__ = ["main", "fuzz_once", "make_predicate"]


def fuzz_once(seed: int, max_depth: int = 4):
    """Generate and run the case for one seed.  Returns the
    :class:`~repro.fuzz.harness.CaseResult`; raises
    :class:`FuzzFailure` on a violation."""
    program = generate_program(seed, max_depth=max_depth)
    plan = generate_plan(seed, program.input_names())
    return run_case(program, plan)


def make_predicate(kind: str):
    """A shrinker predicate that accepts exactly the same *kind* of
    failure (compile rejections and clean runs both count as 'fixed')."""

    def predicate(program: FuzzProgram, plan: Dict[str, Any]) -> bool:
        try:
            run_case(program, plan)
        except FuzzFailure as err:
            return err.kind == kind
        except Exception:
            return False
        return False

    return predicate


def _report_failure(
    seed: int,
    program: FuzzProgram,
    plan: Dict[str, Any],
    failure: FuzzFailure,
    corpus_dir: Optional[str],
    shrink: bool,
    max_checks: int,
) -> None:
    print(f"\nseed {seed}: {failure}", file=sys.stderr)
    if shrink:
        print("shrinking ...", file=sys.stderr)
        program, plan = shrink_case(
            program, plan, make_predicate(failure.kind), max_checks=max_checks
        )
    entry = corpus.entry_for(
        program, plan, seed=seed, reason=str(failure)
    )
    if corpus_dir:
        path = f"{corpus_dir}/repro-{seed}-{failure.kind}.json"
        corpus.save_entry(path, entry)
        print(f"wrote {path}", file=sys.stderr)
    print("\n--- minimal repro ---", file=sys.stderr)
    for source in entry["sources"]:
        print(source, file=sys.stderr)
    print(f"plan: {entry['plan']}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="whole-program differential fuzzing of the reactive "
        "runtime (backends x link modes x lifecycle ops)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (case i uses seed+i)"
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=0,
        help="number of cases (0 = run until --budget expires)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=60.0,
        help="wall-clock budget in seconds (used when --cases is 0)",
    )
    parser.add_argument("--max-depth", type=int, default=4)
    parser.add_argument(
        "--corpus-dir",
        default="tests/corpus",
        help="where minimized repros are written ('' disables)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="skip minimization"
    )
    parser.add_argument(
        "--shrink-checks",
        type=int,
        default=400,
        help="max harness runs the shrinker may spend",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    started = time.time()
    ran = oracle = 0
    stats: Dict[str, int] = {}
    index = 0
    while True:
        if args.cases > 0:
            if index >= args.cases:
                break
        elif time.time() - started >= args.budget:
            break
        seed = args.seed + index
        index += 1
        try:
            program = generate_program(seed, max_depth=args.max_depth)
            plan = generate_plan(seed, program.input_names())
        except Exception:
            print(f"seed {seed}: generator error", file=sys.stderr)
            traceback.print_exc()
            return 2
        try:
            result = run_case(program, plan)
        except FuzzFailure as failure:
            _report_failure(
                seed,
                program,
                plan,
                failure,
                args.corpus_dir or None,
                not args.no_shrink,
                args.shrink_checks,
            )
            return 1
        except Exception:
            print(f"seed {seed}: harness error", file=sys.stderr)
            traceback.print_exc()
            return 2
        ran += 1
        oracle += result.oracle_checked
        for key, value in result.stats.items():
            stats[key] = stats.get(key, 0) + value
        if args.verbose:
            print(f"seed {seed}: ok {result!r}")

    elapsed = time.time() - started
    print(
        f"fuzz: {ran} cases agreed across all configurations "
        f"({oracle} oracle-checked) in {elapsed:.1f}s "
        f"[seeds {args.seed}..{args.seed + index - 1}] {stats}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
