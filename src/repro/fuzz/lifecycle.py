"""Lifecycle-plan generation: the op script a fuzz case drives every
backend configuration through.

A *plan* is plain JSON data — ``{"capacity", "policy", "ops"}`` — so it
serializes into corpus entries unchanged.  Each op is a list whose first
element names the action:

``["react", inputs]``
    one ordinary reaction with the given input map;
``["budget_react", inputs, budget]``
    the same reaction first attempted under a tiny net-evaluation
    budget; on :class:`~repro.errors.ReactionBudgetExceeded` the driver
    rolls the machine back (snapshot + journal rewind) and redoes the
    instant unbudgeted — exercising the abort/rollback path while still
    converging to a comparable state;
``["offer", inputs]`` / ``["pump", max_instants]``
    mailbox admission under the plan's capacity/shedding policy, and
    draining admitted instants;
``["snapshot_roundtrip"]``
    snapshot → JSON round trip → restore onto a fresh machine → assert
    the re-snapshot is byte-identical;
``["checkpoint"]`` / ``["journal_replay"]``
    supervisor checkpoint, and a cold rebuild (restore last checkpoint,
    replay the journal tail) compared against the live machine;
``["crash_between", inputs]`` / ``["crash_mid", after_calls, inputs]``
    a :class:`~repro.host.chaos.MachineCrasher` kill at the instant
    boundary / mid-instant, recovered by the supervisor's
    rollback-and-retry;
``["upgrade"]``
    hot-swap to the deterministically mutated v2 program via
    :meth:`MachineSupervisor.upgrade`.

Input maps are drawn over the program's input names: pure signals carry
``True`` (presence), the valued input carries a small int.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.runtime.ingress import POLICIES

from repro.fuzz.gen import VALUED_INPUT

__all__ = ["generate_plan", "plan_ops"]

#: ops and their relative weights in the generated script
_OP_WEIGHTS = [
    ("react", 40),
    ("offer", 10),
    ("pump", 8),
    ("snapshot_roundtrip", 8),
    ("crash_between", 6),
    ("crash_mid", 6),
    ("journal_replay", 5),
    ("checkpoint", 4),
    ("budget_react", 5),
]


def _inputs(rng: random.Random, names: List[str]) -> Dict[str, Any]:
    chosen: Dict[str, Any] = {}
    for name in names:
        if rng.random() < 0.45:
            chosen[name] = rng.randint(0, 9) if name == VALUED_INPUT else True
    return chosen


def _one_op(rng: random.Random, names: List[str]) -> List[Any]:
    total = sum(weight for _, weight in _OP_WEIGHTS)
    roll = rng.randrange(total)
    for kind, weight in _OP_WEIGHTS:
        roll -= weight
        if roll < 0:
            break
    if kind == "react":
        return ["react", _inputs(rng, names)]
    if kind == "offer":
        return ["offer", _inputs(rng, names)]
    if kind == "pump":
        return ["pump", rng.randint(1, 4)]
    if kind == "snapshot_roundtrip":
        return ["snapshot_roundtrip"]
    if kind == "crash_between":
        return ["crash_between", _inputs(rng, names)]
    if kind == "crash_mid":
        return ["crash_mid", rng.randint(1, 6), _inputs(rng, names)]
    if kind == "journal_replay":
        return ["journal_replay"]
    if kind == "checkpoint":
        return ["checkpoint"]
    if kind == "budget_react":
        return ["budget_react", _inputs(rng, names), rng.randint(1, 8)]
    raise AssertionError(kind)


def generate_plan(seed: int, input_names: List[str]) -> Dict[str, Any]:
    """The lifecycle plan for ``seed`` over the given input names."""
    rng = random.Random(f"plan:{seed}")
    ops = [_one_op(rng, input_names) for _ in range(rng.randint(4, 12))]
    if not any(op[0] == "react" for op in ops):
        ops.insert(0, ["react", _inputs(rng, input_names)])
    if rng.random() < 0.3:
        # hot upgrade somewhere past the first op, always followed by a
        # reaction so the migrated state is actually driven
        where = rng.randint(1, len(ops))
        ops.insert(where, ["upgrade"])
        ops.insert(where + 1, ["react", _inputs(rng, input_names)])
    return {
        "capacity": rng.randint(1, 3),
        "policy": rng.choice(POLICIES),
        "ops": ops,
    }


def plan_ops(plan: Dict[str, Any]) -> List[List[Any]]:
    return list(plan["ops"])
