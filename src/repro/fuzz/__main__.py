import sys

from repro.fuzz.cli import main

sys.exit(main())
