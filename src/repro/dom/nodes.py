"""Virtual DOM nodes and the reactive document.

Usage mirrors the paper's login page (section 2.4)::

    doc = Document(machine)
    name = doc.input(onkeyup=lambda ev: machine.react({"name": ev.value}))
    login = doc.button("login", onclick=lambda ev: machine.react({"login": True}))
    login.bind_enabled(lambda: machine.enableLogin.nowval)
    status = doc.react_node(lambda: machine.connState.nowval)

After every machine reaction the document refreshes its react nodes and
bound attributes — the Hop.js ``<react>`` tags.  ``doc.render()`` returns a
plain-text rendering for assertions and demos.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Union


class Event:
    """A GUI event delivered to handlers (``ev.value`` for inputs)."""

    def __init__(self, kind: str, target: "Element", value: Any = None):
        self.kind = kind
        self.target = target
        self.value = value

    def __repr__(self) -> str:
        return f"Event({self.kind}, value={self.value!r})"


class Node:
    """Base DOM node."""

    def render(self) -> str:
        raise NotImplementedError

    def refresh(self) -> None:
        """Recompute reactive content (no-op for static nodes)."""

    def walk(self):
        yield self


class Text(Node):
    def __init__(self, text: str):
        self.text = text

    def render(self) -> str:
        return self.text


class ReactNode(Node):
    """A ``<react>`` node: content recomputed from a thunk after every
    machine reaction."""

    def __init__(self, thunk: Callable[[], Any]):
        self.thunk = thunk
        self.content: str = ""
        self.refresh()

    def refresh(self) -> None:
        value = self.thunk()
        self.content = "" if value is None else str(value)

    def render(self) -> str:
        return self.content


class Element(Node):
    """An element with attributes, children, listeners and optional
    reactive attribute bindings."""

    _ids = itertools.count()

    def __init__(self, tag: str, **attrs: Any):
        self.tag = tag
        self.id = attrs.pop("id", f"{tag}#{next(Element._ids)}")
        self.attrs: Dict[str, Any] = {}
        self.children: List[Node] = []
        self.listeners: Dict[str, List[Callable[[Event], None]]] = {}
        #: attribute name -> thunk recomputed on refresh
        self.bindings: Dict[str, Callable[[], Any]] = {}
        self.value: Any = ""
        for key, value in attrs.items():
            if key.startswith("on") and callable(value):
                self.listeners.setdefault(key[2:], []).append(value)
            else:
                self.attrs[key] = value

    # -- tree -------------------------------------------------------------

    def append(self, child: Union[Node, str]) -> Node:
        if isinstance(child, str):
            child = Text(child)
        self.children.append(child)
        return child

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    # -- events ----------------------------------------------------------------

    def add_listener(self, kind: str, handler: Callable[[Event], None]) -> None:
        self.listeners.setdefault(kind, []).append(handler)

    def dispatch(self, kind: str, value: Any = None) -> Event:
        event = Event(kind, self, value)
        if kind == "keyup":
            self.value = value
        if self.attrs.get("disabled") and kind == "click":
            return event  # disabled controls swallow clicks
        for handler in self.listeners.get(kind, ()):  # snapshot order
            handler(event)
        return event

    def click(self) -> Event:
        return self.dispatch("click")

    def keyup(self, value: str) -> Event:
        """Simulate typing: sets ``self.value`` and fires ``keyup``."""
        return self.dispatch("keyup", value)

    # -- reactive attributes ---------------------------------------------------

    def bind_attr(self, name: str, thunk: Callable[[], Any]) -> None:
        self.bindings[name] = thunk
        self.attrs[name] = thunk()

    def bind_enabled(self, thunk: Callable[[], bool]) -> None:
        """Bind the ``disabled`` attribute to the negation of ``thunk`` —
        the paper's ``this.disabled = !M.enableLogin.nowval``."""
        self.bind_attr("disabled", lambda: not thunk())

    def bind_class(self, thunk: Callable[[], Any]) -> None:
        self.bind_attr("class", thunk)

    def refresh(self) -> None:
        for name, thunk in self.bindings.items():
            self.attrs[name] = thunk()

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        attrs = [f'id="{self.id}"']
        for key, value in sorted(self.attrs.items()):
            if value is True:
                attrs.append(key)
            elif value is False or value is None:
                continue
            else:
                attrs.append(f'{key}="{value}"')
        head = " ".join([self.tag] + attrs)
        inner = "".join(child.render() for child in self.children)
        return f"<{head}>{inner}</{self.tag}>"

    def __repr__(self) -> str:
        return f"Element(<{self.tag} id={self.id}>)"


class Document(Element):
    """The page root, optionally wired to a reactive machine: after every
    machine reaction the document refreshes all reactive nodes (the role
    Hop.js' react-node dependency tracking plays in the paper)."""

    def __init__(self, machine: Optional[Any] = None):
        super().__init__("html", id="document")
        self.machine = machine
        if machine is not None:
            self._hook_machine(machine)

    def _hook_machine(self, machine: Any) -> None:
        original = machine.react

        def reacting(inputs=None):
            result = original(inputs)
            self.refresh_all()
            return result

        machine.react = reacting

    # -- convenience constructors (the HTML subset the paper uses) -----------

    def element(self, tag: str, parent: Optional[Element] = None, **attrs: Any) -> Element:
        element = Element(tag, **attrs)
        (parent or self).append(element)
        return element

    def input(self, parent: Optional[Element] = None, **attrs: Any) -> Element:
        return self.element("input", parent, **attrs)

    def button(self, label: str, parent: Optional[Element] = None, **attrs: Any) -> Element:
        button = self.element("button", parent, **attrs)
        button.append(label)
        return button

    def div(self, parent: Optional[Element] = None, **attrs: Any) -> Element:
        return self.element("div", parent, **attrs)

    def react_node(self, thunk: Callable[[], Any], parent: Optional[Element] = None) -> ReactNode:
        node = ReactNode(thunk)
        (parent or self).append(node)
        return node

    # -- refresh ----------------------------------------------------------------

    def refresh_all(self) -> None:
        for node in self.walk():
            node.refresh()

    def find(self, element_id: str) -> Element:
        for node in self.walk():
            if isinstance(node, Element) and node.id == element_id:
                return node
        raise KeyError(element_id)
