"""Minimal virtual DOM with reactive nodes.

The paper's GUIs are Hop.js HTML with ``<react>`` nodes that re-render when
the reactive machine's output signals change, plus event handlers that call
``M.react({...})``.  This package reproduces that surface headlessly: a
small element tree, ``ReactNode`` contents recomputed after every machine
reaction, and event simulation (``click``, ``keyup``) for tests.
"""

from repro.dom.nodes import Document, Element, ReactNode, Text

__all__ = ["Document", "Element", "ReactNode", "Text"]
