"""HipHop-level resilience: the ``Guarded`` wrapper module.

The host combinators (:mod:`repro.host.resilience`) keep failures on the
promise rejection path; ``Guarded`` lifts them the rest of the way into
the synchronous world.  It races an asynchronous host operation against a
timeout and converts every outcome into a *signal* — ``Done(value)``,
``Error(reason)``, or ``Timeout`` — so the surrounding HipHop program
orchestrates failure handling with ordinary ``await`` / ``abort`` logic
and nothing ever raises across a reaction.

Usage::

    run Guarded(op=fetchThing, ms=2000, Done as got, Error as failed, ...)

where ``op`` is a host binding: a zero-argument callable returning a
promise-like (e.g. ``lambda: with_retry(loop, post)``).  The machine
needs ``setTimeout``/``clearTimeout`` in its host globals
(``loop.bindings()``), like every timer-using stdlib module.
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang.ast import Module, ModuleTable
from repro.syntax import parse_module

#: Race ``op()`` against an ``ms``-millisecond timeout.  Exactly one of
#: Done/Error/Timeout is emitted, in the instant the race is decided; the
#: loser's async is killed, its late settlement discarded (stale
#: generation).  The notify value is tagged ["ok"|"err", payload] because
#: a completion signal carries one value but we must ship the branch too.
GUARDED_SOURCE = """
module Guarded(var op, var ms, out Done, out Timeout, out Error) {
  signal outcome, elapsed;
  T: fork {
    async outcome {
      this.resp = op();
      this.resp.then(v => this.notify(["ok", v]));
      this.resp.catch(e => this.notify(["err", e]))
    };
    if (outcome.nowval[0] == "ok") {
      emit Done(outcome.nowval[1])
    } else {
      emit Error(outcome.nowval[1])
    }
    break T
  } par {
    async elapsed {
      this.tmt = setTimeout(() => this.notify(true), ms)
    } kill {
      clearTimeout(this.tmt)
    };
    emit Timeout();
    break T
  }
}
"""


@lru_cache(maxsize=None)
def guarded_module() -> Module:
    return parse_module(GUARDED_SOURCE)


def resilience_table() -> ModuleTable:
    """A fresh module table holding the resilience modules."""
    return ModuleTable([guarded_module()])
