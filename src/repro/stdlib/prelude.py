"""The standard-library modules shipped with hiphop-py.

``Timer`` is the paper's library module (section 2.2.5), verbatim modulo
syntax: an ``async`` block wrapping ``setInterval``, counting seconds into
its ``time`` signal via ``this.react``, with a ``kill`` handler releasing
the interval when the timer is preempted for any reason.

Machines using these modules need the host timer API in their globals —
pass ``loop.bindings()`` from :class:`repro.host.SimulatedLoop` (or the
asyncio adapter).
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang.ast import Module, ModuleTable
from repro.syntax import parse_module

#: The paper's Timer module: emits `time` every second with the elapsed
#: seconds since it started; cleans its interval up when killed.
TIMER_SOURCE = """
module Timer(inout time) {
  async {
    this.react({[time.signame]: this.sec = 0});
    this.intv = setInterval(() => this.react({[time.signame]: ++this.sec}), 1000)
  } kill {
    clearInterval(this.intv)
  }
}
"""

#: A one-shot timeout: emits `elapsed` once, `ms` milliseconds after start.
TIMEOUT_SOURCE = """
module Timeout(var ms, out elapsed) {
  async elapsed {
    this.tmt = setTimeout(() => this.notify(true), ms)
  } kill {
    clearTimeout(this.tmt)
  }
}
"""

#: A metronome: emits `tick` every `ms` milliseconds until killed.  Like
#: the paper's Timer, the tick signal must be `inout` at the machine
#: interface (the async body injects it through `this.react`).
TICKER_SOURCE = """
module Ticker(var ms, inout tick) {
  async {
    this.intv = setInterval(() => this.react({[tick.signame]: true}), ms)
  } kill {
    clearInterval(this.intv)
  }
}
"""


@lru_cache(maxsize=None)
def timer_module() -> Module:
    return parse_module(TIMER_SOURCE)


@lru_cache(maxsize=None)
def timeout_module() -> Module:
    return parse_module(TIMEOUT_SOURCE)


@lru_cache(maxsize=None)
def ticker_module() -> Module:
    return parse_module(TICKER_SOURCE)


def prelude_table() -> ModuleTable:
    """A fresh module table pre-loaded with the standard modules; add your
    own modules to it and pass it to the machine/compiler."""
    from repro.stdlib.resilience import guarded_module

    return ModuleTable(
        [timer_module(), timeout_module(), ticker_module(), guarded_module()]
    )
