"""Standard library modules (the paper's ``Timer`` and friends)."""

from repro.stdlib.prelude import TIMER_SOURCE, prelude_table, timer_module

__all__ = ["timer_module", "prelude_table", "TIMER_SOURCE"]
