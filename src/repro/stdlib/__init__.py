"""Standard library modules (the paper's ``Timer`` and friends, plus the
``Guarded`` resilience wrapper)."""

from repro.stdlib.prelude import TIMER_SOURCE, prelude_table, timer_module
from repro.stdlib.resilience import GUARDED_SOURCE, guarded_module, resilience_table

__all__ = [
    "timer_module",
    "prelude_table",
    "TIMER_SOURCE",
    "guarded_module",
    "resilience_table",
    "GUARDED_SOURCE",
]
