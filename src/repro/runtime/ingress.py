"""Overload-resilient ingress: bounded mailboxes, rate limiting, EWMA.

The paper's reactive machine assumes the host feeds ``react(inputs)`` at
whatever rate events arrive; Skini explicitly targets audiences of
hundreds of concurrent participants.  Under a traffic spike that model
either queues unboundedly or stalls the host loop.  This module is the
explicit overload layer in between: every input offered to a machine is
**admitted, coalesced, shed, or rejected by a recorded policy decision**
— never silently dropped, never unboundedly buffered.

* :class:`Mailbox` — a bounded per-machine input queue with three
  shedding policies: ``reject`` (raise
  :class:`~repro.errors.OverloadError`, recorded), ``drop-oldest``
  (evict the head, recorded), and semantics-aware ``coalesce`` (merge
  the burst into the newest queued input map using each valued signal's
  combine function — last-wins for pure or combine-less signals — so a
  burst of N pending maps collapses into one instant whose trace equals
  the one-instant-per-merged-map oracle on every backend).
* :class:`TokenBucket` — the fleet admission rate limiter (tokens refill
  continuously against loop time; acquisition is all-or-nothing).
* :class:`LatencyEwma` — exponentially-weighted reaction latency tracker
  driving adaptive batch sizing in
  :class:`~repro.runtime.fleet.FleetIngress`.

Accounting invariant (checked by ``tests/test_overload.py`` and gated by
``benchmarks/bench_overload.py``): for every mailbox,

    offered == admitted + coalesced + rejected

and every eviction increments ``dropped`` — so the number of input maps
ever lost is exactly ``rejected + dropped``, all on the record.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

from repro.errors import MachineError, OverloadError

#: the pluggable shedding policies of :class:`Mailbox`
POLICIES = ("reject", "drop-oldest", "coalesce")

#: admission decisions recorded by :meth:`Mailbox.offer`
ADMITTED = "admitted"
COALESCED = "coalesced"
DROPPED_OLDEST = "dropped-oldest"
REJECTED = "rejected"
RATE_LIMITED = "rate-limited"


def merge_inputs(
    older: Mapping[str, Any],
    newer: Mapping[str, Any],
    combines: Optional[Mapping[str, Optional[Callable[[Any, Any], Any]]]] = None,
) -> Dict[str, Any]:
    """Merge two pending input maps into the map of one combined instant.

    For each signal present in both maps, a declared combine function
    merges the values exactly as two emissions within one instant would
    (``RuntimeSignal.write`` combines re-emissions); signals without one
    — pure presence (``True``) or plain valued signals — keep the
    *newer* value (last-wins, matching the newest emission a machine
    would have observed last).  Signals present in only one map carry
    over unchanged, so presence is the union of the two instants.
    """
    merged = dict(older)
    combines = combines or {}
    for name, value in newer.items():
        if name in merged:
            combine = combines.get(name)
            if combine is not None and merged[name] is not True and value is not True:
                merged[name] = combine(merged[name], value)
            else:
                merged[name] = value
        else:
            merged[name] = value
    return merged


class Mailbox:
    """A bounded input queue guarding one reactive machine.

    :param capacity: maximum number of pending input maps (≥ 1).
    :param policy: what happens to an ``offer`` when full — ``"reject"``
        raises :class:`~repro.errors.OverloadError` (after recording the
        rejection), ``"drop-oldest"`` evicts the head of the queue, and
        ``"coalesce"`` merges the offered map into the newest queued map
        with :func:`merge_inputs`.
    :param combines: per-signal combine functions for ``coalesce``
        (typically harvested from the machine via :meth:`for_machine`).
    :param name: label used in error messages and stats.
    """

    def __init__(
        self,
        capacity: int = 64,
        policy: str = "coalesce",
        combines: Optional[Mapping[str, Optional[Callable[[Any, Any], Any]]]] = None,
        name: str = "mailbox",
    ):
        if capacity < 1:
            raise ValueError(f"mailbox capacity must be >= 1, got {capacity}")
        if policy not in POLICIES:
            raise MachineError(
                f"unknown mailbox policy {policy!r}; expected one of {POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self.combines = dict(combines or {})
        self.name = name
        self._queue: Deque[Dict[str, Any]] = deque()
        #: the admission record: every offered map lands in exactly one of
        #: admitted / coalesced / rejected, and every eviction in dropped
        self.stats: Dict[str, int] = {
            "offered": 0,
            "admitted": 0,
            "coalesced": 0,
            "rejected": 0,
            "dropped": 0,
        }

    @classmethod
    def for_machine(
        cls,
        machine: Any,
        capacity: int = 64,
        policy: str = "coalesce",
    ) -> "Mailbox":
        """A mailbox whose coalescing respects ``machine``'s declared
        combine functions: each input/inout interface signal's resolved
        combine is used to merge burst values without changing HipHop
        semantics (a merged map reacts exactly like the same emissions
        combined within one instant)."""
        combines: Dict[str, Optional[Callable[[Any, Any], Any]]] = {}
        circuit = machine.compiled.circuit
        for sig_name, info in circuit.interface.items():
            if info.input_net is not None:
                combines[sig_name] = machine._signals[info.slot].combine
        return cls(capacity, policy, combines, name=f"mailbox:{machine.name}")

    # -- the admission API ----------------------------------------------

    def offer(self, inputs: Mapping[str, Any]) -> str:
        """Offer one input map; returns the recorded admission decision
        (one of :data:`ADMITTED` / :data:`COALESCED` /
        :data:`DROPPED_OLDEST`).  Under the ``reject`` policy a full
        mailbox records the rejection and raises
        :class:`~repro.errors.OverloadError`."""
        self.stats["offered"] += 1
        entry = dict(inputs)
        if len(self._queue) < self.capacity:
            self._queue.append(entry)
            self.stats["admitted"] += 1
            return ADMITTED
        if self.policy == "coalesce":
            self._queue[-1] = merge_inputs(self._queue[-1], entry, self.combines)
            self.stats["coalesced"] += 1
            return COALESCED
        if self.policy == "drop-oldest":
            self._queue.popleft()
            self.stats["dropped"] += 1
            self._queue.append(entry)
            self.stats["admitted"] += 1
            return DROPPED_OLDEST
        self.stats["rejected"] += 1
        raise OverloadError(
            f"{self.name} full ({self.capacity} pending) under policy "
            f"'reject'; input refused",
            inputs=entry,
            pending=len(self._queue),
        )

    # -- the drain side ---------------------------------------------------

    def take(self) -> Dict[str, Any]:
        """Dequeue the oldest pending input map."""
        if not self._queue:
            raise MachineError(f"{self.name} is empty")
        return self._queue.popleft()

    def drain(self) -> List[Dict[str, Any]]:
        """Dequeue everything, oldest first."""
        out = list(self._queue)
        self._queue.clear()
        return out

    def collapse(self) -> Optional[Dict[str, Any]]:
        """Merge *all* pending maps into one instant's map (oldest to
        newest, same merge rule as the coalesce policy) and leave it as
        the only queued entry.  Returns the merged map, or ``None`` when
        empty.  ``len(queue) - 1`` merges are recorded as coalesced."""
        if not self._queue:
            return None
        merged = self._queue.popleft()
        while self._queue:
            merged = merge_inputs(merged, self._queue.popleft(), self.combines)
            self.stats["coalesced"] += 1
            self.stats["admitted"] -= 1
        self._queue.append(merged)
        return dict(merged)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def shed(self) -> int:
        """Total input maps lost — always on the record."""
        return self.stats["rejected"] + self.stats["dropped"]

    def check_accounting(self) -> None:
        """Assert the zero-silent-drop invariant (used by tests and the
        overload bench gate)."""
        s = self.stats
        if s["offered"] != s["admitted"] + s["coalesced"] + s["rejected"]:
            raise MachineError(
                f"{self.name} accounting violated: offered {s['offered']} != "
                f"admitted {s['admitted']} + coalesced {s['coalesced']} + "
                f"rejected {s['rejected']}"
            )

    def __repr__(self) -> str:
        return (
            f"Mailbox({self.name}, {len(self._queue)}/{self.capacity} "
            f"pending, policy={self.policy!r}, stats={self.stats})"
        )


class TokenBucket:
    """Continuous-refill token bucket for fleet admission control.

    Time is supplied by the caller in milliseconds (so the bucket runs
    against :class:`~repro.host.SimulatedLoop` virtual time just as well
    as a wall clock) and must be monotone.

    :param rate_per_s: sustained admission rate, tokens per second.
    :param burst: bucket capacity (defaults to one second's worth).
    """

    def __init__(self, rate_per_s: float, burst: Optional[float] = None,
                 now_ms: float = 0.0):
        if rate_per_s <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate_per_s = rate_per_s
        self.burst = float(burst) if burst is not None else max(1.0, rate_per_s)
        if self.burst <= 0:
            raise ValueError("token bucket burst must be positive")
        self.tokens = self.burst
        self._last_ms = now_ms
        self.granted = 0
        self.refused = 0

    def _refill(self, now_ms: float) -> None:
        elapsed = now_ms - self._last_ms
        if elapsed > 0:
            self.tokens = min(
                self.burst, self.tokens + elapsed * self.rate_per_s / 1000.0
            )
            self._last_ms = now_ms

    def try_acquire(self, now_ms: float, tokens: float = 1.0) -> bool:
        """All-or-nothing: take ``tokens`` if available at ``now_ms``."""
        self._refill(now_ms)
        if self.tokens >= tokens:
            self.tokens -= tokens
            self.granted += 1
            return True
        self.refused += 1
        return False

    def __repr__(self) -> str:
        return (
            f"TokenBucket({self.rate_per_s}/s, burst={self.burst}, "
            f"{self.tokens:.2f} tokens)"
        )


class LatencyEwma:
    """Exponentially-weighted moving average of reaction latency, the
    load signal for adaptive batch sizing (recent reactions dominate, so
    the controller reacts to the spike, not to the session average)."""

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("EWMA alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None
        self.samples = 0

    def observe(self, latency_ms: float) -> float:
        if self.value is None:
            self.value = latency_ms
        else:
            self.value += self.alpha * (latency_ms - self.value)
        self.samples += 1
        return self.value

    def __repr__(self) -> str:
        shown = f"{self.value:.3f} ms" if self.value is not None else "no samples"
        return f"LatencyEwma({shown}, n={self.samples})"
