"""Minimal RFC 6455 WebSocket framing and upgrade handshake (sans-I/O).

The network edge (:mod:`repro.runtime.gateway`) speaks WebSocket to its
clients but must not grow a hard dependency for it: this module is the
complete wire layer, implemented over plain bytes with **no** I/O of its
own, so the same code serves real asyncio TCP streams, the in-memory
duplex pipes of :mod:`repro.host.netchaos`, and any chaos-wrapped
transport in between.

Scope — exactly what the gateway needs, nothing more:

* :func:`encode_frame` / :class:`FrameAssembler` — framing both ways,
  including 16/64-bit extended lengths, client-side masking, fragmented
  data messages (reassembled), and interleaved control frames;
* :func:`handshake_request` / :func:`handshake_accept` /
  :func:`accept_key` — the HTTP/1.1 upgrade in both roles;
* :func:`read_http_head` — the only I/O-adjacent helper: drains a
  reader up to the blank line *without over-reading* (the first
  WebSocket frame often arrives in the same TCP segment as the
  handshake; the leftover bytes are returned for the frame assembler).

Anything outside the accepted subset raises :class:`ProtocolError`; the
gateway treats that as a broken connection, never as a crash.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Any, Dict, List, Optional, Tuple

#: RFC 6455 §1.3 — the fixed GUID appended to the client key before SHA-1.
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

CONTROL_OPS = frozenset((OP_CLOSE, OP_PING, OP_PONG))
DATA_OPS = frozenset((OP_TEXT, OP_BINARY))

#: refuse absurd frames before allocating for them (a corrupted length
#: header must not look like a 2**60-byte allocation request)
MAX_PAYLOAD = 1 << 23


class ProtocolError(Exception):
    """The peer sent bytes outside the accepted WebSocket/HTTP subset."""


class Frame:
    """One decoded WebSocket frame (or reassembled data message)."""

    __slots__ = ("opcode", "payload", "fin")

    def __init__(self, opcode: int, payload: bytes, fin: bool = True):
        self.opcode = opcode
        self.payload = payload
        self.fin = fin

    def __repr__(self) -> str:
        return f"Frame(op={self.opcode:#x}, {len(self.payload)} bytes)"


def _apply_mask(data: bytes, key: bytes) -> bytes:
    """XOR ``data`` with the repeating 4-byte ``key`` (mask and unmask
    are the same operation).  One big-int XOR instead of a Python loop —
    ~50x faster on kilobyte frames."""
    if not data:
        return data
    repeated = key * ((len(data) + 3) // 4)
    return (
        int.from_bytes(data, "little")
        ^ int.from_bytes(repeated[: len(data)], "little")
    ).to_bytes(len(data), "little")


def encode_frame(
    opcode: int,
    payload: bytes = b"",
    mask: bool = False,
    fin: bool = True,
) -> bytes:
    """Encode one frame.  Clients MUST mask (RFC 6455 §5.3); servers MUST
    NOT — the caller picks via ``mask``."""
    head = bytearray()
    head.append((0x80 if fin else 0x00) | (opcode & 0x0F))
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        head.append(mask_bit | length)
    elif length < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        return bytes(head) + key + _apply_mask(payload, key)
    return bytes(head) + payload


def encode_text(text: str, mask: bool = False) -> bytes:
    return encode_frame(OP_TEXT, text.encode("utf-8"), mask=mask)


def encode_close(code: int = 1000, reason: str = "", mask: bool = False) -> bytes:
    payload = struct.pack("!H", code) + reason.encode("utf-8")
    return encode_frame(OP_CLOSE, payload, mask=mask)


def parse_close(payload: bytes) -> Tuple[int, str]:
    """Decode a close frame payload into ``(code, reason)`` (1005 — "no
    status received" — when the payload is empty, per RFC 6455 §7.1.5)."""
    if len(payload) < 2:
        return 1005, ""
    (code,) = struct.unpack("!H", payload[:2])
    return code, payload[2:].decode("utf-8", "replace")


class FrameAssembler:
    """Incremental frame decoder: feed arbitrary byte chunks, get back
    complete messages.

    Fragmented data messages (TEXT/BINARY continued by CONT frames) are
    reassembled and delivered as one :class:`Frame` with the original
    opcode; control frames — which may interleave with a fragmented
    message — are delivered as they complete.  Partial frames stay
    buffered across :meth:`feed` calls, which is what makes the chaos
    transports' split writes exercise real mid-frame states.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._message: Optional[Tuple[int, bytearray]] = None

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer += data
        out: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return out
            opcode, payload, fin = frame
            if opcode in CONTROL_OPS:
                if not fin:
                    raise ProtocolError("fragmented control frame")
                out.append(Frame(opcode, payload))
            elif opcode in DATA_OPS:
                if self._message is not None:
                    raise ProtocolError(
                        "new data message started inside a fragmented one"
                    )
                if fin:
                    out.append(Frame(opcode, payload))
                else:
                    self._message = (opcode, bytearray(payload))
            elif opcode == OP_CONT:
                if self._message is None:
                    raise ProtocolError("continuation frame without a message")
                first_op, parts = self._message
                parts += payload
                if fin:
                    self._message = None
                    out.append(Frame(first_op, bytes(parts)))
            else:
                raise ProtocolError(f"reserved opcode {opcode:#x}")

    def _next_frame(self) -> Optional[Tuple[int, bytes, bool]]:
        buf = self._buffer
        if len(buf) < 2:
            return None
        b1, b2 = buf[0], buf[1]
        if b1 & 0x70:
            raise ProtocolError("RSV bits set without a negotiated extension")
        fin = bool(b1 & 0x80)
        opcode = b1 & 0x0F
        masked = bool(b2 & 0x80)
        length = b2 & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < 4:
                return None
            (length,) = struct.unpack_from("!H", buf, 2)
            offset = 4
        elif length == 127:
            if len(buf) < 10:
                return None
            (length,) = struct.unpack_from("!Q", buf, 2)
            offset = 10
        if length > MAX_PAYLOAD:
            raise ProtocolError(f"frame of {length} bytes exceeds {MAX_PAYLOAD}")
        key = b""
        if masked:
            if len(buf) < offset + 4:
                return None
            key = bytes(buf[offset : offset + 4])
            offset += 4
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset : offset + length])
        del buf[: offset + length]
        if masked:
            payload = _apply_mask(payload, key)
        return opcode, payload, fin


# ---------------------------------------------------------------------------
# the HTTP/1.1 upgrade handshake
# ---------------------------------------------------------------------------


def accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_request(
    host: str, path: str = "/ws", key: Optional[str] = None
) -> Tuple[bytes, str]:
    """The client's upgrade request; returns ``(bytes, key)`` so the
    caller can verify the echoed accept header."""
    if key is None:
        key = base64.b64encode(os.urandom(16)).decode("ascii")
    request = (
        f"GET {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Upgrade: websocket\r\n"
        f"Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\n"
        f"Sec-WebSocket-Version: 13\r\n"
        f"\r\n"
    )
    return request.encode("ascii"), key


def handshake_accept(key: str) -> bytes:
    """The server's 101 response for a validated upgrade request."""
    return (
        f"HTTP/1.1 101 Switching Protocols\r\n"
        f"Upgrade: websocket\r\n"
        f"Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
        f"\r\n"
    ).encode("ascii")


def http_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    reason: str = "",
) -> bytes:
    """A plain (non-upgrade) HTTP/1.1 response — the gateway's
    ``/healthz`` / ``/statsz`` endpoints and its error replies."""
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               426: "Upgrade Required", 429: "Too Many Requests",
               503: "Service Unavailable"}
    text = reason or reasons.get(status, "Response")
    head = (
        f"HTTP/1.1 {status} {text}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


def parse_http_head(head: bytes) -> Tuple[str, Dict[str, str]]:
    """Split an HTTP head (request or response, up to but excluding the
    blank line) into its start line and a lower-cased header dict."""
    try:
        lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError as err:  # pragma: no cover - latin-1 total
        raise ProtocolError(f"undecodable HTTP head: {err}") from None
    if not lines or not lines[0]:
        raise ProtocolError("empty HTTP head")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed HTTP header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return lines[0], headers


async def read_http_head(reader: Any, limit: int = 65536) -> Tuple[bytes, bytes]:
    """Read from ``reader`` (anything with ``async read(n)``) until the
    end of the HTTP head; returns ``(head, leftover)`` where ``leftover``
    is whatever arrived past the blank line (e.g. an eagerly-sent first
    WebSocket frame) — feed it to the :class:`FrameAssembler`."""
    buf = bytearray()
    while True:
        end = buf.find(b"\r\n\r\n")
        if end >= 0:
            return bytes(buf[:end]), bytes(buf[end + 4:])
        if len(buf) > limit:
            raise ProtocolError(f"HTTP head exceeds {limit} bytes")
        chunk = await reader.read(8192)
        if not chunk:
            raise ProtocolError("connection closed inside the HTTP head")
        buf += chunk
