"""Shard worker: the child-process side of the multi-process fleet.

A worker owns one *shard* of a sharded fleet (see
:mod:`repro.runtime.shard`): it hydrates the shared compiled plan once
(through the structural compile cache, so every member it hosts shares
one circuit and evaluation plan), then serves a command loop over a
length-prefixed pipe protocol — spawn/adopt/extract members, drive
instants, offer and pump mailbox traffic, checkpoint, report digests.

Durability is local to the worker: each member gets its own
:class:`~repro.runtime.journal.FileJournal` and snapshot file inside the
worker's directory, maintained by a
:class:`~repro.runtime.recovery.MachineSupervisor` with the write-ahead
checkpoint ordering (snapshot persisted *before* the journal prefix it
covers is truncated).  When the worker is killed, the manager recovers
its members from exactly those files — nothing the worker held only in
memory is needed.

Host effects (listener deliveries on the configured ``effect_signals``)
are appended to the worker's ``effects.log`` as JSON lines *as they
fire*, which is what lets the chaos tests prove exactly-once delivery
across crashes: replayed instants suppress listeners, so an effect line
appears exactly when its instant ran live.

The wire protocol is synchronous request/response: every command dict
gets exactly one reply, ``{"ok": True, "value": ...}`` or
``{"ok": False, "kind": <exception type>, "error": <message>}``.  The
worker never aborts its loop on a command error, and exits via
``os._exit`` so a forked child can never run the parent's teardown
(pytest finalizers, atexit hooks) by accident.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ShardError
from repro.compiler.compile import compile_cached, hydrate_plan_artifact
from repro.runtime.fleet import FleetIngress, MachineFleet
from repro.runtime.journal import FileJournal, JournalEntry
from repro.runtime.recovery import MachineSupervisor

_HEADER = struct.Struct(">I")

#: refuse frames above this size (a corrupt length prefix would otherwise
#: make the reader try to allocate gigabytes)
MAX_FRAME_BYTES = 256 * 1024 * 1024


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


class Channel:
    """One direction-pair of the pipe protocol: length-prefixed pickled
    frames over two raw pipe fds (one to read, one to write).

    ``recv`` raises :class:`EOFError` when the far end closed (the peer
    process died) and :class:`TimeoutError` when ``timeout`` seconds pass
    without a complete frame.
    """

    def __init__(self, recv_fd: int, send_fd: int):
        self.recv_fd = recv_fd
        self.send_fd = send_fd
        self._buf = b""

    def send(self, obj: Any) -> None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        _write_all(self.send_fd, _HEADER.pack(len(payload)) + payload)

    def _read_exact(self, n: int, timeout: Optional[float]) -> bytes:
        while len(self._buf) < n:
            if timeout is not None:
                ready, _, _ = select.select([self.recv_fd], [], [], timeout)
                if not ready:
                    raise TimeoutError(
                        f"no frame within {timeout}s on fd {self.recv_fd}"
                    )
            chunk = os.read(self.recv_fd, 1 << 16)
            if not chunk:
                raise EOFError(f"pipe fd {self.recv_fd} closed")
            self._buf += chunk
        out, self._buf = self._buf[:n], self._buf[n:]
        return out

    def recv(self, timeout: Optional[float] = None) -> Any:
        (length,) = _HEADER.unpack(self._read_exact(_HEADER.size, timeout))
        if length > MAX_FRAME_BYTES:
            raise ShardError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
                "protocol limit (corrupt length prefix?)"
            )
        return pickle.loads(self._read_exact(length, timeout))

    def close(self) -> None:
        for fd in (self.recv_fd, self.send_fd):
            try:
                os.close(fd)
            except OSError:
                pass


class WorkerConfig:
    """Everything a worker needs to build its shard.

    Exactly one of ``artifact`` (a :func:`~repro.compiler.compile.plan_artifact`
    payload, portable across cold-started processes) or ``module`` (the
    AST object itself, valid only under ``fork`` where the child inherits
    the parent's heap) must be provided.
    """

    def __init__(
        self,
        directory: str,
        artifact: Optional[bytes] = None,
        module: Any = None,
        modules: Any = None,
        options: Any = None,
        backend: str = "auto",
        checkpoint_every: Optional[int] = 25,
        capacity: int = 64,
        policy: str = "coalesce",
        machine_kwargs: Optional[Dict[str, Any]] = None,
        effect_signals: Sequence[str] = (),
        max_retries: int = 1,
        quarantine_after: int = 3,
    ):
        self.directory = directory
        self.artifact = artifact
        self.module = module
        self.modules = modules
        self.options = options
        self.backend = backend
        self.checkpoint_every = checkpoint_every
        self.capacity = capacity
        self.policy = policy
        self.machine_kwargs = dict(machine_kwargs or {})
        self.effect_signals = tuple(effect_signals)
        self.max_retries = max_retries
        self.quarantine_after = quarantine_after


class _Roster:
    """A ``FleetSupervisor``-shaped shim: the per-fleet-index supervisor
    list :class:`~repro.runtime.fleet.FleetIngress` consults for health."""

    def __init__(self) -> None:
        self.members: List[MachineSupervisor] = []


class ShardWorker:
    """The in-process shard state behind the command loop.  Also usable
    directly (without a child process) by tests that want to poke one
    shard's logic deterministically."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        os.makedirs(config.directory, exist_ok=True)
        if config.artifact is not None:
            self.compiled = hydrate_plan_artifact(config.artifact)
        elif config.module is not None:
            self.compiled = compile_cached(
                config.module, config.modules, config.options
            )
        else:
            raise ShardError("WorkerConfig needs an artifact or a module")
        self.fingerprint = self.compiled.fingerprint
        self.fleet = MachineFleet(
            self.compiled, backend=config.backend, **self.config.machine_kwargs
        )
        self.roster = _Roster()
        self.ingress = FleetIngress(
            self.fleet,
            capacity=config.capacity,
            policy=config.policy,
            supervisor=self.roster,
        )
        #: global member id → fleet index (live members only)
        self.members: Dict[int, int] = {}
        self.supervisors: Dict[int, MachineSupervisor] = {}
        self._effects_fh = open(
            os.path.join(config.directory, "effects.log"), "a", encoding="utf-8"
        )
        #: one pre-built machine kept warm between commands so adopting a
        #: migrated member pays list-append, not circuit allocation
        self._spare: Optional[Any] = None
        self._crash_between = False
        self._crash_mid: Optional[Dict[str, Any]] = None

    # -- member lifecycle ------------------------------------------------

    def _journal_path(self, gid: int) -> str:
        return os.path.join(self.config.directory, f"member-{gid}.journal")

    def _snap_path(self, gid: int) -> str:
        return os.path.join(self.config.directory, f"member-{gid}.snap")

    def _snap_writer(self, gid: int):
        """An ``on_checkpoint`` hook persisting the snapshot atomically
        (tmp file + ``os.replace``) *before* the journal is truncated."""
        path = self._snap_path(gid)

        def write(snap: Dict[str, Any]) -> None:
            import json

            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(snap))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)

        return write

    def _wire_effects(self, gid: int, machine: Any) -> None:
        import json

        for name in self.config.effect_signals:
            # Effect signals are fleet-level config spanning program
            # versions: a hot upgrade may add or remove outputs, so names
            # the program running here does not declare are skipped, not
            # errors.
            if name not in machine.compiled.circuit.interface:
                continue

            def listener(value: Any, _gid: int = gid, _m: Any = machine, _name: str = name) -> None:
                self._effects_fh.write(
                    json.dumps(
                        {
                            "member": _gid,
                            "seq": _m.reaction_count - 1,
                            "signal": _name,
                            "value": value,
                        }
                    )
                    + "\n"
                )
                self._effects_fh.flush()

            machine.add_listener(name, listener)

    def replenish(self) -> None:
        """Pre-warm the spare machine.  Called by the command loop after
        each reply — i.e. off the critical path of whatever command (an
        adopt, a spawn) just consumed the spare."""
        if self._spare is None:
            self._spare = self.fleet.build_machine()

    def close(self) -> None:
        """Release the shard's file handles (effects log and member
        journals).  The child-process path exits via ``os._exit`` and
        doesn't strictly need this, but in-process users (tests, embedded
        shards) must not leak descriptors."""
        for supervisor in self.supervisors.values():
            try:
                supervisor.journal.close()
            except Exception:
                pass
        if not self._effects_fh.closed:
            self._effects_fh.close()

    def _take_spare(self) -> Optional[Any]:
        machine, self._spare = self._spare, None
        return machine

    def _install(self, gid: int, defer_persist: bool = False) -> MachineSupervisor:
        """Spawn a fresh member for ``gid`` with a fresh journal and a
        persisted initial checkpoint; returns its supervisor.

        ``defer_persist`` skips fsyncing the (blank) initial snapshot —
        for the adopt path, which restores real state and persists its
        own checkpoint immediately after.
        """
        if gid in self.members:
            raise ShardError(f"member {gid} already lives on this shard")
        index = self.ingress.add_member(machine=self._take_spare())
        machine = self.fleet[index]
        for path in (self._journal_path(gid), self._snap_path(gid)):
            if os.path.exists(path):
                os.remove(path)
        supervisor = MachineSupervisor(
            machine,
            journal=FileJournal(self._journal_path(gid)),
            checkpoint_every=self.config.checkpoint_every,
            max_retries=self.config.max_retries,
            quarantine_after=self.config.quarantine_after,
            on_checkpoint=None if defer_persist else self._snap_writer(gid),
        )
        if defer_persist:
            supervisor.on_checkpoint = self._snap_writer(gid)
        self.roster.members.append(supervisor)
        self._wire_effects(gid, machine)
        self.members[gid] = index
        self.supervisors[gid] = supervisor
        return supervisor

    def spawn(self, gids: Sequence[int]) -> Dict[int, int]:
        out = {}
        for gid in gids:
            supervisor = self._install(gid)
            out[gid] = supervisor.machine.reaction_count
        return out

    def adopt(
        self,
        gid: int,
        snapshot: Dict[str, Any],
        committed: Sequence[Dict[str, Any]],
        tail: Sequence[Dict[str, Any]],
        pending: Sequence[Dict[str, Any]] = (),
    ) -> Dict[str, Any]:
        """Receive a member from another shard (migration) or from a dead
        worker's durable files (failover): restore its snapshot, silently
        replay the committed journal tail, persist a fresh checkpoint,
        then redo any *uncommitted* tail **live** so its host effects
        happen (exactly once — they never happened before the crash), and
        finally enqueue the shipped mailbox backlog."""
        supervisor = self._install(gid, defer_persist=True)
        machine = supervisor.machine
        machine.attach_journal(None)
        machine.restore(snapshot)
        machine.replay([JournalEntry.from_json(e) for e in committed])
        machine.attach_journal(supervisor.journal)
        # re-checkpoint at the recovered boundary: the fresh journal is
        # empty, so the snapshot alone must cover everything replayed
        supervisor.checkpoint()
        redone: Dict[int, Dict[str, Any]] = {}
        for data in tail:
            entry = JournalEntry.from_json(data)
            for slot, value in entry.execs:
                state = machine._execs[slot]
                if state.running:
                    state.pending = True
                    state.pending_value = value
            result = supervisor.react(dict(entry.inputs))
            redone[entry.seq] = dict(result)
        for inputs in pending:
            self.ingress.offer(self.members[gid], inputs)
        return {
            "reaction_count": machine.reaction_count,
            "redone": redone,
            "digest": machine.state_digest(),
        }

    def extract(self, gid: int) -> Dict[str, Any]:
        """Ship member ``gid`` out of this shard: stop admitting to it,
        drain its mailbox backlog, snapshot between instants, and hand
        everything (snapshot, uncommitted journal tail, backlog) to the
        manager.  The member's durable files are removed — it no longer
        lives here."""
        index = self._index_of(gid)
        pending = self.ingress.retire(index)
        supervisor = self.supervisors[gid]
        machine = supervisor.machine
        snapshot = machine.snapshot()
        tail = [
            e.to_json()
            for e in supervisor.journal.entries(snapshot["reaction_count"])
            if not e.committed
        ]
        digest = machine.state_digest()
        machine.attach_journal(None)
        supervisor.journal.close()
        for path in (self._journal_path(gid), self._snap_path(gid)):
            if os.path.exists(path):
                os.remove(path)
        del self.members[gid]
        del self.supervisors[gid]
        return {
            "snapshot": snapshot,
            "tail": tail,
            "pending": pending,
            "reaction_count": snapshot["reaction_count"],
            "digest": digest,
        }

    def _index_of(self, gid: int) -> int:
        try:
            return self.members[gid]
        except KeyError:
            raise ShardError(f"member {gid} does not live on this shard") from None

    # -- driving ---------------------------------------------------------

    @staticmethod
    def _result_payload(supervisor: MachineSupervisor, result: Any) -> Dict[str, Any]:
        return {
            "emitted": dict(result),
            "terminated": bool(result.terminated),
            "paused": bool(result.paused),
            "reaction_count": supervisor.machine.reaction_count,
        }

    def react(self, gid: int, inputs: Dict[str, Any]) -> Dict[str, Any]:
        supervisor = self.supervisors[self._require(gid)]
        return self._result_payload(supervisor, supervisor.react(inputs))

    def _require(self, gid: int) -> int:
        self._index_of(gid)
        return gid

    def react_all(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """One supervised instant on every live member; the batch always
        completes — per-member failures are reported, not raised."""
        results: Dict[int, Dict[str, Any]] = {}
        failures: Dict[int, Tuple[str, str]] = {}
        for gid in sorted(self.members):
            supervisor = self.supervisors[gid]
            if supervisor.quarantined:
                failures[gid] = ("Quarantined", "member is quarantined")
                continue
            try:
                results[gid] = self._result_payload(
                    supervisor, supervisor.react(dict(inputs))
                )
            except Exception as err:
                failures[gid] = (type(err).__name__, str(err))
        return {"results": results, "failures": failures}

    def offer(self, gid: int, inputs: Dict[str, Any]) -> str:
        return self.ingress.offer(self._index_of(gid), inputs)

    def offer_all(self, inputs: Dict[str, Any]) -> Dict[int, str]:
        return {
            gid: self.ingress.offer(index, inputs)
            for gid, index in sorted(self.members.items())
        }

    def route(self, inputs: Dict[str, Any]) -> Tuple[int, str]:
        index, decision = self.ingress.route(inputs)
        for gid, idx in self.members.items():
            if idx == index:
                return gid, decision
        raise ShardError(f"routed to unknown fleet index {index}")

    def pump_all(self) -> Dict[str, Any]:
        by_index = self.ingress.pump_all()
        gid_of = {idx: gid for gid, idx in self.members.items()}
        return {
            "results": {
                gid_of[i]: {"emitted": dict(r)} for i, r in by_index.items()
                if i in gid_of
            },
            "failures": {
                gid_of[i]: (type(e).__name__, str(e))
                for i, e in self.ingress.last_failures.items()
                if i in gid_of
            },
        }

    # -- maintenance -----------------------------------------------------

    def checkpoint(self, gid: Optional[int] = None) -> Dict[int, int]:
        gids = [gid] if gid is not None else sorted(self.members)
        out = {}
        for g in gids:
            snap = self.supervisors[self._require(g)].checkpoint()
            out[g] = snap["reaction_count"]
        return out

    def digest(self, gid: int) -> str:
        return self.supervisors[self._require(gid)].machine.state_digest()

    def ping(self) -> Dict[str, Any]:
        return {
            "pid": os.getpid(),
            "members": sorted(self.members),
            "reactions": sum(
                s.machine.reaction_count for s in self.supervisors.values()
            ),
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "pid": os.getpid(),
            "members": sorted(self.members),
            "ingress": self.ingress.stats(),
            "supervisor": {
                "reactions": sum(s.stats["reactions"] for s in self.supervisors.values()),
                "checkpoints": sum(s.stats["checkpoints"] for s in self.supervisors.values()),
                "rollbacks": sum(s.stats["rollbacks"] for s in self.supervisors.values()),
            },
        }

    # -- chaos hooks -----------------------------------------------------

    def arm_crash(
        self,
        mode: str,
        after_appends: int = 1,
        gid: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Arm a self-SIGKILL (used by
        :class:`repro.host.chaos.WorkerCrasher`):

        * ``"between"`` — die right before the next driving command is
          processed, i.e. cleanly between instants;
        * ``"mid"`` — die immediately after the ``after_appends``-th
          write-ahead journal append (optionally counting only member
          ``gid``), i.e. *mid-instant*: the instant's inputs are durably
          journaled but it never committed and its effects never fired.
        """
        if mode == "between":
            self._crash_between = True
        elif mode == "mid":
            self._crash_mid = {"remaining": int(after_appends), "gid": gid}
            self._arm_mid_appends()
        else:
            raise ShardError(f"unknown crash mode {mode!r}")
        return {"armed": mode, "pid": os.getpid()}

    def _arm_mid_appends(self) -> None:
        armed = self._crash_mid

        def wrap(journal: Any) -> None:
            original = journal.append

            def append(entry: Any) -> None:
                original(entry)
                armed["remaining"] -= 1
                if armed["remaining"] <= 0:
                    os.kill(os.getpid(), signal.SIGKILL)

            journal.append = append

        target = armed.get("gid")
        for gid, supervisor in sorted(self.supervisors.items()):
            if target is None or gid == target:
                wrap(supervisor.journal)

    # -- command loop ----------------------------------------------------

    _DRIVING_OPS = frozenset(
        {"react", "react_all", "offer", "offer_all", "route", "pump_all"}
    )

    def handle(self, cmd: Dict[str, Any]) -> Any:
        op = cmd["op"]
        if self._crash_between and op in self._DRIVING_OPS:
            os.kill(os.getpid(), signal.SIGKILL)
        if op == "spawn":
            return self.spawn(cmd["gids"])
        if op == "adopt":
            return self.adopt(
                cmd["gid"], cmd["snapshot"], cmd["committed"], cmd["tail"],
                cmd.get("pending", ()),
            )
        if op == "extract":
            return self.extract(cmd["gid"])
        if op == "react":
            return self.react(cmd["gid"], cmd["inputs"])
        if op == "react_all":
            return self.react_all(cmd["inputs"])
        if op == "offer":
            return self.offer(cmd["gid"], cmd["inputs"])
        if op == "offer_all":
            return self.offer_all(cmd["inputs"])
        if op == "route":
            return self.route(cmd["inputs"])
        if op == "pump_all":
            return self.pump_all()
        if op == "checkpoint":
            return self.checkpoint(cmd.get("gid"))
        if op == "digest":
            return self.digest(cmd["gid"])
        if op == "ping":
            return self.ping()
        if op == "stats":
            return self.stats()
        if op == "arm_crash":
            return self.arm_crash(
                cmd["mode"], cmd.get("after_appends", 1), cmd.get("gid")
            )
        raise ShardError(f"unknown shard op {op!r}")


def worker_main(
    config: WorkerConfig,
    recv_fd: int,
    send_fd: int,
    close_fds: Sequence[int] = (),
) -> None:
    """Child-process entry point: close inherited fds belonging to other
    workers (so a SIGKILLed sibling's pipes actually reach EOF), build
    the shard, send the hello frame, and serve commands until shutdown or
    manager EOF.  Exits only via ``os._exit`` — a forked child must never
    unwind into the parent's interpreter teardown."""
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    chan = Channel(recv_fd, send_fd)
    shard = None
    try:
        try:
            shard = ShardWorker(config)
        except BaseException as err:
            chan.send(
                {"ok": False, "kind": type(err).__name__, "error": str(err)}
            )
            return
        chan.send(
            {
                "ok": True,
                "value": {"pid": os.getpid(), "fingerprint": shard.fingerprint},
            }
        )
        while True:
            try:
                cmd = chan.recv()
            except EOFError:
                return
            if cmd.get("op") == "shutdown":
                chan.send({"ok": True, "value": {"pid": os.getpid()}})
                return
            try:
                value = shard.handle(cmd)
            except Exception as err:
                chan.send(
                    {"ok": False, "kind": type(err).__name__, "error": str(err)}
                )
            else:
                chan.send({"ok": True, "value": value})
            try:
                # rebuild the spare while the manager digests the reply —
                # the next adopt/spawn then skips circuit allocation
                shard.replenish()
            except Exception:
                pass
    except (BrokenPipeError, EOFError):
        return
    finally:
        if shard is not None:
            try:
                shard.close()
            except Exception:
                pass
        os._exit(0)
