"""Write-ahead input journal for reactive machines.

A HipHop machine is a pure synchronous function of its inputs and its
between-instant state (paper §5: unit-delay registers + exec state are
the *only* memory).  Journaling therefore makes every machine durable:
append the instant's inputs *before* reacting, and recovery is simply

    machine.restore(latest_snapshot)
    machine.replay(journal.entries())

which deterministically re-derives the lost state — on any of the three
reaction backends, since snapshots are backend-portable.

Each :class:`JournalEntry` records the instant's external
nondeterminism: the input-signal dict *and* the exec completions
(``this.notify`` values) consumed by that instant.  Exec completions
arrive from host callbacks the replay does not re-run, so they must be
re-injected verbatim for the replayed trace to be byte-identical.

Two sinks are provided: :class:`MemoryJournal` (process-local, keeps raw
Python values) and :class:`FileJournal` (JSON-lines on disk, survives
the process; values must be JSON-able).  ``truncate`` drops the prefix a
checkpoint has made redundant; ``rewind`` drops a failed suffix before a
supervised retry.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import MachineError


def record_checksum(record: Dict[str, Any]) -> str:
    """Content checksum of one journal record: sha256 (truncated to 16
    hex chars) over the canonical JSON of everything except the ``sum``
    field.  Written with every :class:`FileJournal` record and verified
    on load, so bit-rotted records are detected instead of deserialized
    into a replay that silently diverges."""
    body = {key: value for key, value in record.items() if key != "sum"}
    data = json.dumps(body, sort_keys=True, default=repr)
    return hashlib.sha256(data.encode("utf-8")).hexdigest()[:16]


def _seal(record: Dict[str, Any]) -> str:
    record["sum"] = record_checksum(record)
    return json.dumps(record)


class TornJournalWarning(UserWarning):
    """Opening a :class:`FileJournal` recovered from a torn trailing
    record (the writing process was killed mid-append)."""


class JournalEntry:
    """One journaled instant: sequence number (the machine's
    ``reaction_count`` when the instant began), the input dict, and the
    exec completions ``[(slot, value), ...]`` consumed by the instant.

    ``committed`` flips once the instant completed (its host effects —
    listeners, exec actions — were delivered).  A trailing *uncommitted*
    entry marks an instant killed mid-flight: recovery must redo it
    *live* (so its effects happen) instead of replaying it silently.
    """

    __slots__ = ("seq", "inputs", "execs", "committed")

    def __init__(
        self,
        seq: int,
        inputs: Dict[str, Any],
        execs: Iterable[Tuple[int, Any]] = (),
        committed: bool = False,
    ):
        self.seq = seq
        self.inputs = dict(inputs)
        self.execs = [(int(slot), value) for slot, value in execs]
        self.committed = committed

    def to_json(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "inputs": self.inputs,
            "execs": [list(e) for e in self.execs],
            "committed": self.committed,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "JournalEntry":
        return cls(
            int(data["seq"]),
            data.get("inputs", {}),
            [(slot, value) for slot, value in data.get("execs", ())],
            bool(data.get("committed", False)),
        )

    def __repr__(self) -> str:
        flag = "committed" if self.committed else "uncommitted"
        return (
            f"JournalEntry(seq={self.seq}, inputs={self.inputs!r}, "
            f"execs={self.execs!r}, {flag})"
        )


class MemoryJournal:
    """An in-memory write-ahead journal (the default sink).

    Entries are kept in append order with strictly increasing ``seq``;
    values are stored by reference, so this sink is exact for any Python
    value but does not survive the process.
    """

    def __init__(self) -> None:
        self._entries: List[JournalEntry] = []

    # -- the write-ahead API (called by the machine) --------------------

    def append(self, entry: JournalEntry) -> None:
        if self._entries and entry.seq <= self._entries[-1].seq:
            raise MachineError(
                f"journal entries must have increasing seq: got {entry.seq} "
                f"after {self._entries[-1].seq}"
            )
        self._entries.append(entry)

    def commit(self, seq: int) -> None:
        """Mark the entry with ``seq`` committed: its instant completed
        and delivered its host effects.  Called by the machine right
        after each journaled reaction returns."""
        for entry in reversed(self._entries):
            if entry.seq == seq:
                entry.committed = True
                return

    # -- recovery reads and maintenance ---------------------------------

    def entries(self, from_seq: int = 0) -> List[JournalEntry]:
        """The journaled tail with ``seq >= from_seq``, oldest first."""
        return [e for e in self._entries if e.seq >= from_seq]

    def truncate(self, before_seq: int) -> int:
        """Checkpoint maintenance: drop entries with ``seq < before_seq``
        (they are covered by a snapshot).  Returns how many were dropped."""
        kept = [e for e in self._entries if e.seq >= before_seq]
        dropped = len(self._entries) - len(kept)
        self._entries = kept
        return dropped

    def rewind(self, seq: int) -> int:
        """Drop the *suffix* with ``seq >= seq`` — the write-ahead records
        of a failed (rolled-back) instant, before it is retried."""
        kept = [e for e in self._entries if e.seq < seq]
        dropped = len(self._entries) - len(kept)
        self._entries = kept
        return dropped

    def clear(self) -> None:
        self._entries = []

    @property
    def last_seq(self) -> Optional[int]:
        return self._entries[-1].seq if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._entries)} entries)"


class FileJournal(MemoryJournal):
    """A JSON-lines file-backed journal.

    Appends are written (and flushed) before the reaction runs —
    write-ahead in the literal sense.  Opening an existing path loads its
    entries, so a restarted process recovers with::

        journal = FileJournal(path)
        machine.restore(json.load(snapshot_file))
        machine.replay(journal.entries())

    Inputs and exec values must be JSON-serializable; ``truncate`` and
    ``rewind`` compact by rewriting the file.

    ``fsync=True`` additionally forces every write to stable storage
    (``os.fsync``) before the reaction runs, surviving OS/power failure
    at a heavy per-instant cost; the default ``False`` flushes to the OS
    only, which survives *process* death — the failure mode the
    supervisor stack actually recovers from (see docs/resilience.md).

    A process killed mid-append (SIGKILL, OOM) leaves a torn final line.
    Opening such a file *recovers*: the truncated trailing record is cut
    off (with a :class:`TornJournalWarning` and a ``torn_tail`` note),
    exactly as if the interrupted append had never happened — which is
    the write-ahead contract: an entry that was never fully written
    belongs to an instant that never ran.  Corruption anywhere *before*
    the final line is not a torn tail and still raises
    :class:`~repro.errors.MachineError`.
    """

    def __init__(self, path: Any, fsync: bool = False):
        super().__init__()
        self.path = path
        self.fsync = fsync
        self._fh = None
        #: set when opening recovered a torn trailing record:
        #: ``{"offset": byte offset truncated at, "line": the torn text}``
        self.torn_tail: Optional[Dict[str, Any]] = None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except FileNotFoundError:
            raw = None
        if raw:
            offset = 0
            last_start, last_line = None, None
            for line in raw.splitlines(keepends=True):
                stripped = line.strip()
                if stripped:
                    try:
                        record = json.loads(stripped)
                        recorded_sum = record.pop("sum", None)
                        if (
                            recorded_sum is not None
                            and record_checksum(record) != recorded_sum
                        ):
                            raise ValueError(
                                f"record checksum mismatch (recorded "
                                f"{recorded_sum!r}, content hashes to "
                                f"{record_checksum(record)!r})"
                            )
                        if "commit" in record and "seq" not in record:
                            MemoryJournal.commit(self, int(record["commit"]))
                        else:
                            super().append(JournalEntry.from_json(record))
                    except Exception as err:
                        last_start, last_line = offset, line
                        if offset + len(line) < len(raw):
                            raise MachineError(
                                f"journal {path} is corrupt at byte {offset} "
                                f"(not a torn tail — later records follow): "
                                f"{err}"
                            ) from err
                offset += len(line)
            if last_line is not None:
                # Torn tail: the final record was only partially written
                # (the writer died mid-append).  Truncate it away — its
                # instant never ran — and leave the recovery on record.
                self.torn_tail = {
                    "offset": last_start,
                    "line": last_line[:200],
                }
                with open(path, "r+", encoding="utf-8") as fh:
                    fh.truncate(last_start)
                warnings.warn(
                    f"journal {path}: truncated a torn trailing record at "
                    f"byte {last_start} (crash mid-append); "
                    f"{len(self._entries)} intact entries recovered",
                    TornJournalWarning,
                    stacklevel=2,
                )
            elif not raw.endswith("\n"):
                # The final record parsed but lost its newline to a torn
                # write; restore it so the next append starts a fresh line.
                with open(path, "a", encoding="utf-8") as fh:
                    fh.write("\n")
        self._fh = open(path, "a", encoding="utf-8")

    def _sync(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def append(self, entry: JournalEntry) -> None:
        super().append(entry)
        self._fh.write(_seal(entry.to_json()) + "\n")
        self._sync()

    def commit(self, seq: int) -> None:
        super().commit(seq)
        # append-only commit record; compaction happens on rewrite
        self._fh.write(_seal({"commit": seq}) + "\n")
        self._sync()

    def _rewrite(self) -> None:
        self._fh.close()
        with open(self.path, "w", encoding="utf-8") as fh:
            for entry in self._entries:
                fh.write(_seal(entry.to_json()) + "\n")
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())
        self._fh = open(self.path, "a", encoding="utf-8")

    def truncate(self, before_seq: int) -> int:
        dropped = super().truncate(before_seq)
        if dropped:
            self._rewrite()
        return dropped

    def rewind(self, seq: int) -> int:
        dropped = super().rewind(seq)
        if dropped:
            self._rewrite()
        return dropped

    def clear(self) -> None:
        super().clear()
        self._rewrite()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __del__(self) -> None:  # best-effort: tests create many of these
        try:
            self.close()
        except Exception:
            pass
