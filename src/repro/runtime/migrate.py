"""Versioned state migration: carry a machine snapshot across a program
edit.

A :func:`ReactiveMachine.snapshot` is positional — registers, signals,
counters and execs are flat lists in circuit order — and
:meth:`~repro.runtime.machine.ReactiveMachine.restore` refuses payloads
whose compile fingerprint differs, because a positional payload from a
structurally different circuit is meaningless.  Hot program upgrade needs
exactly that meaning: take the state a v1 machine accumulated and land it
on the v2 circuit so the machine resumes *in place* under the edited
program.

The bridge is the :func:`state_descriptor`: a JSON-able map from every
positional state slot to a *stable key*

    ``(segment path, kind, label, occurrence)``

where the segment path comes from the sub-circuit state segments the
linker records (``/M#0``, nested ``/M#0/N#2``; state owned by the
top-level body is the implicit spine ``/``).  Because each linked
instance owns its own path, an edit inside one module only perturbs keys
*inside that module's segments*; every other instance's keys — and the
spine's — are unchanged, so their state carries over byte-exactly.
Inlined compiles degenerate to a single spine segment: migration still
works, but any edit shifts the whole key space and carries less.

:func:`migrate_snapshot` then maps a v1 snapshot onto v2: slots whose
keys exist on both sides carry their v1 values verbatim, slots new in v2
take the value a freshly booted v2 machine has (its boot snapshot is the
explicit source of defaults — migration invents no values), and v1 state
with no v2 home is dropped and reported.  Instances *new* in v2 can
additionally be seeded from a post-boot snapshot so they start reacting
immediately (see :func:`migrate_snapshot`).  The result restores onto a
v2 machine through the ordinary :meth:`restore` path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import MigrationError

__all__ = [
    "DESCRIPTOR_FORMAT",
    "state_descriptor",
    "migrate_snapshot",
    "MigrationReport",
]

#: bump when the descriptor key derivation changes incompatibly
DESCRIPTOR_FORMAT = 1

SPINE = "/"

Key = Tuple[str, str, str, int]


def _keys(
    paths: List[str], labels: List[str], kind: str
) -> List[Key]:
    """Stable keys for one positional state table.

    ``occurrence`` counts repetitions of ``(path, label)`` in slot order,
    so two ``pause`` registers inside one instance stay distinct while
    remaining insensitive to edits elsewhere in the program.
    """
    seen: Dict[Tuple[str, str], int] = {}
    keys: List[Key] = []
    for path, label in zip(paths, labels):
        occurrence = seen.get((path, label), 0)
        seen[(path, label)] = occurrence + 1
        keys.append((path, kind, label, occurrence))
    return keys


def state_descriptor(compiled: Any) -> Dict[str, Any]:
    """Describe ``compiled``'s positional snapshot layout with stable keys.

    The result is plain JSON-able data, independent of the circuit
    object, so a supervisor can compute it once per program version and
    ship it across process boundaries alongside snapshots.
    """
    from repro.compiler.netlist import REG

    circuit = compiled.circuit

    reg_path: Dict[int, str] = {}
    sig_path: Dict[int, str] = {}
    counter_path: Dict[int, str] = {}
    exec_path: Dict[int, str] = {}
    for seg in circuit.segments:
        for net in seg.registers:
            reg_path[id(net)] = seg.path
        for slot in seg.signal_slots:
            sig_path[slot] = seg.path
        for slot in seg.counter_slots:
            counter_path[slot] = seg.path
        for slot in seg.exec_slots:
            exec_path[slot] = seg.path

    registers = [net for net in circuit.nets if net.kind == REG]
    reg_keys = _keys(
        [reg_path.get(id(net), SPINE) for net in registers],
        [net.label or "reg" for net in registers],
        "reg",
    )
    sig_keys = _keys(
        [sig_path.get(info.slot, SPINE) for info in circuit.signals],
        [info.name for info in circuit.signals],
        "sig",
    )
    counter_keys = _keys(
        [counter_path.get(cnt.slot, SPINE) for cnt in circuit.counters],
        ["counter" for cnt in circuit.counters],
        "counter",
    )
    exec_keys = _keys(
        [exec_path.get(info.slot, SPINE) for info in circuit.execs],
        [info.name for info in circuit.execs],
        "exec",
    )
    return {
        "format": DESCRIPTOR_FORMAT,
        "fingerprint": compiled.fingerprint,
        "module": circuit.name,
        "registers": [list(key) for key in reg_keys],
        "signals": [list(key) for key in sig_keys],
        "counters": [list(key) for key in counter_keys],
        "counter_arities": [cnt.arity for cnt in circuit.counters],
        "execs": [list(key) for key in exec_keys],
    }


class MigrationReport:
    """What :func:`migrate_snapshot` did with every piece of state."""

    __slots__ = ("carried", "initialized", "dropped", "identical")

    def __init__(self) -> None:
        #: keys present in both versions: v1 value carried verbatim
        self.carried: List[str] = []
        #: keys new in v2: fresh-boot value used
        self.initialized: List[str] = []
        #: keys only in v1: state lost by the edit (reported, not silent)
        self.dropped: List[str] = []
        #: same fingerprint on both sides — positional copy, nothing to map
        self.identical: bool = False

    def summary(self) -> str:
        if self.identical:
            return "identical program: positional copy"
        return (
            f"carried {len(self.carried)}, "
            f"initialized {len(self.initialized)}, "
            f"dropped {len(self.dropped)}"
        )

    def __repr__(self) -> str:
        return f"MigrationReport({self.summary()})"


def _render(key: Key) -> str:
    path, kind, label, occurrence = key
    return f"{path}:{kind}:{label}#{occurrence}"


def _check_descriptor(desc: Mapping, role: str) -> None:
    if desc.get("format") != DESCRIPTOR_FORMAT:
        raise MigrationError(
            f"{role} descriptor format {desc.get('format')!r} is not "
            f"{DESCRIPTOR_FORMAT}"
        )


def _table(
    desc_keys: List[List[Any]], values: List[Any], role: str, what: str
) -> Dict[Key, Any]:
    if len(desc_keys) != len(values):
        raise MigrationError(
            f"{role} snapshot has {len(values)} {what} but its descriptor "
            f"describes {len(desc_keys)} — descriptor/snapshot mismatch"
        )
    return {tuple(key): value for key, value in zip(desc_keys, values)}


def migrate_snapshot(
    snap: Mapping,
    desc_from: Mapping,
    desc_to: Mapping,
    boot_snap: Mapping,
    started_snap: Optional[Mapping] = None,
) -> Tuple[Dict[str, Any], MigrationReport]:
    """Map a snapshot of the ``desc_from`` program onto the ``desc_to``
    program.

    ``boot_snap`` must be a snapshot of a *freshly constructed* machine
    of the target program (taken before its first reaction): it supplies
    the value of every state slot that has no source in ``snap``, so the
    migrated machine is exactly "v1 state where the key survived, v2 boot
    state where it did not".

    ``started_snap`` (optional) is a snapshot of a fresh target machine
    *after* its boot instant.  When given, it overrides the default for
    slots whose whole **segment** is new in v2 — a ``run`` instance that
    did not exist in v1.  A branch grafted into an already-running
    parallel can never receive the ``go`` pulse the rest of the program
    consumed at boot; seeding it with post-boot state means it starts
    reacting at the next instant, matching HipHop.js's semantics for
    branches appended to a running machine.  (A new instance the edited
    program only *reaches* later re-receives ``go`` from its parent,
    which re-arms the same waits, so post-boot seeding is safe there
    too.)  Without ``started_snap``, new segments take pre-boot values
    and stay dormant until a full restart.

    Returns the migrated snapshot (restorable onto the target machine)
    and a :class:`MigrationReport`.  Raises :class:`MigrationError` when
    the descriptors do not actually describe their snapshots.
    """
    _check_descriptor(desc_from, "source")
    _check_descriptor(desc_to, "target")
    if snap.get("fingerprint") != desc_from.get("fingerprint"):
        raise MigrationError(
            f"snapshot fingerprint {snap.get('fingerprint')!r} does not "
            f"match source descriptor {desc_from.get('fingerprint')!r}"
        )
    if started_snap is not None and started_snap.get(
        "fingerprint"
    ) != desc_to.get("fingerprint"):
        raise MigrationError(
            f"started snapshot fingerprint "
            f"{started_snap.get('fingerprint')!r} does not match target "
            f"descriptor {desc_to.get('fingerprint')!r}"
        )
    if boot_snap.get("fingerprint") != desc_to.get("fingerprint"):
        raise MigrationError(
            f"boot snapshot fingerprint {boot_snap.get('fingerprint')!r} "
            f"does not match target descriptor "
            f"{desc_to.get('fingerprint')!r}"
        )

    report = MigrationReport()
    if desc_from.get("fingerprint") == desc_to.get("fingerprint"):
        # Same program: the snapshot already fits positionally.
        migrated = dict(snap)
        report.identical = True
        report.carried = [
            _render(tuple(key))
            for table in ("registers", "signals", "counters", "execs")
            for key in desc_to[table]
        ]
        return migrated, report

    arity_from = {
        tuple(key): arity
        for key, arity in zip(desc_from["counters"], desc_from["counter_arities"])
    }

    # Segment paths the source program had at all: a target key whose
    # path is absent here belongs to a brand-new instance.
    source_paths = {
        tuple(key)[0]
        for table in ("registers", "signals", "counters", "execs")
        for key in desc_from[table]
    }

    migrated: Dict[str, Any] = dict(boot_snap)
    migrated["module"] = boot_snap.get("module")
    migrated["terminated"] = snap.get("terminated", False)
    migrated["reaction_count"] = snap.get("reaction_count", 0)

    for table, what in (
        ("registers", "registers"),
        ("signals", "signals"),
        ("counters", "counters"),
        ("execs", "exec slots"),
    ):
        source = _table(desc_from[table], list(snap[table]), "source", what)
        defaults = _table(desc_to[table], list(boot_snap[table]), "target", what)
        started = (
            _table(desc_to[table], list(started_snap[table]), "target", what)
            if started_snap is not None
            else None
        )
        out: List[Any] = []
        for raw_key in desc_to[table]:
            key = tuple(raw_key)
            if key in source and (
                table != "counters"
                or arity_from.get(key)
                == desc_to["counter_arities"][len(out)]
            ):
                out.append(source.pop(key))
                report.carried.append(_render(key))
            else:
                # A counted-delay arity change also lands here: carrying
                # a count accumulated under different arming semantics
                # would silently mis-run the await, so it re-arms fresh
                # (the stale source value is reported as dropped below).
                if started is not None and key[0] not in source_paths:
                    out.append(started[key])
                else:
                    out.append(defaults[key])
                report.initialized.append(_render(key))
        report.dropped.extend(_render(key) for key in source)
        migrated[table] = out

    # host frame: dict keyed by variable name — names are already stable
    frame_from = dict(snap.get("frame", {}))
    frame_out = dict(boot_snap.get("frame", {}))
    for name in list(frame_out):
        if name in frame_from:
            frame_out[name] = frame_from.pop(name)
            report.carried.append(f"/:frame:{name}#0")
        else:
            report.initialized.append(f"/:frame:{name}#0")
    report.dropped.extend(f"/:frame:{name}#0" for name in frame_from)
    migrated["frame"] = frame_out

    # The migrated payload was assembled field by field, so the checksum
    # inherited from the boot snapshot no longer covers it: re-seal.
    from repro.runtime.machine import snapshot_checksum

    migrated["checksum"] = snapshot_checksum(migrated)
    return migrated, report
