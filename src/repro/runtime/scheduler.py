"""Linear-time constructive circuit simulator (paper §5.2).

The simulator performs forward ternary propagation over the augmented
boolean circuit: every net starts the reaction *unknown* (Scott's ⊥) and
becomes 0 or 1 when enough of its fanin is known.  OR gates resolve to 1 as
soon as one fanin is 1 and to 0 only when *all* fanins are 0 (dually for
AND), which is exactly the least-fixpoint semantics in ternary logic — the
paper notes this "exactly mimics the stabilization of voltages in circuits
during a clock cycle".

Expression and action nets additionally wait for their data dependencies
(all potential writers of the signals they read) to be *resolved* before
their host payload runs; this implements the paper's microscheduling of
data accesses.

If any net is still unknown when the queue drains, the program has hit a
synchronous deadlock and a :class:`~repro.errors.CausalityError` is raised
naming the unresolved nets — the paper's "always detected and reported"
guarantee.  Constructive-but-cyclic circuits stabilize and run fine.

Execution cost is linear in the number of net connections: every edge is
visited at most once per reaction.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReactionBudgetExceeded
from repro.compiler.netlist import (
    AND,
    EXPR,
    INPUT,
    OR,
    REG,
    Circuit,
    Net,
    causality_error,
)

UNKNOWN = None


class Scheduler:
    """Reusable propagation engine for one circuit.

    The ``host`` object (the reactive machine) receives payload callbacks;
    it must provide whatever the compiled payloads call (``env_for``,
    ``emit_value``, ``arm_counter``, ...).
    """

    #: interned consumer-kind codes carried in the fanout tuples, so the
    #: hot propagation loop dispatches on a small int instead of a string
    _OR, _AND, _ENABLE = 0, 1, 2

    def __init__(self, circuit: Circuit, host: Any):
        self.circuit = circuit
        self.host = host
        n = len(circuit.nets)

        #: boolean-fanout: src net -> [(consumer, negated, kind code)]
        self._fanouts: List[List[Tuple[int, bool, int]]] = [[] for _ in range(n)]
        #: dep waiters: resolved net -> [consumer ids]
        self._dep_waiters: List[List[int]] = [[] for _ in range(n)]
        self._fanin_count: List[int] = [0] * n
        self._dep_count: List[int] = [0] * n
        self._registers: List[Net] = []
        self._inputs: List[Net] = []
        #: source-less gates, pre-resolved at reaction start: (id, value)
        self._const_gates: List[Tuple[int, bool]] = []

        for net in circuit.nets:
            if net.kind == REG:
                self._registers.append(net)
                continue
            if net.kind == INPUT:
                self._inputs.append(net)
                continue
            if net.kind == OR:
                code = self._OR
                if not net.inputs:
                    self._const_gates.append((net.id, False))
            elif net.kind == AND:
                code = self._AND
                if not net.inputs:
                    self._const_gates.append((net.id, True))
            else:
                code = self._ENABLE
            for src, neg in net.inputs:
                self._fanouts[src].append((net.id, neg, code))
            self._fanin_count[net.id] = len(net.inputs)
            for dep in net.deps:
                self._dep_waiters[dep].append(net.id)
            self._dep_count[net.id] = len(net.deps)

        #: register state (the sequential memory of the machine)
        self.state: List[bool] = [net.init for net in self._registers]
        self._reg_index: Dict[int, int] = {
            net.id: i for i, net in enumerate(self._registers)
        }

        # per-reaction scratch, refilled in place by reset(); the buffers
        # (and therefore the settle closure below) live for the machine
        self.values: List[Optional[bool]] = [UNKNOWN] * n
        self._blank: Tuple[Optional[bool], ...] = (UNKNOWN,) * n
        self._unknown: List[int] = list(self._fanin_count)
        self._pending_deps: List[int] = list(self._dep_count)
        self._queue: deque = deque()

        #: reaction deadline, in net evaluations (None = unlimited); set
        #: by the machine before each instant from its remaining budget
        self.budget: Optional[int] = None
        #: net evaluations spent by the last (possibly aborted) reaction
        self.last_evaluated: int = 0

        values = self.values
        append = self._queue.append

        def settle(net_id: int, value: bool) -> None:
            if values[net_id] is UNKNOWN:
                values[net_id] = value
                append(net_id)

        self._settle = settle

    # ------------------------------------------------------------------

    def value(self, net: Net) -> Optional[bool]:
        return self.values[net.id]

    def reset(self) -> None:
        self.values[:] = self._blank
        self._unknown[:] = self._fanin_count
        self._pending_deps[:] = self._dep_count
        self._queue.clear()

    def react(self, input_values: Dict[int, bool]) -> None:
        """Run one reaction.

        ``input_values`` maps INPUT net ids to their status; unlisted
        inputs are absent.  Raises :class:`CausalityError` if the circuit
        does not stabilize.  On success the register state is latched.
        """
        self.reset()
        queue = self._queue
        nets = self.circuit.nets
        values = self.values
        settle = self._settle
        fanouts = self._fanouts
        unknown = self._unknown

        # 1. registers show their state; inputs their provided status.
        for i, reg in enumerate(self._registers):
            settle(reg.id, self.state[i])
        for net in self._inputs:
            settle(net.id, input_values.get(net.id, False))
        # 2. source-less gates resolve immediately (const0/const1, empty
        #    status nets of never-emitted locals).
        for net_id, value in self._const_gates:
            settle(net_id, value)

        # 3. propagate to fixpoint.
        budget = self.budget
        evaluated = 0
        while queue:
            evaluated += 1
            if budget is not None and evaluated > budget:
                self.last_evaluated = evaluated
                raise ReactionBudgetExceeded(
                    f"reaction in {self.circuit.name} exceeded its "
                    f"{budget}-net evaluation budget",
                    budget=budget,
                    evaluated=evaluated,
                )
            net_id = queue.popleft()
            value = values[net_id]
            for consumer_id, negated, code in fanouts[net_id]:
                if values[consumer_id] is not UNKNOWN:
                    continue
                seen = value ^ negated
                if code == 0:  # OR
                    if seen:
                        settle(consumer_id, True)
                    else:
                        unknown[consumer_id] -= 1
                        if unknown[consumer_id] == 0:
                            settle(consumer_id, False)
                elif code == 1:  # AND
                    if not seen:
                        settle(consumer_id, False)
                    else:
                        unknown[consumer_id] -= 1
                        if unknown[consumer_id] == 0:
                            settle(consumer_id, True)
                else:  # EXPR / ACTION: the single boolean input is the enable
                    if not seen:
                        settle(consumer_id, False)
                    else:
                        # enabled: mark and check data deps
                        unknown[consumer_id] = 0
                        self._maybe_fire(consumer_id, settle)
            for waiter_id in self._dep_waiters[net_id]:
                self._pending_deps[waiter_id] -= 1
                if values[waiter_id] is UNKNOWN and unknown[waiter_id] == 0:
                    self._maybe_fire(waiter_id, settle)

        self.last_evaluated = evaluated

        # 4. completeness check: constructive programs stabilize fully.
        # The error is built by the shared normalized constructor so its
        # message and net list are byte-identical across backends.
        if any(values[net.id] is UNKNOWN for net in nets):
            raise causality_error(self.circuit, values)

        # 5. latch registers.
        for i, reg in enumerate(self._registers):
            src, neg = reg.inputs[0]
            self.state[i] = values[src] ^ neg

    def _maybe_fire(self, net_id: int, settle: Callable[[int, bool], None]) -> None:
        """Run an enabled EXPR/ACTION payload once its deps are resolved."""
        if self._pending_deps[net_id] > 0:
            return
        net = self.circuit.nets[net_id]
        result = net.payload(self.host)
        if net.kind == EXPR:
            settle(net_id, bool(result))
        else:
            settle(net_id, True)

    # ------------------------------------------------------------------

    def clear_state(self) -> None:
        """Reset all registers to their boot values (machine reset)."""
        self.state = [net.init for net in self._registers]
