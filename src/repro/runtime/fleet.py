"""Machine fleets: many reactive machines sharing one compiled plan.

The ROADMAP's north-star scenario — thousands of Skini participants or
multi-tenant login sessions, each an instance of the *same* HipHop
module — used to pay O(compile) per machine and O(circuit) per reaction.
:class:`MachineFleet` pairs the structural compile cache
(:func:`repro.compiler.compile.compile_cached`) with the sparse reaction
backend so a fleet pays compilation and planning **once**, each member
only its runtime state (net values, registers, signal slots — see
``Circuit.per_machine_state_estimate``), and each steady-state reaction
only its dirty cone.

Typical use::

    from repro import MachineFleet

    fleet = MachineFleet(participant_module, size=1000)
    fleet.react_all({"tick": True})            # batch-drive every member
    fleet.react_one(42, {"play": True})        # drive one participant
    fleet.memory_report()                      # shared vs per-machine split
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import FleetReactionError, MachineError
from repro.lang import ast as A
from repro.compiler.compile import (
    CompiledModule,
    CompileOptions,
    compile_cached,
)
from repro.runtime.ingress import (
    RATE_LIMITED,
    LatencyEwma,
    Mailbox,
    TokenBucket,
)
from repro.runtime.machine import ModuleLike, ReactionResult, ReactiveMachine


class MachineFleet:
    """A pool of :class:`~repro.runtime.machine.ReactiveMachine` members
    built from one shared :class:`~repro.compiler.compile.CompiledModule`.

    Construction compiles (or cache-hits) the module once; every
    :meth:`spawn` then only allocates per-machine state, making member
    construction O(state) instead of O(compile).  Members are ordinary
    machines — they can be driven individually, via the batch helpers
    here, or handed out to host code.
    """

    def __init__(
        self,
        module: ModuleLike,
        modules: Optional[A.ModuleTable] = None,
        options: Optional[CompileOptions] = None,
        size: int = 0,
        backend: str = "auto",
        **machine_kwargs: Any,
    ):
        if isinstance(module, CompiledModule):
            self.compiled = module
        else:
            self.compiled = compile_cached(module, modules, options)
        # Build the shared evaluation plan eagerly so no member pays it.
        self.plan = self.compiled.evaluation_plan()
        self.backend = backend
        self._machine_kwargs = machine_kwargs
        self._machines: List[ReactiveMachine] = []
        for _ in range(size):
            self.spawn()

    # -- membership -----------------------------------------------------

    def build_machine(self, **overrides: Any) -> ReactiveMachine:
        """Construct a machine from the fleet's shared plan *without*
        adding it to the fleet — e.g. to pre-warm spares whose circuit
        allocation should happen off a latency-critical path."""
        kwargs = {**self._machine_kwargs, **overrides}
        return ReactiveMachine(self.compiled, backend=self.backend, **kwargs)

    def spawn(self, **overrides: Any) -> ReactiveMachine:
        """Add one member (keyword overrides win over the fleet
        defaults) and return it."""
        machine = self.build_machine(**overrides)
        self._machines.append(machine)
        return machine

    def spawn_many(self, count: int) -> List[ReactiveMachine]:
        return [self.spawn() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._machines)

    def __getitem__(self, index: int) -> ReactiveMachine:
        return self._machines[index]

    def __iter__(self) -> Iterator[ReactiveMachine]:
        return iter(self._machines)

    # -- batch driving --------------------------------------------------

    def react_all(
        self, inputs: Optional[Dict[str, Any]] = None
    ) -> List[ReactionResult]:
        """One reaction on every member with the same inputs (a broadcast
        instant — e.g. the Skini musical pulse); returns the results in
        member order.

        The instant is completed for *every* member even when some fail:
        failures are collected and raised afterwards as a single
        :class:`~repro.errors.FleetReactionError` carrying the completed
        and failed member indices (and the partial results), so one bad
        member can never leave the fleet half-advanced within a logical
        instant."""
        shared = inputs or {}
        return self._drive_batch(
            range(len(self._machines)), lambda index, machine: shared
        )

    def _drive_batch(
        self,
        indices: Any,
        make_inputs: Callable[[int, ReactiveMachine], Dict[str, Any]],
    ) -> List[ReactionResult]:
        """Run one reaction on each addressed member, completing the whole
        batch before reporting failures (shared by ``react_all`` /
        ``broadcast``)."""
        results: List[Optional[ReactionResult]] = [None] * len(self._machines)
        completed: List[int] = []
        failures: Dict[int, Exception] = {}
        for index in indices:
            machine = self._machines[index]
            try:
                results[index] = machine.react(make_inputs(index, machine))
                completed.append(index)
            except Exception as err:
                failures[index] = err
        if failures:
            raise FleetReactionError(
                f"{len(failures)} of {len(self._machines)} fleet members "
                f"failed the instant (members {sorted(failures)}); "
                f"{len(completed)} completed",
                completed=completed,
                failures=failures,
                results=results,
            )
        return results  # type: ignore[return-value]

    def react_one(
        self, index: int, inputs: Optional[Dict[str, Any]] = None
    ) -> ReactionResult:
        """One reaction on member ``index`` only."""
        try:
            machine = self._machines[index]
        except IndexError:
            raise MachineError(
                f"fleet has {len(self._machines)} members, no index {index}"
            ) from None
        return machine.react(inputs or {})

    def react_each(
        self, inputs_by_member: Mapping[int, Dict[str, Any]]
    ) -> Dict[int, ReactionResult]:
        """One reaction per addressed member (others stay untouched).
        Like :meth:`react_all`, the whole batch is driven before any
        member's failure is raised (as a
        :class:`~repro.errors.FleetReactionError` whose ``results`` is a
        dict keyed by member index)."""
        results: Dict[int, ReactionResult] = {}
        completed: List[int] = []
        failures: Dict[int, Exception] = {}
        for index, inputs in inputs_by_member.items():
            try:
                results[index] = self.react_one(index, inputs)
                completed.append(index)
            except Exception as err:
                failures[index] = err
        if failures:
            raise FleetReactionError(
                f"{len(failures)} of {len(inputs_by_member)} addressed "
                f"members failed (members {sorted(failures)}); "
                f"{len(completed)} completed",
                completed=completed,
                failures=failures,
                results=results,
            )
        return results

    def broadcast(
        self, make_inputs: Callable[[int, ReactiveMachine], Dict[str, Any]]
    ) -> List[ReactionResult]:
        """One reaction on every member with member-specific inputs from
        ``make_inputs(index, machine)``; completes the instant for every
        member before raising a collected
        :class:`~repro.errors.FleetReactionError` (an exception from
        ``make_inputs`` itself counts as that member's failure)."""
        return self._drive_batch(range(len(self._machines)), make_inputs)

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        backends: Dict[str, int] = {}
        for machine in self._machines:
            backends[machine.backend] = backends.get(machine.backend, 0) + 1
        return {
            "members": len(self._machines),
            "module": self.compiled.module.name,
            "nets": len(self.compiled.circuit.nets),
            "backends": backends,
            "reactions": sum(m.reaction_count for m in self._machines),
        }

    def memory_report(self) -> Dict[str, Any]:
        """The shared-plan amortization story in bytes: one circuit and
        one evaluation plan however many members, plus per-member state."""
        circuit = self.compiled.circuit
        shared = circuit.memory_estimate() + self.plan.memory_estimate()
        per_machine = circuit.per_machine_state_estimate()
        members = len(self._machines)
        total = shared + per_machine * members
        naive = (shared + per_machine) * max(members, 1)
        return {
            "members": members,
            "shared_bytes": shared,
            "per_machine_bytes": per_machine,
            "total_bytes": total,
            "unshared_total_bytes": naive,
            "amortization": round(naive / total, 2) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"MachineFleet({self.compiled.module.name}, "
            f"{len(self._machines)} members, backend={self.backend!r})"
        )

    def ingress(self, **kwargs: Any) -> "FleetIngress":
        """Build a :class:`FleetIngress` admission-control front for this
        fleet (keyword arguments forwarded to its constructor)."""
        return FleetIngress(self, **kwargs)


class FleetIngress:
    """Admission control in front of a :class:`MachineFleet`: bounded
    per-member mailboxes, a fleet-wide token-bucket rate limiter,
    health-aware routing, and adaptive batch sizing.

    The contract mirrors :class:`~repro.runtime.ingress.Mailbox`'s —
    every offered input map is *admitted, coalesced, shed, rate-limited
    or rejected by a recorded decision*; nothing is silently lost and
    nothing buffers unboundedly, no matter the offered load.

    :param fleet: the fleet (or a :class:`~repro.runtime.recovery.FleetSupervisor`
        via ``supervisor``) whose members this ingress guards.
    :param capacity: per-member mailbox capacity.
    :param policy: per-member mailbox shedding policy (see
        :data:`~repro.runtime.ingress.POLICIES`).
    :param rate_per_s: fleet-wide sustained admission rate (offers per
        second, one token each); ``None`` disables rate limiting.
    :param burst: token-bucket capacity (defaults to one second's worth).
    :param supervisor: optional :class:`~repro.runtime.recovery.FleetSupervisor`;
        when given, pumping reacts through each member's supervisor
        (rollback/retry on failure) and routing skips quarantined members.
    :param target_latency_ms: adaptive batch-sizing target — when the
        EWMA of per-instant react latency exceeds it, the pump batch
        halves (down to ``min_batch``); when comfortably below (80 %),
        the batch grows by one (up to ``max_batch``).
    :param min_batch: smallest adaptive batch (members per pump round).
    :param max_batch: largest adaptive batch (default: the fleet size).
    :param ewma_alpha: smoothing factor of the latency EWMA.
    :param budget: reaction deadline forwarded to every pumped react.
    :param coalesce_on_pump: collapse each member's whole backlog into
        one merged instant before reacting (the overload-flattening mode
        the bench gate measures); ``False`` drains one queued map per
        member per round instead.
    """

    def __init__(
        self,
        fleet: MachineFleet,
        capacity: int = 64,
        policy: str = "coalesce",
        rate_per_s: Optional[float] = None,
        burst: Optional[float] = None,
        supervisor: Optional[Any] = None,
        target_latency_ms: Optional[float] = None,
        min_batch: int = 1,
        max_batch: Optional[int] = None,
        ewma_alpha: float = 0.2,
        budget: Optional[Any] = None,
        coalesce_on_pump: bool = True,
    ):
        self.fleet = fleet
        self.supervisor = supervisor
        self.budget = budget
        self.coalesce_on_pump = coalesce_on_pump
        self._capacity = capacity
        self._policy = policy
        #: member indices removed from routing (shard migration sources);
        #: their mailbox slots stay so historic indices remain stable
        self.retired: set = set()
        self.mailboxes: List[Mailbox] = [
            Mailbox.for_machine(machine, capacity=capacity, policy=policy)
            for machine in fleet
        ]
        for machine, mailbox in zip(fleet, self.mailboxes):
            machine.attach_mailbox(mailbox)
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(rate_per_s, burst) if rate_per_s is not None else None
        )
        self.latency = LatencyEwma(ewma_alpha)
        self.target_latency_ms = target_latency_ms
        if min_batch < 1:
            raise ValueError("min_batch must be >= 1")
        self.min_batch = min_batch
        self.max_batch = max_batch if max_batch is not None else max(1, len(fleet))
        if self.max_batch < self.min_batch:
            raise ValueError("max_batch must be >= min_batch")
        #: current adaptive batch size (members reacted per pump round)
        self.batch_size = self.max_batch
        self._cursor = 0
        #: member index → exception, for the most recent pump round
        self.last_failures: Dict[int, BaseException] = {}
        self.stats_counters: Dict[str, int] = {
            "offered": 0,
            "rate_limited": 0,
            "pumped": 0,
            "pump_failures": 0,
            "backoffs": 0,
            "rampups": 0,
        }

    def __len__(self) -> int:
        return len(self.mailboxes)

    # -- health-aware membership ----------------------------------------

    def is_healthy(self, index: int) -> bool:
        """A member is routable unless it was retired, its supervisor
        quarantined it, or one of its circuit breakers is open."""
        if index in self.retired:
            return False
        if self.supervisor is not None and self.supervisor.members[index].quarantined:
            return False
        breakers = self.fleet[index].health["breakers"]
        return all(b.get("state") != "open" for b in breakers.values())

    def healthy_members(self) -> List[int]:
        return [i for i in range(len(self.fleet)) if self.is_healthy(i)]

    # -- dynamic membership (shard adoption / migration) -----------------

    def add_member(self, machine: Optional[Any] = None, **overrides: Any) -> int:
        """Grow the guarded fleet by one member — either adopt an
        existing ``machine`` (a migrated member arriving on this shard,
        already restored; it is appended to the fleet) or spawn a fresh
        one from the fleet's shared plan.  The new member gets its own
        mailbox (same capacity/policy as the rest) and its index is
        returned.

        When a ``supervisor`` was given at construction, the caller must
        keep its ``members`` roster aligned (append a supervisor for the
        new machine) before routing to the new index.
        """
        if machine is None:
            machine = self.fleet.spawn(**overrides)
        else:
            self.fleet._machines.append(machine)
        mailbox = Mailbox.for_machine(
            machine, capacity=self._capacity, policy=self._policy
        )
        machine.attach_mailbox(mailbox)
        self.mailboxes.append(mailbox)
        self.max_batch = max(self.max_batch, len(self.mailboxes))
        return len(self.mailboxes) - 1

    def retire(self, index: int) -> List[Dict[str, Any]]:
        """Remove member ``index`` from routing (a migration source
        leaving this shard): drain and return its mailbox backlog —
        oldest first, to be shipped with the member — and mark the slot
        retired so no new input is admitted to it.  Idempotent."""
        backlog = self.mailboxes[index].drain()
        self.retired.add(index)
        return backlog

    # -- admission -------------------------------------------------------

    def offer(
        self, index: int, inputs: Mapping[str, Any], now_ms: float = 0.0
    ) -> str:
        """Offer one input map to member ``index``; returns the recorded
        admission decision (including :data:`~repro.runtime.ingress.RATE_LIMITED`
        when the token bucket refuses — the offer never reaches the
        mailbox but is still on the record)."""
        self.stats_counters["offered"] += 1
        if self.bucket is not None and not self.bucket.try_acquire(now_ms):
            self.stats_counters["rate_limited"] += 1
            return RATE_LIMITED
        return self.mailboxes[index].offer(inputs)

    def offer_all(
        self, inputs: Mapping[str, Any], now_ms: float = 0.0
    ) -> Dict[int, str]:
        """Offer the same map to every *healthy* member (one token each);
        returns the per-member decisions."""
        return {
            index: self.offer(index, inputs, now_ms)
            for index in self.healthy_members()
        }

    def route(
        self, inputs: Mapping[str, Any], now_ms: float = 0.0
    ) -> Tuple[int, str]:
        """Admit one map to the least-loaded healthy member (fewest
        pending mailbox entries, lowest index breaking ties).  Returns
        ``(member index, decision)``."""
        healthy = self.healthy_members()
        if not healthy:
            raise MachineError(
                "no healthy fleet member to route to (all quarantined or "
                "breaker-open)"
            )
        index = min(healthy, key=lambda i: (self.mailboxes[i].pending, i))
        return index, self.offer(index, inputs, now_ms)

    # -- draining --------------------------------------------------------

    def _react_member(
        self, index: int, inputs: Dict[str, Any]
    ) -> ReactionResult:
        if self.supervisor is not None:
            return self.supervisor.members[index].react(inputs, budget=self.budget)
        return self.fleet[index].react(inputs, budget=self.budget)

    def pump(self, clock: Callable[[], float] = time.perf_counter) -> Dict[int, ReactionResult]:
        """One adaptive pump round: drive up to :attr:`batch_size`
        healthy members with pending mail (round-robin, so a noisy member
        cannot starve the rest), one instant each.  With
        ``coalesce_on_pump`` the member's whole backlog is first
        collapsed into one merged instant.  Failures are collected in
        :attr:`last_failures` without aborting the round; react latency
        feeds the EWMA and resizes the next round's batch."""
        size = len(self.mailboxes)
        chosen: List[int] = []
        for step in range(size):
            index = (self._cursor + step) % size
            if self.mailboxes[index].pending and self.is_healthy(index):
                chosen.append(index)
                if len(chosen) >= self.batch_size:
                    break
        self._cursor = (chosen[-1] + 1) % size if chosen else self._cursor
        results: Dict[int, ReactionResult] = {}
        failures: Dict[int, BaseException] = {}
        for index in chosen:
            mailbox = self.mailboxes[index]
            if self.coalesce_on_pump:
                mailbox.collapse()
            inputs = mailbox.take()
            started = clock()
            try:
                results[index] = self._react_member(index, inputs)
                self.stats_counters["pumped"] += 1
            except Exception as err:
                failures[index] = err
                self.stats_counters["pump_failures"] += 1
            finally:
                self.latency.observe((clock() - started) * 1000.0)
        self.last_failures = failures
        self._resize_batch()
        return results

    def pump_all(
        self,
        max_rounds: int = 1_000_000,
        clock: Callable[[], float] = time.perf_counter,
    ) -> Dict[int, ReactionResult]:
        """Pump until every healthy member's mailbox is empty (or
        ``max_rounds`` rounds); returns each member's *last* result."""
        results: Dict[int, ReactionResult] = {}
        for _ in range(max_rounds):
            if not any(
                self.mailboxes[i].pending for i in self.healthy_members()
            ):
                break
            results.update(self.pump(clock))
        return results

    def _resize_batch(self) -> None:
        if self.target_latency_ms is None or self.latency.value is None:
            return
        if self.latency.value > self.target_latency_ms:
            shrunk = max(self.min_batch, self.batch_size // 2)
            if shrunk < self.batch_size:
                self.stats_counters["backoffs"] += 1
            self.batch_size = shrunk
        elif (
            self.latency.value < 0.8 * self.target_latency_ms
            and self.batch_size < self.max_batch
        ):
            self.batch_size += 1
            self.stats_counters["rampups"] += 1

    # -- accounting ------------------------------------------------------

    def check_accounting(self) -> None:
        """Assert the zero-silent-drop invariant across every member
        mailbox plus the ingress-level rate-limit record."""
        for mailbox in self.mailboxes:
            mailbox.check_accounting()
        c = self.stats_counters
        reaching = sum(m.stats["offered"] for m in self.mailboxes)
        if c["offered"] != reaching + c["rate_limited"]:
            raise MachineError(
                f"fleet ingress accounting violated: offered {c['offered']} "
                f"!= mailbox-offered {reaching} + rate-limited "
                f"{c['rate_limited']}"
            )

    def stats(self) -> Dict[str, Any]:
        totals: Dict[str, int] = {
            "admitted": 0, "coalesced": 0, "rejected": 0, "dropped": 0,
        }
        pending = 0
        for mailbox in self.mailboxes:
            for key in totals:
                totals[key] += mailbox.stats[key]
            pending += mailbox.pending
        shed = totals["rejected"] + totals["dropped"]
        return {
            **self.stats_counters,
            **totals,
            "shed": shed,
            "pending": pending,
            "batch_size": self.batch_size,
            "latency_ewma_ms": self.latency.value,
            "healthy": len(self.healthy_members()),
            "members": len(self.mailboxes),
            "retired": len(self.retired),
        }

    def __repr__(self) -> str:
        return (
            f"FleetIngress({len(self.mailboxes)} members, "
            f"batch={self.batch_size}, {self.stats_counters})"
        )
