"""Machine fleets: many reactive machines sharing one compiled plan.

The ROADMAP's north-star scenario — thousands of Skini participants or
multi-tenant login sessions, each an instance of the *same* HipHop
module — used to pay O(compile) per machine and O(circuit) per reaction.
:class:`MachineFleet` pairs the structural compile cache
(:func:`repro.compiler.compile.compile_cached`) with the sparse reaction
backend so a fleet pays compilation and planning **once**, each member
only its runtime state (net values, registers, signal slots — see
``Circuit.per_machine_state_estimate``), and each steady-state reaction
only its dirty cone.

Typical use::

    from repro import MachineFleet

    fleet = MachineFleet(participant_module, size=1000)
    fleet.react_all({"tick": True})            # batch-drive every member
    fleet.react_one(42, {"play": True})        # drive one participant
    fleet.memory_report()                      # shared vs per-machine split
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.errors import FleetReactionError, MachineError
from repro.lang import ast as A
from repro.compiler.compile import (
    CompiledModule,
    CompileOptions,
    compile_cached,
)
from repro.runtime.machine import ModuleLike, ReactionResult, ReactiveMachine


class MachineFleet:
    """A pool of :class:`~repro.runtime.machine.ReactiveMachine` members
    built from one shared :class:`~repro.compiler.compile.CompiledModule`.

    Construction compiles (or cache-hits) the module once; every
    :meth:`spawn` then only allocates per-machine state, making member
    construction O(state) instead of O(compile).  Members are ordinary
    machines — they can be driven individually, via the batch helpers
    here, or handed out to host code.
    """

    def __init__(
        self,
        module: ModuleLike,
        modules: Optional[A.ModuleTable] = None,
        options: Optional[CompileOptions] = None,
        size: int = 0,
        backend: str = "auto",
        **machine_kwargs: Any,
    ):
        if isinstance(module, CompiledModule):
            self.compiled = module
        else:
            self.compiled = compile_cached(module, modules, options)
        # Build the shared evaluation plan eagerly so no member pays it.
        self.plan = self.compiled.evaluation_plan()
        self.backend = backend
        self._machine_kwargs = machine_kwargs
        self._machines: List[ReactiveMachine] = []
        for _ in range(size):
            self.spawn()

    # -- membership -----------------------------------------------------

    def spawn(self, **overrides: Any) -> ReactiveMachine:
        """Add one member (keyword overrides win over the fleet
        defaults) and return it."""
        kwargs = {**self._machine_kwargs, **overrides}
        machine = ReactiveMachine(self.compiled, backend=self.backend, **kwargs)
        self._machines.append(machine)
        return machine

    def spawn_many(self, count: int) -> List[ReactiveMachine]:
        return [self.spawn() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._machines)

    def __getitem__(self, index: int) -> ReactiveMachine:
        return self._machines[index]

    def __iter__(self) -> Iterator[ReactiveMachine]:
        return iter(self._machines)

    # -- batch driving --------------------------------------------------

    def react_all(
        self, inputs: Optional[Dict[str, Any]] = None
    ) -> List[ReactionResult]:
        """One reaction on every member with the same inputs (a broadcast
        instant — e.g. the Skini musical pulse); returns the results in
        member order.

        The instant is completed for *every* member even when some fail:
        failures are collected and raised afterwards as a single
        :class:`~repro.errors.FleetReactionError` carrying the completed
        and failed member indices (and the partial results), so one bad
        member can never leave the fleet half-advanced within a logical
        instant."""
        shared = inputs or {}
        return self._drive_batch(
            range(len(self._machines)), lambda index, machine: shared
        )

    def _drive_batch(
        self,
        indices: Any,
        make_inputs: Callable[[int, ReactiveMachine], Dict[str, Any]],
    ) -> List[ReactionResult]:
        """Run one reaction on each addressed member, completing the whole
        batch before reporting failures (shared by ``react_all`` /
        ``broadcast``)."""
        results: List[Optional[ReactionResult]] = [None] * len(self._machines)
        completed: List[int] = []
        failures: Dict[int, Exception] = {}
        for index in indices:
            machine = self._machines[index]
            try:
                results[index] = machine.react(make_inputs(index, machine))
                completed.append(index)
            except Exception as err:
                failures[index] = err
        if failures:
            raise FleetReactionError(
                f"{len(failures)} of {len(self._machines)} fleet members "
                f"failed the instant (members {sorted(failures)}); "
                f"{len(completed)} completed",
                completed=completed,
                failures=failures,
                results=results,
            )
        return results  # type: ignore[return-value]

    def react_one(
        self, index: int, inputs: Optional[Dict[str, Any]] = None
    ) -> ReactionResult:
        """One reaction on member ``index`` only."""
        try:
            machine = self._machines[index]
        except IndexError:
            raise MachineError(
                f"fleet has {len(self._machines)} members, no index {index}"
            ) from None
        return machine.react(inputs or {})

    def react_each(
        self, inputs_by_member: Mapping[int, Dict[str, Any]]
    ) -> Dict[int, ReactionResult]:
        """One reaction per addressed member (others stay untouched).
        Like :meth:`react_all`, the whole batch is driven before any
        member's failure is raised (as a
        :class:`~repro.errors.FleetReactionError` whose ``results`` is a
        dict keyed by member index)."""
        results: Dict[int, ReactionResult] = {}
        completed: List[int] = []
        failures: Dict[int, Exception] = {}
        for index, inputs in inputs_by_member.items():
            try:
                results[index] = self.react_one(index, inputs)
                completed.append(index)
            except Exception as err:
                failures[index] = err
        if failures:
            raise FleetReactionError(
                f"{len(failures)} of {len(inputs_by_member)} addressed "
                f"members failed (members {sorted(failures)}); "
                f"{len(completed)} completed",
                completed=completed,
                failures=failures,
                results=results,
            )
        return results

    def broadcast(
        self, make_inputs: Callable[[int, ReactiveMachine], Dict[str, Any]]
    ) -> List[ReactionResult]:
        """One reaction on every member with member-specific inputs from
        ``make_inputs(index, machine)``; completes the instant for every
        member before raising a collected
        :class:`~repro.errors.FleetReactionError` (an exception from
        ``make_inputs`` itself counts as that member's failure)."""
        return self._drive_batch(range(len(self._machines)), make_inputs)

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        backends: Dict[str, int] = {}
        for machine in self._machines:
            backends[machine.backend] = backends.get(machine.backend, 0) + 1
        return {
            "members": len(self._machines),
            "module": self.compiled.module.name,
            "nets": len(self.compiled.circuit.nets),
            "backends": backends,
            "reactions": sum(m.reaction_count for m in self._machines),
        }

    def memory_report(self) -> Dict[str, Any]:
        """The shared-plan amortization story in bytes: one circuit and
        one evaluation plan however many members, plus per-member state."""
        circuit = self.compiled.circuit
        shared = circuit.memory_estimate() + self.plan.memory_estimate()
        per_machine = circuit.per_machine_state_estimate()
        members = len(self._machines)
        total = shared + per_machine * members
        naive = (shared + per_machine) * max(members, 1)
        return {
            "members": members,
            "shared_bytes": shared,
            "per_machine_bytes": per_machine,
            "total_bytes": total,
            "unshared_total_bytes": naive,
            "amortization": round(naive / total, 2) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"MachineFleet({self.compiled.module.name}, "
            f"{len(self._machines)} members, backend={self.backend!r})"
        )
