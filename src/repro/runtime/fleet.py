"""Machine fleets: many reactive machines sharing one compiled plan.

The ROADMAP's north-star scenario — thousands of Skini participants or
multi-tenant login sessions, each an instance of the *same* HipHop
module — used to pay O(compile) per machine and O(circuit) per reaction.
:class:`MachineFleet` pairs the structural compile cache
(:func:`repro.compiler.compile.compile_cached`) with the sparse reaction
backend so a fleet pays compilation and planning **once**, each member
only its runtime state (net values, registers, signal slots — see
``Circuit.per_machine_state_estimate``), and each steady-state reaction
only its dirty cone.

Typical use::

    from repro import MachineFleet

    fleet = MachineFleet(participant_module, size=1000)
    fleet.react_all({"tick": True})            # batch-drive every member
    fleet.react_one(42, {"play": True})        # drive one participant
    fleet.memory_report()                      # shared vs per-machine split
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import FleetReactionError, MachineError
from repro.lang import ast as A
from repro.compiler.compile import (
    CompiledModule,
    CompileOptions,
    compile_cached,
)
from repro.runtime.ingress import (
    RATE_LIMITED,
    LatencyEwma,
    Mailbox,
    TokenBucket,
)
from repro.runtime.lockstep import LockstepFleet
from repro.runtime.machine import BACKENDS, ModuleLike, ReactionResult, ReactiveMachine

#: ``backend="auto"`` fleets enable the lockstep word engine only at or
#: above this construction size: below it, the per-instant word overhead
#: (plane rolls, batch partitioning) costs more than the handful of
#: scalar reactions it replaces.
LOCKSTEP_MIN_MEMBERS = 64


class MachineFleet:
    """A pool of :class:`~repro.runtime.machine.ReactiveMachine` members
    built from one shared :class:`~repro.compiler.compile.CompiledModule`.

    Construction compiles (or cache-hits) the module once; every
    :meth:`spawn` then only allocates per-machine state, making member
    construction O(state) instead of O(compile).  Members are ordinary
    machines — they can be driven individually, via the batch helpers
    here, or handed out to host code.
    """

    def __init__(
        self,
        module: ModuleLike,
        modules: Optional[A.ModuleTable] = None,
        options: Optional[CompileOptions] = None,
        size: int = 0,
        backend: str = "auto",
        **machine_kwargs: Any,
    ):
        if isinstance(module, CompiledModule):
            self.compiled = module
        else:
            self.compiled = compile_cached(module, modules, options)
        # Build the shared evaluation plan eagerly so no member pays it.
        self.plan = self.compiled.evaluation_plan()
        if backend not in BACKENDS and backend != "lockstep":
            raise MachineError(
                f"unknown fleet backend {backend!r}; expected one of "
                f"{BACKENDS + ('lockstep',)}"
            )
        self.backend = backend
        # The lockstep word engine: explicit `backend="lockstep"` always
        # (raising on impure plans), `auto` only for pure plans at
        # audience scale; members themselves are always scalar machines
        # ("auto" backend) — the engine anchors correctness on them by
        # demoting anything it cannot express.
        if backend == "lockstep":
            # let the engine raise its MachineError on impure plans
            # before any word-plan compilation is attempted
            self._engine: Optional[LockstepFleet] = LockstepFleet(
                self.plan,
                self.compiled.word_plan() if self.plan.is_pure else None,
            )
        elif (
            backend == "auto"
            and self.plan.is_pure
            and size >= LOCKSTEP_MIN_MEMBERS
        ):
            self._engine = LockstepFleet(self.plan, self.compiled.word_plan())
        else:
            self._engine = None
        self._member_backend = "auto" if backend == "lockstep" else backend
        self._machine_kwargs = machine_kwargs
        self._machines: List[ReactiveMachine] = []
        #: cached full-broadcast partition, keyed on the engine's
        #: membership generation: (generation, members, word_batch,
        #: scalar_indices)
        self._partition_cache: Optional[Any] = None
        if size:
            self.spawn_many(size)

    @classmethod
    def from_artifact(
        cls,
        source: Any,
        fingerprint: Optional[str] = None,
        **kwargs: Any,
    ) -> "MachineFleet":
        """Cold-start a fleet from a compiled plan artifact instead of
        from sources.

        ``source`` is either the raw bytes of a
        :func:`~repro.compiler.compile.plan_artifact` payload, or an
        :class:`~repro.compiler.compile.ArtifactStore` (then
        ``fingerprint`` selects which program to load).  Hydration skips
        the whole frontend — parse, expansion, translation, optimization
        and plan construction — so a worker process reaches its first
        reaction an order of magnitude sooner than a fresh compile (see
        ``benchmarks/bench_compile.py``)."""
        from repro.compiler.compile import hydrate_plan_artifact

        if isinstance(source, (bytes, bytearray)):
            compiled = hydrate_plan_artifact(bytes(source))
        else:
            if fingerprint is None:
                raise MachineError(
                    "from_artifact(store, ...) needs the fingerprint of "
                    "the program to load"
                )
            compiled = source.load(fingerprint)
        return cls(compiled, **kwargs)

    # -- membership -----------------------------------------------------

    def build_machine(self, **overrides: Any) -> ReactiveMachine:
        """Construct a machine from the fleet's shared plan *without*
        adding it to the fleet — e.g. to pre-warm spares whose circuit
        allocation should happen off a latency-critical path."""
        kwargs = {**self._machine_kwargs, **overrides}
        return ReactiveMachine(self.compiled, backend=self._member_backend, **kwargs)

    def spawn(self, **overrides: Any) -> ReactiveMachine:
        """Add one member (keyword overrides win over the fleet
        defaults) and return it."""
        machine = self.build_machine(**overrides)
        self._machines.append(machine)
        if self._engine is not None:
            self._engine.try_promote(machine)
        return machine

    def spawn_many(self, count: int) -> List[ReactiveMachine]:
        """Bulk membership growth: builds ``count`` members off the
        shared plan, appends them in one extend, and — when the lockstep
        engine is on — promotes them with the boot-pattern bulk path
        (one plane OR per init register for the whole cohort) instead of
        ``count`` per-member state walks."""
        machines = [self.build_machine() for _ in range(count)]
        self._machines.extend(machines)
        if self._engine is not None:
            self._engine.promote_fresh(machines)
        return machines

    def __len__(self) -> int:
        return len(self._machines)

    def __getitem__(self, index: int) -> ReactiveMachine:
        return self._machines[index]

    def __iter__(self) -> Iterator[ReactiveMachine]:
        return iter(self._machines)

    # -- batch driving --------------------------------------------------

    def react_all(
        self, inputs: Optional[Dict[str, Any]] = None
    ) -> List[ReactionResult]:
        """One reaction on every member with the same inputs (a broadcast
        instant — e.g. the Skini musical pulse); returns the results in
        member order.

        The instant is completed for *every* member even when some fail:
        failures are collected and raised afterwards as a single
        :class:`~repro.errors.FleetReactionError` carrying the completed
        and failed member indices (and the partial results), so one bad
        member can never leave the fleet half-advanced within a logical
        instant."""
        shared = inputs or {}
        return self._drive_batch(
            range(len(self._machines)),
            lambda index, machine: shared,
            shared=shared,
        )

    def _drive_batch(
        self,
        indices: Any,
        make_inputs: Callable[[int, ReactiveMachine], Dict[str, Any]],
        shared: Optional[Dict[str, Any]] = None,
        as_dict: bool = False,
    ) -> Any:
        """Run one reaction on each addressed member, completing the
        whole batch before reporting failures (shared by ``react_all`` /
        ``broadcast`` / ``react_each``).

        Word-resident members are partitioned into one lockstep word
        instant (``shared`` marks the broadcast case where every member
        got the same map, enabling the engine's shared-result path);
        everyone else reacts scalar, and a clean scalar reaction
        re-promotes the member into the word for the next batch.
        """
        indices = list(indices)
        results: Any = {} if as_dict else [None] * len(self._machines)
        completed: List[int] = []
        failures: Dict[int, Exception] = {}
        engine = self._engine
        scalar_indices: List[int] = []
        if engine is not None and engine.resident_count:
            members = len(self._machines)
            full = shared is not None and len(indices) == members
            word_batch: Optional[List[Any]] = None
            if full and self._partition_cache is not None:
                generation, cached_members, batch, scalars = (
                    self._partition_cache
                )
                if generation == engine.generation and cached_members == members:
                    word_batch, scalar_indices = batch, scalars
            if word_batch is None:
                word_batch = []
                for index in indices:
                    machine = self._machines[index]
                    bit = machine._lockstep_bit
                    if bit < 0:
                        scalar_indices.append(index)
                    elif shared is not None:
                        # the engine reads inputs from `shared` in this
                        # mode; None keeps the cached tuples call-agnostic
                        word_batch.append((index, bit, None))
                    else:
                        try:
                            word_batch.append(
                                (index, bit, make_inputs(index, machine))
                            )
                        except Exception as err:
                            failures[index] = err
                if full:
                    self._partition_cache = (
                        engine.generation,
                        members,
                        word_batch,
                        scalar_indices,
                    )
            if word_batch:
                default, specials, word_failures = engine.react(
                    word_batch, shared=shared
                )
                if (
                    full
                    and not scalar_indices
                    and not specials
                    and not word_failures
                    and not failures
                ):
                    # whole fleet shared one quiescent result
                    return [default] * members
                failures.update(word_failures)
                for index, _, _ in word_batch:
                    if index not in word_failures:
                        results[index] = specials.get(index, default)
                        completed.append(index)
        else:
            scalar_indices = indices
        for index in scalar_indices:
            machine = self._machines[index]
            try:
                results[index] = machine.react(make_inputs(index, machine))
                completed.append(index)
            except Exception as err:
                failures[index] = err
            else:
                if engine is not None:
                    engine.try_promote(machine)
        completed.sort()
        if failures:
            raise FleetReactionError(
                f"{len(failures)} of {len(indices)} addressed members "
                f"failed the instant (members {sorted(failures)}); "
                f"{len(completed)} completed",
                completed=completed,
                failures=failures,
                results=results,
            )
        return results

    def react_one(
        self, index: int, inputs: Optional[Dict[str, Any]] = None
    ) -> ReactionResult:
        """One reaction on member ``index`` only."""
        try:
            machine = self._machines[index]
        except IndexError:
            raise MachineError(
                f"fleet has {len(self._machines)} members, no index {index}"
            ) from None
        return machine.react(inputs or {})

    def react_each(
        self, inputs_by_member: Mapping[int, Dict[str, Any]]
    ) -> Dict[int, ReactionResult]:
        """One reaction per addressed member (others stay untouched).
        Like :meth:`react_all`, the whole batch is driven before any
        member's failure is raised (as a
        :class:`~repro.errors.FleetReactionError` whose ``results`` is a
        dict keyed by member index)."""
        for index in inputs_by_member:
            if not 0 <= index < len(self._machines):
                raise MachineError(
                    f"fleet has {len(self._machines)} members, no index "
                    f"{index}"
                )
        return self._drive_batch(
            inputs_by_member,
            lambda index, machine: inputs_by_member[index],
            as_dict=True,
        )

    def broadcast(
        self, make_inputs: Callable[[int, ReactiveMachine], Dict[str, Any]]
    ) -> List[ReactionResult]:
        """One reaction on every member with member-specific inputs from
        ``make_inputs(index, machine)``; completes the instant for every
        member before raising a collected
        :class:`~repro.errors.FleetReactionError` (an exception from
        ``make_inputs`` itself counts as that member's failure)."""
        return self._drive_batch(range(len(self._machines)), make_inputs)

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        backends: Dict[str, int] = {}
        for machine in self._machines:
            backends[machine.backend] = backends.get(machine.backend, 0) + 1
        stats = {
            "members": len(self._machines),
            "module": self.compiled.module.name,
            "nets": len(self.compiled.circuit.nets),
            "backends": backends,
            "reactions": sum(m.reaction_count for m in self._machines),
        }
        engine = self._engine
        if engine is not None:
            lockstep = engine.stats()
            lockstep["scalar"] = len(self._machines) - lockstep["resident"]
            stats["lockstep"] = lockstep
        return stats

    def memory_report(self) -> Dict[str, Any]:
        """The shared-plan amortization story in bytes: one circuit and
        one evaluation plan however many members, plus per-member state.
        With the lockstep engine on, a ``lockstep`` sub-report adds the
        packed-column split (register planes / status planes / word
        plan); those bytes are engine overhead on top of ``total_bytes``,
        which keeps its shared + members × per-machine meaning."""
        circuit = self.compiled.circuit
        shared = circuit.memory_estimate() + self.plan.memory_estimate()
        per_machine = circuit.per_machine_state_estimate()
        members = len(self._machines)
        total = shared + per_machine * members
        naive = (shared + per_machine) * max(members, 1)
        report = {
            "members": members,
            "shared_bytes": shared,
            "per_machine_bytes": per_machine,
            "total_bytes": total,
            "unshared_total_bytes": naive,
            "amortization": round(naive / total, 2) if total else 0.0,
        }
        if self._engine is not None:
            report["lockstep"] = self._engine.memory_bytes()
        return report

    def __repr__(self) -> str:
        return (
            f"MachineFleet({self.compiled.module.name}, "
            f"{len(self._machines)} members, backend={self.backend!r})"
        )

    def ingress(self, **kwargs: Any) -> "FleetIngress":
        """Build a :class:`FleetIngress` admission-control front for this
        fleet (keyword arguments forwarded to its constructor)."""
        return FleetIngress(self, **kwargs)


class FleetIngress:
    """Admission control in front of a :class:`MachineFleet`: bounded
    per-member mailboxes, a fleet-wide token-bucket rate limiter,
    health-aware routing, and adaptive batch sizing.

    The contract mirrors :class:`~repro.runtime.ingress.Mailbox`'s —
    every offered input map is *admitted, coalesced, shed, rate-limited
    or rejected by a recorded decision*; nothing is silently lost and
    nothing buffers unboundedly, no matter the offered load.

    :param fleet: the fleet (or a :class:`~repro.runtime.recovery.FleetSupervisor`
        via ``supervisor``) whose members this ingress guards.
    :param capacity: per-member mailbox capacity.
    :param policy: per-member mailbox shedding policy (see
        :data:`~repro.runtime.ingress.POLICIES`).
    :param rate_per_s: fleet-wide sustained admission rate (offers per
        second, one token each); ``None`` disables rate limiting.
    :param burst: token-bucket capacity (defaults to one second's worth).
    :param supervisor: optional :class:`~repro.runtime.recovery.FleetSupervisor`;
        when given, pumping reacts through each member's supervisor
        (rollback/retry on failure) and routing skips quarantined members.
    :param target_latency_ms: adaptive batch-sizing target — when the
        EWMA of per-instant react latency exceeds it, the pump batch
        halves (down to ``min_batch``); when comfortably below (80 %),
        the batch grows by one (up to ``max_batch``).
    :param min_batch: smallest adaptive batch (members per pump round).
    :param max_batch: largest adaptive batch (default: the fleet size).
    :param ewma_alpha: smoothing factor of the latency EWMA.
    :param budget: reaction deadline forwarded to every pumped react.
    :param coalesce_on_pump: collapse each member's whole backlog into
        one merged instant before reacting (the overload-flattening mode
        the bench gate measures); ``False`` drains one queued map per
        member per round instead.
    """

    def __init__(
        self,
        fleet: MachineFleet,
        capacity: int = 64,
        policy: str = "coalesce",
        rate_per_s: Optional[float] = None,
        burst: Optional[float] = None,
        supervisor: Optional[Any] = None,
        target_latency_ms: Optional[float] = None,
        min_batch: int = 1,
        max_batch: Optional[int] = None,
        ewma_alpha: float = 0.2,
        budget: Optional[Any] = None,
        coalesce_on_pump: bool = True,
        on_instant: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    ):
        self.fleet = fleet
        self.supervisor = supervisor
        self.budget = budget
        self.coalesce_on_pump = coalesce_on_pump
        #: observation hook called with ``(member, inputs)`` for every
        #: instant actually applied by the pump — *post* mailbox
        #: coalescing, so replaying the recorded instants into a fresh
        #: fleet reproduces member state exactly (the digest-parity
        #: oracle of the gateway chaos tests rides on this)
        self.on_instant = on_instant
        self._capacity = capacity
        self._policy = policy
        #: member indices removed from routing (shard migration sources);
        #: their mailbox slots stay so historic indices remain stable
        self.retired: set = set()
        self.mailboxes: List[Mailbox] = [
            Mailbox.for_machine(machine, capacity=capacity, policy=policy)
            for machine in fleet
        ]
        for machine, mailbox in zip(fleet, self.mailboxes):
            machine.attach_mailbox(mailbox)
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(rate_per_s, burst) if rate_per_s is not None else None
        )
        self.latency = LatencyEwma(ewma_alpha)
        self.target_latency_ms = target_latency_ms
        if min_batch < 1:
            raise ValueError("min_batch must be >= 1")
        self.min_batch = min_batch
        self.max_batch = max_batch if max_batch is not None else max(1, len(fleet))
        if self.max_batch < self.min_batch:
            raise ValueError("max_batch must be >= min_batch")
        #: current adaptive batch size (members reacted per pump round)
        self.batch_size = self.max_batch
        self._cursor = 0
        #: member index → exception, for the most recent pump round
        self.last_failures: Dict[int, BaseException] = {}
        self.stats_counters: Dict[str, int] = {
            "offered": 0,
            "rate_limited": 0,
            "pumped": 0,
            "pump_failures": 0,
            "backoffs": 0,
            "rampups": 0,
        }

    def __len__(self) -> int:
        return len(self.mailboxes)

    # -- health-aware membership ----------------------------------------

    def is_healthy(self, index: int) -> bool:
        """A member is routable unless it was retired, its supervisor
        quarantined it, or one of its circuit breakers is open."""
        if index in self.retired:
            return False
        if self.supervisor is not None and self.supervisor.members[index].quarantined:
            return False
        breakers = self.fleet[index].health["breakers"]
        return all(b.get("state") != "open" for b in breakers.values())

    def healthy_members(self) -> List[int]:
        return [i for i in range(len(self.fleet)) if self.is_healthy(i)]

    # -- dynamic membership (shard adoption / migration) -----------------

    def add_member(self, machine: Optional[Any] = None, **overrides: Any) -> int:
        """Grow the guarded fleet by one member — either adopt an
        existing ``machine`` (a migrated member arriving on this shard,
        already restored; it is appended to the fleet) or spawn a fresh
        one from the fleet's shared plan.  The new member gets its own
        mailbox (same capacity/policy as the rest) and its index is
        returned.

        When a ``supervisor`` was given at construction, the caller must
        keep its ``members`` roster aligned (append a supervisor for the
        new machine) before routing to the new index.
        """
        if machine is None:
            machine = self.fleet.spawn(**overrides)
        else:
            self.fleet._machines.append(machine)
        mailbox = Mailbox.for_machine(
            machine, capacity=self._capacity, policy=self._policy
        )
        machine.attach_mailbox(mailbox)
        self.mailboxes.append(mailbox)
        self.max_batch = max(self.max_batch, len(self.mailboxes))
        return len(self.mailboxes) - 1

    def retire(self, index: int) -> List[Dict[str, Any]]:
        """Remove member ``index`` from routing (a migration source
        leaving this shard): drain and return its mailbox backlog —
        oldest first, to be shipped with the member — and mark the slot
        retired so no new input is admitted to it.  Idempotent."""
        backlog = self.mailboxes[index].drain()
        self.retired.add(index)
        return backlog

    # -- admission -------------------------------------------------------

    def offer(
        self, index: int, inputs: Mapping[str, Any], now_ms: float = 0.0
    ) -> str:
        """Offer one input map to member ``index``; returns the recorded
        admission decision (including :data:`~repro.runtime.ingress.RATE_LIMITED`
        when the token bucket refuses — the offer never reaches the
        mailbox but is still on the record)."""
        self.stats_counters["offered"] += 1
        if self.bucket is not None and not self.bucket.try_acquire(now_ms):
            self.stats_counters["rate_limited"] += 1
            return RATE_LIMITED
        return self.mailboxes[index].offer(inputs)

    def offer_all(
        self, inputs: Mapping[str, Any], now_ms: float = 0.0
    ) -> Dict[int, str]:
        """Offer the same map to every *healthy* member (one token each);
        returns the per-member decisions."""
        return {
            index: self.offer(index, inputs, now_ms)
            for index in self.healthy_members()
        }

    def route(
        self, inputs: Mapping[str, Any], now_ms: float = 0.0
    ) -> Tuple[int, str]:
        """Admit one map to the least-loaded healthy member (fewest
        pending mailbox entries, lowest index breaking ties).  Returns
        ``(member index, decision)``."""
        healthy = self.healthy_members()
        if not healthy:
            raise MachineError(
                "no healthy fleet member to route to (all quarantined or "
                "breaker-open)"
            )
        index = min(healthy, key=lambda i: (self.mailboxes[i].pending, i))
        return index, self.offer(index, inputs, now_ms)

    # -- draining --------------------------------------------------------

    def _react_member(
        self, index: int, inputs: Dict[str, Any]
    ) -> ReactionResult:
        if self.supervisor is not None:
            return self.supervisor.members[index].react(inputs, budget=self.budget)
        return self.fleet[index].react(inputs, budget=self.budget)

    def pump(self, clock: Callable[[], float] = time.perf_counter) -> Dict[int, ReactionResult]:
        """One adaptive pump round: drive up to :attr:`batch_size`
        healthy members with pending mail (round-robin, so a noisy member
        cannot starve the rest), one instant each.  With
        ``coalesce_on_pump`` the member's whole backlog is first
        collapsed into one merged instant.  Failures are collected in
        :attr:`last_failures` without aborting the round; react latency
        feeds the EWMA and resizes the next round's batch."""
        size = len(self.mailboxes)
        chosen: List[int] = []
        for step in range(size):
            index = (self._cursor + step) % size
            if self.mailboxes[index].pending and self.is_healthy(index):
                chosen.append(index)
                if len(chosen) >= self.batch_size:
                    break
        self._cursor = (chosen[-1] + 1) % size if chosen else self._cursor
        results: Dict[int, ReactionResult] = {}
        failures: Dict[int, BaseException] = {}
        for index in chosen:
            mailbox = self.mailboxes[index]
            if self.coalesce_on_pump:
                mailbox.collapse()
            inputs = mailbox.take()
            started = clock()
            try:
                results[index] = self._react_member(index, inputs)
                self.stats_counters["pumped"] += 1
                if self.on_instant is not None:
                    self.on_instant(index, inputs)
            except Exception as err:
                failures[index] = err
                self.stats_counters["pump_failures"] += 1
            finally:
                self.latency.observe((clock() - started) * 1000.0)
        self.last_failures = failures
        self._resize_batch()
        return results

    def pump_all(
        self,
        max_rounds: int = 1_000_000,
        clock: Callable[[], float] = time.perf_counter,
    ) -> Dict[int, ReactionResult]:
        """Pump until every healthy member's mailbox is empty (or
        ``max_rounds`` rounds); returns each member's *last* result."""
        results: Dict[int, ReactionResult] = {}
        for _ in range(max_rounds):
            if not any(
                self.mailboxes[i].pending for i in self.healthy_members()
            ):
                break
            results.update(self.pump(clock))
        return results

    def _resize_batch(self) -> None:
        if self.target_latency_ms is None or self.latency.value is None:
            return
        if self.latency.value > self.target_latency_ms:
            shrunk = max(self.min_batch, self.batch_size // 2)
            if shrunk < self.batch_size:
                self.stats_counters["backoffs"] += 1
            self.batch_size = shrunk
        elif (
            self.latency.value < 0.8 * self.target_latency_ms
            and self.batch_size < self.max_batch
        ):
            self.batch_size += 1
            self.stats_counters["rampups"] += 1

    # -- accounting ------------------------------------------------------

    def check_accounting(self) -> None:
        """Assert the zero-silent-drop invariant across every member
        mailbox plus the ingress-level rate-limit record."""
        for mailbox in self.mailboxes:
            mailbox.check_accounting()
        c = self.stats_counters
        reaching = sum(m.stats["offered"] for m in self.mailboxes)
        if c["offered"] != reaching + c["rate_limited"]:
            raise MachineError(
                f"fleet ingress accounting violated: offered {c['offered']} "
                f"!= mailbox-offered {reaching} + rate-limited "
                f"{c['rate_limited']}"
            )

    def stats(self) -> Dict[str, Any]:
        totals: Dict[str, int] = {
            "admitted": 0, "coalesced": 0, "rejected": 0, "dropped": 0,
        }
        pending = 0
        for mailbox in self.mailboxes:
            for key in totals:
                totals[key] += mailbox.stats[key]
            pending += mailbox.pending
        shed = totals["rejected"] + totals["dropped"]
        return {
            **self.stats_counters,
            **totals,
            "shed": shed,
            "pending": pending,
            "batch_size": self.batch_size,
            "latency_ewma_ms": self.latency.value,
            "healthy": len(self.healthy_members()),
            "members": len(self.mailboxes),
            "retired": len(self.retired),
        }

    def __repr__(self) -> str:
        return (
            f"FleetIngress({len(self.mailboxes)} members, "
            f"batch={self.batch_size}, {self.stats_counters})"
        )
