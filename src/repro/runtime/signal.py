"""Run-time signal state.

Each compiled signal instance owns one :class:`RuntimeSignal` slot holding
its presence status for the current and previous instants (statuses reset
every reaction) and its value for the current and previous instants
(values persist across reactions until re-emitted) — paper section 2.2.1.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import MultipleEmitError


class RuntimeSignal:
    """Mutable per-reaction state of one signal instance."""

    __slots__ = (
        "slot",
        "name",
        "bound_name",
        "direction",
        "combine",
        "now",
        "pre",
        "nowval",
        "preval",
        "emitted",
    )

    def __init__(
        self,
        slot: int,
        name: str,
        bound_name: str,
        direction: str,
        combine: Optional[Callable[[Any, Any], Any]],
    ):
        self.slot = slot
        self.name = name
        self.bound_name = bound_name
        self.direction = direction
        self.combine = combine
        self.now: bool = False
        self.pre: bool = False
        self.nowval: Any = None
        self.preval: Any = None
        #: number of value emissions in the current instant
        self.emitted: int = 0

    def begin_instant(self) -> None:
        """Roll current state into ``pre`` and reset the instant state."""
        self.pre = self.now
        self.preval = self.nowval
        self.now = False
        self.emitted = 0

    def write(self, value: Any) -> None:
        """One value emission; combines on re-emission within an instant."""
        if self.emitted == 0:
            self.nowval = value
        elif self.combine is not None:
            self.nowval = self.combine(self.nowval, value)
        else:
            raise MultipleEmitError(
                f"signal {self.name!r} emitted twice in one reaction "
                "without a combine function"
            )
        self.emitted += 1

    def initialize(self, value: Any) -> None:
        """Declaration-time (re-)initialization: sets the value without
        counting as an emission."""
        self.nowval = value

    def __repr__(self) -> str:
        status = "present" if self.now else "absent"
        return f"RuntimeSignal({self.name}: {status}, value={self.nowval!r})"


class SignalView:
    """Read-only signal accessor exposed on the machine
    (``machine.connState.nowval`` after a reaction, mirroring the paper's
    client code ``M.connState.nowval``)."""

    __slots__ = ("_signal",)

    def __init__(self, signal: RuntimeSignal):
        self._signal = signal

    @property
    def now(self) -> bool:
        return self._signal.now

    @property
    def pre(self) -> bool:
        return self._signal.pre

    @property
    def nowval(self) -> Any:
        return self._signal.nowval

    @property
    def preval(self) -> Any:
        return self._signal.preval

    @property
    def signame(self) -> str:
        return self._signal.bound_name

    def __repr__(self) -> str:
        return f"SignalView({self._signal!r})"
