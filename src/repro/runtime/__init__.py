"""Runtime: the reactive machine and its constructive circuit simulator."""

from repro.runtime.fleet import MachineFleet
from repro.runtime.journal import FileJournal, JournalEntry, MemoryJournal
from repro.runtime.machine import ReactiveMachine, ReactionResult, SNAPSHOT_FORMAT
from repro.runtime.recovery import FleetSupervisor, MachineSupervisor

__all__ = [
    "MachineFleet",
    "ReactiveMachine",
    "ReactionResult",
    "JournalEntry",
    "MemoryJournal",
    "FileJournal",
    "MachineSupervisor",
    "FleetSupervisor",
    "SNAPSHOT_FORMAT",
]
