"""Runtime: the reactive machine and its constructive circuit simulator."""

from repro.runtime.fleet import FleetIngress, MachineFleet
from repro.runtime.gateway import Gateway, GatewayClient, Session, tcp_connector
from repro.runtime.ingress import LatencyEwma, Mailbox, TokenBucket, merge_inputs
from repro.runtime.journal import (
    FileJournal,
    JournalEntry,
    MemoryJournal,
    TornJournalWarning,
)
from repro.runtime.machine import ReactiveMachine, ReactionResult, SNAPSHOT_FORMAT
from repro.runtime.recovery import FleetSupervisor, MachineSupervisor
from repro.runtime.shard import ShardManager
from repro.runtime.worker import ShardWorker, WorkerConfig

__all__ = [
    "MachineFleet",
    "FleetIngress",
    "Gateway",
    "GatewayClient",
    "Session",
    "tcp_connector",
    "ReactiveMachine",
    "ReactionResult",
    "Mailbox",
    "TokenBucket",
    "LatencyEwma",
    "merge_inputs",
    "JournalEntry",
    "MemoryJournal",
    "FileJournal",
    "TornJournalWarning",
    "MachineSupervisor",
    "FleetSupervisor",
    "ShardManager",
    "ShardWorker",
    "WorkerConfig",
    "SNAPSHOT_FORMAT",
]
