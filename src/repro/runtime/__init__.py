"""Runtime: the reactive machine and its constructive circuit simulator."""

from repro.runtime.fleet import MachineFleet
from repro.runtime.machine import ReactiveMachine, ReactionResult

__all__ = ["MachineFleet", "ReactiveMachine", "ReactionResult"]
