"""Runtime: the reactive machine and its constructive circuit simulator."""

from repro.runtime.machine import ReactiveMachine, ReactionResult

__all__ = ["ReactiveMachine", "ReactionResult"]
