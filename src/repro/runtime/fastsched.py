"""Levelized reaction backend: straight-line plan execution.

:class:`LevelizedScheduler` is a drop-in replacement for the worklist
:class:`~repro.runtime.scheduler.Scheduler` (same ``values`` / ``state``
/ ``react`` / ``clear_state`` surface, so the reactive machine and the
host payloads cannot tell them apart).  Each reaction calls the plan's
compiled straight-line function, which evaluates every net exactly once
in level order — no queue, no ternary ⊥ bookkeeping, no per-reaction
allocation (the values buffer is recycled with a slice copy).

Cyclic components the levelization could not sort (constructive-but-
cyclic programs) run as embedded *relaxation blocks*: a local ternary
fixpoint over just those nets, walked over the plan's CSR adjacency
arrays.  Because the constructive least fixpoint is unique and both
backends respect the same data-dependency edges, a reaction observes the
identical signal trace — and the identical
:class:`~repro.errors.CausalityError` — whichever backend runs it.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReactionBudgetExceeded
from repro.compiler.netlist import ACTION, AND, EXPR, OR, Net, causality_error
from repro.compiler.plan import (
    KIND_ACTION,
    KIND_AND,
    KIND_EXPR,
    KIND_INPUT,
    KIND_OR,
    KIND_REG,
    EvalPlan,
)

UNKNOWN = None

#: the sparse mode falls back to the compiled full straight-line sweep
#: *before* evaluating anything when the static union dirty cone of the
#: changed sources covers this fraction of the circuit — at that point
#: most nets may need recomputing and compiled code wins outright.
SPARSE_FULL_CONE_FRACTION = 0.9

#: mid-reaction bailout: once the *actually dirty* net count crosses this
#: fraction of the circuit, the sparse evaluator stops heap-propagating
#: and finishes the reaction as a straight-line tail scan (the static
#: cone over-approximates; this bounds the cost when it under-predicted).
SPARSE_BAILOUT_FRACTION = 0.25


class LevelizedScheduler:
    """Plan-based propagation engine for one circuit (one machine)."""

    def __init__(self, plan: EvalPlan, host: Any):
        self.plan = plan
        self.circuit = plan.circuit
        self.host = host
        n = len(plan.circuit.nets)

        #: per-reaction net values; reused in place every reaction
        self.values: List[Optional[bool]] = [UNKNOWN] * n
        self._blank: Tuple[Optional[bool], ...] = (UNKNOWN,) * n
        #: register state (the sequential memory of the machine)
        self.state: List[bool] = [net.init for net in plan.registers]
        self._registers = plan.registers
        self._blocks: Tuple[Callable[[], bool], ...] = tuple(
            self._make_block(members, riders)
            for members, riders in zip(plan.blocks, plan.block_riders)
        )
        #: reaction deadline, in net evaluations (None = unlimited); set
        #: by the machine before each instant from its remaining budget
        self.budget: Optional[int] = None
        #: net evaluations spent by the last (possibly aborted) reaction
        self.last_evaluated: int = 0

    # ------------------------------------------------------------------

    def value(self, net: Net) -> Optional[bool]:
        return self.values[net.id]

    def react(self, input_values: Dict[int, bool]) -> None:
        """Run one reaction (same contract as the worklist scheduler)."""
        values = self.values
        self._check_static_budget(len(values))
        values[:] = self._blank
        ok = self.plan.fn(
            values,
            self.state,
            self.plan.payloads,
            self.host,
            input_values.get,
            self._blocks,
        )
        if not ok:
            self._diverge()

    def clear_state(self) -> None:
        """Reset all registers to their boot values (machine reset)."""
        self.state[:] = [net.init for net in self._registers]

    def _check_static_budget(self, evaluations: int) -> None:
        """Full sweeps evaluate a statically known net count, so the
        deadline check is a single comparison *before* anything runs —
        an over-budget sweep aborts cleanly at the instant boundary
        (no payload fired, no register latched).  Relaxation-block
        iterations are charged on top as they happen."""
        self.last_evaluated = evaluations
        if self.budget is not None and evaluations > self.budget:
            raise ReactionBudgetExceeded(
                f"reaction in {self.circuit.name} needs {evaluations} net "
                f"evaluations, exceeding its {self.budget}-net budget",
                budget=self.budget,
                evaluated=evaluations,
            )

    def _charge_budget(self, evaluations: int) -> None:
        """Charge mid-reaction work (relaxation sweeps) to the deadline."""
        self.last_evaluated += evaluations
        if self.budget is not None and self.last_evaluated > self.budget:
            raise ReactionBudgetExceeded(
                f"reaction in {self.circuit.name} exceeded its "
                f"{self.budget}-net evaluation budget while relaxing a "
                f"cyclic block",
                budget=self.budget,
                evaluated=self.last_evaluated,
            )

    # ------------------------------------------------------------------
    # ternary relaxation (cyclic blocks and the divergence error path)
    # ------------------------------------------------------------------

    def _relax_pass(self, net_ids: Iterable[int]) -> bool:
        """One monotone sweep of the ternary least-fixpoint rules over the
        still-unknown nets in ``net_ids``; True when something resolved.

        Matches the worklist semantics net for net: OR resolves to 1 on
        any true fanin and to 0 only when all fanins are 0 (dually AND);
        EXPR/ACTION payloads fire exactly once, after their enable is
        true and every data dependency is resolved.
        """
        plan = self.plan
        values = self.values
        nets = self.circuit.nets
        fanin_index = plan.fanin_index
        fanin_src = plan.fanin_src
        fanin_neg = plan.fanin_neg
        dep_index = plan.dep_index
        dep_ids = plan.dep_ids
        payloads = plan.payloads
        changed = False
        for net_id in net_ids:
            if values[net_id] is not UNKNOWN:
                continue
            kind = nets[net_id].kind
            lo, hi = fanin_index[net_id], fanin_index[net_id + 1]
            if kind == OR or kind == AND:
                want = kind == OR  # the absorbing fanin value
                result: Optional[bool] = not want
                for j in range(lo, hi):
                    value = values[fanin_src[j]]
                    if value is UNKNOWN:
                        if result is not want:
                            result = UNKNOWN
                    elif (value ^ bool(fanin_neg[j])) is want:
                        result = want
                        break
                if result is not UNKNOWN:
                    values[net_id] = result
                    changed = True
            elif kind == EXPR or kind == ACTION:
                enable = values[fanin_src[lo]]
                if enable is UNKNOWN:
                    continue
                if not (enable ^ bool(fanin_neg[lo])):
                    values[net_id] = False
                    changed = True
                    continue
                if any(
                    values[dep_ids[j]] is UNKNOWN
                    for j in range(dep_index[net_id], dep_index[net_id + 1])
                ):
                    continue
                result = payloads[net_id](self.host)
                values[net_id] = bool(result) if kind == EXPR else True
                changed = True
            # REG / INPUT are level-0 sources: always already resolved.
        return changed

    def _make_block(
        self, members: Tuple[int, ...], riders: Tuple[int, ...]
    ) -> Callable[[], bool]:
        """A runner relaxing one cyclic component to its local fixpoint.

        ``riders`` (acyclic payload nets enabled from inside the block)
        join the sweep so their side effects interleave with the block's
        own payloads in net-id order, exactly as the worklist fires a
        wire's fanout in creation order.  They do not gate convergence: a
        rider left unknown here (e.g. a data dependency evaluated after
        this block) is finished by its guarded straight-line statement.
        """
        values = self.values
        sweep = tuple(sorted(members + riders))

        def run() -> bool:
            while self._relax_pass(sweep):
                self._charge_budget(len(sweep))
            return all(values[net_id] is not UNKNOWN for net_id in members)

        return run

    def _diverge(self) -> None:
        """A block failed to converge: finish the global least fixpoint so
        the unresolved set — and therefore the reported error — is
        identical to the worklist scheduler's, then raise."""
        all_ids = range(len(self.circuit.nets))
        while self._relax_pass(all_ids):
            pass
        raise causality_error(self.circuit, self.values)


class SparseScheduler(LevelizedScheduler):
    """Dirty-cone reaction backend: evaluate only what can have changed.

    The full straight-line sweep recomputes every net every reaction,
    even though in steady state almost nothing changes — a 10k-net Skini
    score pays the whole circuit to process one audience tap.  This
    scheduler keeps the previous reaction's net values and re-evaluates
    only the *dirty cone*:

    * **changed inputs** — INPUT nets whose presence differs from the
      previous reaction (detected by comparing the input id sets);
    * **changed registers** — REG nets whose latched state differs from
      the value they showed last reaction (recorded at latch time);
    * **hot payloads** — every EXPR/ACTION net whose enable is currently
      true.  Payloads re-run each instant in the full sweep (they read
      host state — signal values, ``pre``, frame vars, counters — that
      can change without any boolean net changing, and ACTION effects
      must repeat), so sparse mode re-fires exactly the same set.

    Dirty nets are evaluated in the plan's straight-line rank order via
    a min-heap, and a net's fanout (boolean consumers *and* data-dep
    readers, from the plan's CSR arrays) joins the heap only when its
    value actually changed — so work is proportional to real activity,
    not circuit size.  Payloads fire under exactly the same conditions
    and in exactly the same order as the full sweep, which makes traces
    and host-effect interleavings byte-identical (checked by
    ``tests/test_backend_parity.py``).

    Two fallbacks bound the cost when a lot *did* change.  Statically,
    when the union forward cone of the changed sources covers more than
    :data:`SPARSE_FULL_CONE_FRACTION` of the circuit, the reaction takes
    the compiled full sweep outright.  Dynamically — because static
    reachability over-approximates (in control-heavy circuits almost
    every net is reachable from any input, while a typical reaction
    changes a handful) — the heap loop counts the nets it actually
    dirtied, and past :data:`SPARSE_BAILOUT_FRACTION` of the circuit it
    degrades to a straight-line *tail scan* over the remaining ranks.
    The tail scan, unlike restarting the compiled sweep, is safe after
    payloads have already fired: every net still gets evaluated exactly
    once, in the straight-line order.

    Plans with cyclic relaxation blocks always take the full sweep
    (``plan.sparse_eligible`` is False), so causality errors are reported
    identically to the levelized backend.  :attr:`last_dirty` exposes the
    evaluated net ids of the latest reaction (``None`` after a full
    sweep) — the reactive machine uses it to update signal statuses
    incrementally.
    """

    def __init__(self, plan: EvalPlan, host: Any):
        super().__init__(plan, host)
        self._sparse_ok = plan.sparse_eligible
        n = len(plan.circuit.nets)
        self._full_limit = SPARSE_FULL_CONE_FRACTION * n
        self._bail_limit = max(int(SPARSE_BAILOUT_FRACTION * n), 64)
        #: net ids evaluated by the last reaction; None = full sweep
        self.last_dirty: Optional[List[int]] = None
        #: INPUT net ids that were present last reaction
        self._prev_present: set = set()
        #: REG net ids whose state changed at the last latch
        self._dirty_regs: List[int] = []
        #: EXPR/ACTION net ids whose enable is currently true
        self._hot: set = set()
        #: heap-membership flags, reused across reactions
        self._queued = bytearray(n)
        self._need_full = True
        #: count of sparse vs full-sweep reactions (introspection)
        self.sparse_reactions = 0
        self.full_reactions = 0

    # ------------------------------------------------------------------

    def react(self, input_values: Dict[int, bool]) -> None:
        if not self._sparse_ok:
            self.full_reactions += 1
            self.last_dirty = None
            super().react(input_values)
            return
        present = set(input_values)
        if self._need_full:
            self._react_full(input_values, present)
            return
        changed_inputs = present.symmetric_difference(self._prev_present)
        plan = self.plan
        cone_sizes = plan.cone_sizes
        estimate = len(self._hot)
        for net_id in changed_inputs:
            estimate += cone_sizes[net_id]
        for net_id in self._dirty_regs:
            estimate += cone_sizes[net_id]
        if estimate > self._full_limit:
            # The cheap sum over-counts shared cone regions; only compute
            # the exact union (bitset OR) when the sum looks alarming.
            cones = plan.cones
            union = 0
            for net_id in changed_inputs:
                union |= cones[net_id]
            for net_id in self._dirty_regs:
                union |= cones[net_id]
            if union.bit_count() + len(self._hot) > self._full_limit:
                self._react_full(input_values, present)
                return
        self._need_full = True  # stays set if a payload raises mid-cone
        self._react_sparse(input_values, changed_inputs)
        self._prev_present = present
        self._need_full = False
        self.sparse_reactions += 1

    def clear_state(self) -> None:
        super().clear_state()
        self._need_full = True
        # Defensive: no queued marker may survive a reset/restore — a
        # stale one would exclude its net from incremental reactions.
        self._queued[:] = bytes(len(self._queued))

    # ------------------------------------------------------------------

    def _react_full(self, input_values: Dict[int, bool], present: set) -> None:
        """Compiled full sweep, then rebuild the sparse tracking state.

        Unlike the levelized backend the values buffer is *not* blanked:
        a pure plan assigns every net unconditionally, and between
        reactions the buffer must keep the previous values for change
        detection anyway.
        """
        self._need_full = True
        plan = self.plan
        values = self.values
        self._check_static_budget(len(values))
        plan.fn(
            values,
            self.state,
            plan.payloads,
            self.host,
            input_values.get,
            self._blocks,
        )
        # Registers: the sweep showed V[reg] = old state, then latched the
        # new state, so a plain compare yields next reaction's dirty set.
        state = self.state
        self._dirty_regs = [
            reg_id
            for reg_id, slot in plan.reg_slot.items()
            if state[slot] != values[reg_id]
        ]
        # Hot payloads: every EXPR/ACTION whose enable settled true.
        fanin_index = plan.fanin_index
        fanin_src = plan.fanin_src
        fanin_neg = plan.fanin_neg
        hot = set()
        for net_id in plan.payload_ids:
            lo = fanin_index[net_id]
            if values[fanin_src[lo]] ^ fanin_neg[lo]:
                hot.add(net_id)
        self._hot = hot
        self._prev_present = present
        self.last_dirty = None
        self._need_full = False
        self.full_reactions += 1

    def _react_sparse(self, input_values: Dict[int, bool], changed_inputs: set) -> None:
        plan = self.plan
        values = self.values
        state = self.state
        rank = plan.rank
        kind_code = plan.kind_code
        fanin_index = plan.fanin_index
        fanin_src = plan.fanin_src
        fanin_neg = plan.fanin_neg
        fanout_index = plan.fanout_index
        fanout_ids = plan.fanout_ids
        payloads = plan.payloads
        reg_slot = plan.reg_slot
        latch_of_wire = plan.latch_of_wire
        host = self.host
        hot = self._hot
        queued = self._queued

        heap: List[Tuple[int, int]] = []
        for net_id in changed_inputs:
            queued[net_id] = 1
            heap.append((rank[net_id], net_id))
        for net_id in self._dirty_regs:
            if not queued[net_id]:
                queued[net_id] = 1
                heap.append((rank[net_id], net_id))
        for net_id in hot:
            if not queued[net_id]:
                queued[net_id] = 1
                heap.append((rank[net_id], net_id))
        heapify(heap)

        dirty_order: List[int] = []
        pending_latches: List[Tuple[int, Tuple[Tuple[int, bool, int], ...]]] = []
        bail_limit = self._bail_limit
        budget = self.budget
        try:
            while heap:
                if budget is not None and len(dirty_order) >= budget:
                    self.last_evaluated = len(dirty_order)
                    raise ReactionBudgetExceeded(
                        f"reaction in {self.circuit.name} exceeded its "
                        f"{budget}-net evaluation budget",
                        budget=budget,
                        evaluated=len(dirty_order),
                    )
                if len(dirty_order) >= bail_limit:
                    # Too much of the circuit is actually dirty: finish
                    # the reaction as a straight-line tail scan from the
                    # next rank on (payloads already fired stay fired and
                    # every remaining net is evaluated exactly once).
                    self._tail_scan(
                        heap[0][0], input_values, dirty_order, pending_latches
                    )
                    break
                _, i = heappop(heap)
                # On the dirty list *before* evaluation: a payload that
                # raises mid-evaluation (crash injection, host error)
                # must still have this net's queued marker cleared by the
                # finally below, or it stays silently excluded from every
                # later incremental reaction.
                dirty_order.append(i)
                old = values[i]
                kind = kind_code[i]
                if kind == KIND_OR:
                    new = False
                    for j in range(fanin_index[i], fanin_index[i + 1]):
                        if values[fanin_src[j]] ^ fanin_neg[j]:
                            new = True
                            break
                elif kind == KIND_AND:
                    new = True
                    for j in range(fanin_index[i], fanin_index[i + 1]):
                        if not (values[fanin_src[j]] ^ fanin_neg[j]):
                            new = False
                            break
                elif kind == KIND_REG:
                    new = state[reg_slot[i]]
                elif kind == KIND_INPUT:
                    new = i in input_values
                else:  # KIND_EXPR / KIND_ACTION
                    lo = fanin_index[i]
                    if values[fanin_src[lo]] ^ fanin_neg[lo]:
                        if kind == KIND_EXPR:
                            new = bool(payloads[i](host))
                        else:
                            payloads[i](host)
                            new = True
                        hot.add(i)
                    else:
                        new = False
                        hot.discard(i)
                values[i] = new
                if new != old:
                    for j in range(fanout_index[i], fanout_index[i + 1]):
                        succ = fanout_ids[j]
                        if not queued[succ]:
                            queued[succ] = 1
                            heappush(heap, (rank[succ], succ))
                    latches = latch_of_wire.get(i)
                    if latches is not None:
                        pending_latches.append((i, latches))
        finally:
            for net_id in dirty_order:
                queued[net_id] = 0
            for _, net_id in heap:
                queued[net_id] = 0

        self._latch(pending_latches)
        self.last_dirty = dirty_order
        self.last_evaluated = len(dirty_order)

    def _tail_scan(
        self,
        start_rank: int,
        input_values: Dict[int, bool],
        dirty_order: List[int],
        pending_latches: List[Tuple[int, Tuple[Tuple[int, bool, int], ...]]],
    ) -> None:
        """Finish a bailed-out sparse reaction: evaluate every net from
        ``start_rank`` to the end in straight-line order.  All nets below
        ``start_rank`` are settled (dirty ones were heap-popped in rank
        order, the rest are unchanged), so this is exactly the tail of
        the full sweep — same values, same payload firing order."""
        plan = self.plan
        values = self.values
        state = self.state
        kind_code = plan.kind_code
        fanin_index = plan.fanin_index
        fanin_src = plan.fanin_src
        fanin_neg = plan.fanin_neg
        payloads = plan.payloads
        reg_slot = plan.reg_slot
        latch_of_wire = plan.latch_of_wire
        rank_order = plan.rank_order
        host = self.host
        hot = self._hot
        if self.budget is not None:
            # The tail evaluates exactly the remaining ranks, so the
            # deadline check is one comparison up front, not per net.
            total = len(dirty_order) + (len(rank_order) - start_rank)
            if total > self.budget:
                self.last_evaluated = len(dirty_order)
                raise ReactionBudgetExceeded(
                    f"reaction in {self.circuit.name} needs {total} net "
                    f"evaluations after its tail-scan bailout, exceeding "
                    f"its {self.budget}-net budget",
                    budget=self.budget,
                    evaluated=len(dirty_order),
                )
        for pos in range(start_rank, len(rank_order)):
            i = rank_order[pos]
            old = values[i]
            kind = kind_code[i]
            if kind == KIND_OR:
                new = False
                for j in range(fanin_index[i], fanin_index[i + 1]):
                    if values[fanin_src[j]] ^ fanin_neg[j]:
                        new = True
                        break
            elif kind == KIND_AND:
                new = True
                for j in range(fanin_index[i], fanin_index[i + 1]):
                    if not (values[fanin_src[j]] ^ fanin_neg[j]):
                        new = False
                        break
            elif kind == KIND_REG:
                new = state[reg_slot[i]]
            elif kind == KIND_INPUT:
                new = i in input_values
            else:  # KIND_EXPR / KIND_ACTION
                lo = fanin_index[i]
                if values[fanin_src[lo]] ^ fanin_neg[lo]:
                    if kind == KIND_EXPR:
                        new = bool(payloads[i](host))
                    else:
                        payloads[i](host)
                        new = True
                    hot.add(i)
                else:
                    new = False
                    hot.discard(i)
            values[i] = new
            dirty_order.append(i)
            if new != old:
                latches = latch_of_wire.get(i)
                if latches is not None:
                    pending_latches.append((i, latches))

    def _latch(
        self,
        pending_latches: List[Tuple[int, Tuple[Tuple[int, bool, int], ...]]],
    ) -> None:
        # Latch only the registers whose input wire was re-evaluated; all
        # other wires kept their value, so their registers keep their
        # state.  Deferred past the evaluation loop so a payload
        # exception cannot leave the register file half-latched.
        values = self.values
        state = self.state
        dirty_regs: List[int] = []
        for wire, latches in pending_latches:
            wire_value = bool(values[wire])
            for slot, neg, reg_id in latches:
                new_state = wire_value ^ neg
                if state[slot] != new_state:
                    state[slot] = new_state
                    dirty_regs.append(reg_id)
        self._dirty_regs = dirty_regs
