"""Levelized reaction backend: straight-line plan execution.

:class:`LevelizedScheduler` is a drop-in replacement for the worklist
:class:`~repro.runtime.scheduler.Scheduler` (same ``values`` / ``state``
/ ``react`` / ``clear_state`` surface, so the reactive machine and the
host payloads cannot tell them apart).  Each reaction calls the plan's
compiled straight-line function, which evaluates every net exactly once
in level order — no queue, no ternary ⊥ bookkeeping, no per-reaction
allocation (the values buffer is recycled with a slice copy).

Cyclic components the levelization could not sort (constructive-but-
cyclic programs) run as embedded *relaxation blocks*: a local ternary
fixpoint over just those nets, walked over the plan's CSR adjacency
arrays.  Because the constructive least fixpoint is unique and both
backends respect the same data-dependency edges, a reaction observes the
identical signal trace — and the identical
:class:`~repro.errors.CausalityError` — whichever backend runs it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import CausalityError
from repro.compiler.netlist import ACTION, AND, EXPR, OR, Net
from repro.compiler.plan import EvalPlan

UNKNOWN = None


class LevelizedScheduler:
    """Plan-based propagation engine for one circuit (one machine)."""

    def __init__(self, plan: EvalPlan, host: Any):
        self.plan = plan
        self.circuit = plan.circuit
        self.host = host
        n = len(plan.circuit.nets)

        #: per-reaction net values; reused in place every reaction
        self.values: List[Optional[bool]] = [UNKNOWN] * n
        self._blank: Tuple[Optional[bool], ...] = (UNKNOWN,) * n
        #: register state (the sequential memory of the machine)
        self.state: List[bool] = [net.init for net in plan.registers]
        self._registers = plan.registers
        self._blocks: Tuple[Callable[[], bool], ...] = tuple(
            self._make_block(members, riders)
            for members, riders in zip(plan.blocks, plan.block_riders)
        )

    # ------------------------------------------------------------------

    def value(self, net: Net) -> Optional[bool]:
        return self.values[net.id]

    def react(self, input_values: Dict[int, bool]) -> None:
        """Run one reaction (same contract as the worklist scheduler)."""
        values = self.values
        values[:] = self._blank
        ok = self.plan.fn(
            values,
            self.state,
            self.plan.payloads,
            self.host,
            input_values.get,
            self._blocks,
        )
        if not ok:
            self._diverge()

    def clear_state(self) -> None:
        """Reset all registers to their boot values (machine reset)."""
        self.state[:] = [net.init for net in self._registers]

    # ------------------------------------------------------------------
    # ternary relaxation (cyclic blocks and the divergence error path)
    # ------------------------------------------------------------------

    def _relax_pass(self, net_ids: Iterable[int]) -> bool:
        """One monotone sweep of the ternary least-fixpoint rules over the
        still-unknown nets in ``net_ids``; True when something resolved.

        Matches the worklist semantics net for net: OR resolves to 1 on
        any true fanin and to 0 only when all fanins are 0 (dually AND);
        EXPR/ACTION payloads fire exactly once, after their enable is
        true and every data dependency is resolved.
        """
        plan = self.plan
        values = self.values
        nets = self.circuit.nets
        fanin_index = plan.fanin_index
        fanin_src = plan.fanin_src
        fanin_neg = plan.fanin_neg
        dep_index = plan.dep_index
        dep_ids = plan.dep_ids
        payloads = plan.payloads
        changed = False
        for net_id in net_ids:
            if values[net_id] is not UNKNOWN:
                continue
            kind = nets[net_id].kind
            lo, hi = fanin_index[net_id], fanin_index[net_id + 1]
            if kind == OR or kind == AND:
                want = kind == OR  # the absorbing fanin value
                result: Optional[bool] = not want
                for j in range(lo, hi):
                    value = values[fanin_src[j]]
                    if value is UNKNOWN:
                        if result is not want:
                            result = UNKNOWN
                    elif (value ^ bool(fanin_neg[j])) is want:
                        result = want
                        break
                if result is not UNKNOWN:
                    values[net_id] = result
                    changed = True
            elif kind == EXPR or kind == ACTION:
                enable = values[fanin_src[lo]]
                if enable is UNKNOWN:
                    continue
                if not (enable ^ bool(fanin_neg[lo])):
                    values[net_id] = False
                    changed = True
                    continue
                if any(
                    values[dep_ids[j]] is UNKNOWN
                    for j in range(dep_index[net_id], dep_index[net_id + 1])
                ):
                    continue
                result = payloads[net_id](self.host)
                values[net_id] = bool(result) if kind == EXPR else True
                changed = True
            # REG / INPUT are level-0 sources: always already resolved.
        return changed

    def _make_block(
        self, members: Tuple[int, ...], riders: Tuple[int, ...]
    ) -> Callable[[], bool]:
        """A runner relaxing one cyclic component to its local fixpoint.

        ``riders`` (acyclic payload nets enabled from inside the block)
        join the sweep so their side effects interleave with the block's
        own payloads in net-id order, exactly as the worklist fires a
        wire's fanout in creation order.  They do not gate convergence: a
        rider left unknown here (e.g. a data dependency evaluated after
        this block) is finished by its guarded straight-line statement.
        """
        values = self.values
        sweep = tuple(sorted(members + riders))

        def run() -> bool:
            while self._relax_pass(sweep):
                pass
            return all(values[net_id] is not UNKNOWN for net_id in members)

        return run

    def _diverge(self) -> None:
        """A block failed to converge: finish the global least fixpoint so
        the unresolved set — and therefore the reported error — is
        identical to the worklist scheduler's, then raise."""
        all_ids = range(len(self.circuit.nets))
        while self._relax_pass(all_ids):
            pass
        values = self.values
        unresolved = [net for net in self.circuit.nets if values[net.id] is UNKNOWN]
        raise CausalityError(
            f"synchronous deadlock in {self.circuit.name}: the reaction "
            f"left {len(unresolved)} net(s) undefined (causality cycle)",
            [net.describe() for net in unresolved[:12]],
        )
