"""The reactive machine (paper §2.2.1 and §5): the JavaScript-facing — here
Python-facing — wrapper around the compiled circuit.

Typical use::

    from repro import ReactiveMachine
    from repro.syntax import parse_module

    M = ReactiveMachine(parse_module(SOURCE))
    result = M.react({"name": "alice", "passwd": "secret"})
    if result["enableLogin"]:
        ...
    print(M.connState.nowval)

Each :meth:`react` call is one synchronous reaction: atomic, deterministic,
and linear-time in the circuit size.  Input signals are passed as a dict
(presence implied by the key, value attached when meaningful); output
signal statuses and values are returned and also exposed as attributes.

Asynchronous integration: ``async`` bodies receive an
:class:`~repro.runtime.execblock.ExecHandle` bound to ``this``; its
``notify(v)`` completes the async (emitting the completion signal at the
next reaction) and ``react(inputs)`` queues a machine reaction — both safe
to call from host callbacks.  Reactions requested *during* a reaction are
deferred and run immediately after it, preserving atomicity.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro.errors import (
    MachineError,
    ReactionBudgetExceeded,
    SignalError,
    SnapshotError,
)
from repro.lang import ast as A
from repro.lang import expr as E
from repro.compiler.compile import CompiledModule, CompileOptions, compile_cached
from repro.runtime.execblock import ExecFailure, ExecHandle, ExecState
from repro.runtime.fastsched import LevelizedScheduler, SparseScheduler
from repro.runtime.ingress import Mailbox
from repro.runtime.journal import JournalEntry
from repro.runtime.scheduler import Scheduler
from repro.runtime.signal import RuntimeSignal, SignalView

BACKENDS = ("auto", "sparse", "levelized", "worklist")

#: the ``reaction_budget="auto"`` deadline, in full-sweep equivalents:
#: generous enough that no legitimate instant (even a bailed-out sparse
#: reaction plus a long-but-finite deferred chain) comes near it, tight
#: enough that a runaway deferred-reaction loop aborts after a bounded
#: amount of work instead of hanging the host loop.
AUTO_BUDGET_SWEEPS = 64

#: version tag of the :meth:`ReactiveMachine.snapshot` payload layout
SNAPSHOT_FORMAT = 1


def snapshot_checksum(payload: Mapping) -> str:
    """Content checksum of a snapshot payload: sha256 over the canonical
    JSON rendering of everything except the ``checksum`` field itself.

    Computed over the JSON form (``sort_keys``, tuples collapse to
    lists, non-JSON values render through ``repr``), so the checksum is
    stable across a JSON round-trip to disk or over a pipe — the
    transports snapshots actually cross."""
    body = {key: value for key, value in payload.items() if key != "checksum"}
    data = json.dumps(body, sort_keys=True, default=repr)
    return hashlib.sha256(data.encode("utf-8")).hexdigest()

#: Below this circuit size the compiled full sweep is cheaper than the
#: sparse mode's per-reaction bookkeeping (heap, dirty sets, incremental
#: statuses), so ``auto`` keeps small machines on the levelized backend.
#: Measured crossover on steady-state Skini scores is ~250 nets.
SPARSE_MIN_NETS = 256


class ReactionResult(Mapping):
    """The outcome of one reaction: a mapping of the *present* output
    signals to their values, plus machine status flags."""

    def __init__(
        self,
        emitted: Dict[str, Any],
        statuses: Union[Dict[str, bool], Callable[[], Dict[str, bool]]],
        terminated: bool,
        paused: bool,
    ):
        self._emitted = emitted
        # Either the statuses dict itself, or a zero-arg factory building
        # it on first access — the sparse backend defers the O(interface)
        # dict so a steady-state reaction that nobody inspects stays
        # proportional to activity, not interface size.
        self._statuses = statuses
        self.terminated = terminated
        self.paused = paused

    @property
    def statuses(self) -> Dict[str, bool]:
        if callable(self._statuses):
            self._statuses = self._statuses()
        return self._statuses

    def __getitem__(self, name: str) -> Any:
        return self._emitted[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._emitted)

    def __len__(self) -> int:
        return len(self._emitted)

    def present(self, name: str) -> bool:
        return name in self._emitted

    def __repr__(self) -> str:
        flags = " terminated" if self.terminated else ""
        return f"ReactionResult({self._emitted!r}{flags})"


class _MachineEnv(E.EvalEnv):
    """Evaluation environment for compiled expressions: signal accesses
    resolve through a lexical-scope snapshot; free identifiers resolve in
    the machine frame, then in the host globals."""

    __slots__ = ("_machine", "_scope")

    def __init__(self, machine: "ReactiveMachine", scope: Dict[str, int]):
        self._machine = machine
        self._scope = scope

    def _signal(self, name: str) -> RuntimeSignal:
        try:
            return self._machine._signals[self._scope[name]]
        except KeyError:
            raise SignalError(f"signal {name!r} not in scope") from None

    def signal_now(self, name: str) -> bool:
        signal = self._signal(name)
        if self._machine._reacting:
            info = self._machine.compiled.circuit.signals[signal.slot]
            status = self._machine._scheduler.values[info.status_net.id]
            if status is None:
                raise SignalError(
                    f"status of {name!r} read before it was resolved "
                    "(missing data dependency)"
                )
            return bool(status)
        return signal.now

    def signal_pre(self, name: str) -> bool:
        return self._signal(name).pre

    def signal_nowval(self, name: str) -> Any:
        return self._signal(name).nowval

    def signal_preval(self, name: str) -> Any:
        return self._signal(name).preval

    def signal_name(self, name: str) -> str:
        return self._signal(name).bound_name

    def lookup(self, name: str) -> Any:
        frame = self._machine.frame
        if name in frame:
            return frame[name]
        host = self._machine.host_globals
        if name in host:
            return host[name]
        raise KeyError(name)

    def assign(self, name: str, value: Any) -> None:
        self._machine.frame[name] = value


ModuleLike = Union[A.Module, CompiledModule]


class ReactiveMachine:
    """A compiled HipHop program ready to react."""

    def __init__(
        self,
        module: ModuleLike,
        modules: Optional[A.ModuleTable] = None,
        options: Optional[CompileOptions] = None,
        host_globals: Optional[Dict[str, Any]] = None,
        loop: Optional[Any] = None,
        on_exec_error: Union[str, Callable[[ExecFailure], None]] = "raise",
        backend: str = "auto",
        reaction_budget: Union[None, int, str] = None,
    ):
        if isinstance(module, CompiledModule):
            self.compiled = module
        else:
            # Raw modules go through the structural compile cache: building
            # N machines of one module compiles (and plans) once.
            self.compiled = compile_cached(module, modules, options)
        self.module = self.compiled.module
        self.name = self.module.name
        self.host_globals: Dict[str, Any] = dict(host_globals or {})
        #: host variable frame (module vars, `let` bindings)
        self.frame: Dict[str, Any] = {}
        self._loop = loop

        circuit = self.compiled.circuit
        #: which reaction backend runs this machine ("sparse", "levelized"
        #: or "worklist"); `backend="auto"` picks sparse dirty-cone
        #: evaluation for pure straight-line plans, the levelized full
        #: sweep while straight-line statements dominate, and the worklist
        #: otherwise
        self.backend = self._select_backend(backend)
        if self.backend == "sparse":
            self._scheduler = SparseScheduler(
                self.compiled.evaluation_plan(), self
            )
        elif self.backend == "levelized":
            self._scheduler = LevelizedScheduler(
                self.compiled.evaluation_plan(), self
            )
        else:
            self._scheduler = Scheduler(circuit, self)
        self._sparse = self.backend == "sparse"
        # Incremental signal bookkeeping (sparse backend): the slots whose
        # RuntimeSignal is not inert (needs begin_instant), the slots
        # currently present, and the slots written during this reaction.
        self._active_slots: set = set()
        self._present_slots: set = set()
        self._touched_slots: set = set()
        (
            self._status_slot_of_net,
            self._iface_slots,
            self._out_name_of_slot,
        ) = self._signal_maps()
        self._signals: List[RuntimeSignal] = [
            RuntimeSignal(
                info.slot,
                info.name,
                info.bound_name,
                info.direction,
                self._resolve_combine(info.combine, info.name),
            )
            for info in circuit.signals
        ]
        self._counters: List[int] = [0] * len(circuit.counters)
        self._execs: List[ExecState] = [ExecState(i) for i in range(len(circuit.execs))]
        self._listeners: Dict[str, List[Callable[[Any], None]]] = {}
        self._reacting = False
        self._deferred: List[Dict[str, Any]] = []
        self.terminated = False
        self.reaction_count = 0
        #: attached write-ahead journal (see :meth:`attach_journal`)
        self._journal: Optional[Any] = None
        #: True while :meth:`replay` re-derives state from the journal:
        #: journaling, listeners and exec host actions are suppressed so
        #: recovery never duplicates an already-performed host effect
        self._replaying = False

        #: what to do with exceptions raised inside exec host actions:
        #: ``"raise"`` (default: record, then propagate), ``"signal:<name>"``
        #: (record and queue a reaction emitting input ``<name>`` with the
        #: error), or a callable invoked with the :class:`ExecFailure`.
        self.on_exec_error = on_exec_error
        self._failed_reactions = 0
        self._exec_failures = 0
        self._breakers: Dict[str, Any] = {}

        #: default reaction deadline, in net evaluations per :meth:`react`
        #: call (covering the instant *and* any deferred sub-instants it
        #: queues): ``None`` = unlimited, ``"auto"`` = a generous multiple
        #: of the circuit's full-sweep cost, or an explicit positive int.
        self.reaction_budget = reaction_budget
        self._budget_left: Optional[int] = None
        self._budget_aborts = 0
        #: attached bounded ingress mailbox (see :meth:`attach_mailbox`)
        self._mailbox: Optional[Mailbox] = None
        #: the lockstep fleet engine this machine is word-resident in,
        #: and its bit slot there (see :mod:`repro.runtime.lockstep`);
        #: while resident, the scalar scheduler's register state is stale
        #: and any scalar access must demote first (:meth:`_ensure_scalar`)
        self._lockstep: Optional[Any] = None
        self._lockstep_bit = -1

        self._boot_values()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _select_backend(self, backend: str) -> str:
        if backend not in BACKENDS:
            raise MachineError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if backend != "auto":
            return backend
        plan = self.compiled.evaluation_plan()
        if plan.sparse_eligible and len(plan.circuit.nets) >= SPARSE_MIN_NETS:
            return "sparse"
        return "levelized" if plan.auto_eligible else "worklist"

    def _signal_maps(self) -> tuple:
        """Shared (per compiled module) signal lookup tables: status-net
        id → slot, interface (name, slot) pairs, and slot → output name
        for the out/inout interface signals."""
        maps = self.compiled._signal_maps
        if maps is None:
            circuit = self.compiled.circuit
            status_slot_of_net = {
                info.status_net.id: info.slot for info in circuit.signals
            }
            iface_slots = tuple(
                (name, info.slot) for name, info in circuit.interface.items()
            )
            out_name_of_slot = {
                info.slot: name
                for name, info in circuit.interface.items()
                if info.direction in ("out", "inout")
            }
            maps = (status_slot_of_net, iface_slots, out_name_of_slot)
            self.compiled._signal_maps = maps
        return maps

    def _resolve_combine(self, combine: Any, signal_name: str) -> Any:
        """Combine functions declared textually (``combine fname``) resolve
        against the host globals at machine construction."""
        if combine is None or callable(combine):
            return combine
        fn = self.host_globals.get(combine)
        if fn is None or not callable(fn):
            raise MachineError(
                f"signal {signal_name!r} declares combine {combine!r}, which is "
                "not a callable in the machine's host globals"
            )
        return fn

    def _boot_values(self) -> None:
        env = self.env_for({})
        for name, init in self.compiled.circuit.frame_vars:
            # vars without an initializer stay unbound so lookups can fall
            # through to the host globals (or to a later instance Assign)
            if name not in self.frame and init is not None:
                self.frame[name] = init.eval(env)
        for info in self.compiled.circuit.signals:
            if info.init is not None:
                value = info.init.eval(env)
                signal = self._signals[info.slot]
                signal.nowval = value
                signal.preval = value

    def attach_loop(self, loop: Any) -> None:
        """Attach a host event loop providing ``call_soon(fn)``; queued
        reactions (from ``this.react`` / ``notify``) are scheduled on it."""
        self._loop = loop

    def _ensure_scalar(self) -> None:
        """Leave the lockstep word before any scalar access: while a
        machine is word-resident its scheduler's register state lives in
        the fleet's packed bitplanes, so direct reacts, snapshots,
        restores, resets, replays and journal/mailbox attachment first
        demote it (exporting the packed bits back).  No-op otherwise, and
        mid-payload (the word engine owns the instant)."""
        if self._lockstep is not None and not self._reacting:
            self._lockstep.demote(self, "external")

    # ------------------------------------------------------------------
    # the public reaction API
    # ------------------------------------------------------------------

    def react(
        self,
        inputs: Optional[Dict[str, Any]] = None,
        budget: Union[None, int, str] = None,
    ) -> ReactionResult:
        """Run one atomic reaction with the given input signals present.

        ``inputs`` maps input-signal names to their emitted values (use
        ``True`` for pure presence).  Returns the present outputs.

        ``budget`` (default: the machine's :attr:`reaction_budget`) is a
        reaction deadline in net evaluations, spent across this instant
        *and* every deferred sub-instant it queues; exhausting it aborts
        the runaway instant with a recoverable
        :class:`~repro.errors.ReactionBudgetExceeded`.
        """
        if self._reacting:
            raise MachineError(
                "reentrant react(): reactions are atomic; use this.react() "
                "from async bodies to queue one"
            )
        self._ensure_scalar()
        limit = self._resolve_budget(budget)
        self._budget_left = limit
        try:
            result = self._react_once(inputs or {})
            # Serve reactions queued by notify()/this.react() during this one.
            while self._deferred:
                if self._budget_left is not None and self._budget_left <= 0:
                    raise ReactionBudgetExceeded(
                        f"machine {self.name!r} exhausted its {limit}-net "
                        f"reaction budget with {len(self._deferred)} deferred "
                        f"reaction(s) still queued (runaway instant)",
                        budget=limit,
                        evaluated=limit - self._budget_left,
                    )
                self._react_once(self._deferred.pop(0))
        except Exception as err:
            self._failed_reactions += 1
            if isinstance(err, ReactionBudgetExceeded):
                self._budget_aborts += 1
            self._deferred.clear()
            raise
        finally:
            self._budget_left = None
        return result

    def _resolve_budget(self, budget: Union[None, int, str]) -> Optional[int]:
        if budget is None:
            budget = self.reaction_budget
        if budget is None:
            return None
        if budget == "auto":
            return AUTO_BUDGET_SWEEPS * len(self.compiled.circuit.nets)
        limit = int(budget)
        if limit <= 0:
            raise MachineError(
                f"reaction budget must be a positive net-evaluation count, "
                f"got {budget!r}"
            )
        return limit

    # ------------------------------------------------------------------
    # bounded ingress (see repro.runtime.ingress)
    # ------------------------------------------------------------------

    def attach_mailbox(
        self,
        mailbox: Optional[Mailbox] = None,
        capacity: int = 64,
        policy: str = "coalesce",
    ) -> Mailbox:
        """Attach a bounded ingress :class:`~repro.runtime.ingress.Mailbox`
        in front of this machine (default: one built by
        :meth:`Mailbox.for_machine`, whose coalescing respects the
        machine's declared combine functions).  Returns the mailbox."""
        self._ensure_scalar()
        if mailbox is None:
            mailbox = Mailbox.for_machine(self, capacity=capacity, policy=policy)
        self._mailbox = mailbox
        return mailbox

    @property
    def mailbox(self) -> Optional[Mailbox]:
        return self._mailbox

    def offer(self, inputs: Optional[Dict[str, Any]] = None) -> str:
        """Offer an input map to the attached mailbox instead of reacting
        immediately; returns the recorded admission decision.  Drain with
        :meth:`pump`.  Requires :meth:`attach_mailbox` first."""
        if self._mailbox is None:
            raise MachineError(
                f"machine {self.name!r} has no mailbox; call attach_mailbox() "
                "before offer()"
            )
        return self._mailbox.offer(inputs or {})

    def pump(
        self,
        max_instants: Optional[int] = None,
        budget: Union[None, int, str] = None,
    ) -> List[ReactionResult]:
        """React through the pending mailbox entries, oldest first, up to
        ``max_instants`` (default: all pending).  Returns the results, one
        per admitted instant."""
        if self._mailbox is None:
            raise MachineError(
                f"machine {self.name!r} has no mailbox; call attach_mailbox() "
                "before pump()"
            )
        results: List[ReactionResult] = []
        remaining = max_instants if max_instants is not None else self._mailbox.pending
        while remaining > 0 and self._mailbox.pending:
            results.append(self.react(self._mailbox.take(), budget=budget))
            remaining -= 1
        return results

    def _react_once(self, inputs: Dict[str, Any]) -> ReactionResult:
        # Write-ahead journaling: record the instant's inputs *and* the
        # exec completions it is about to consume before any state moves,
        # so a crash at any later point replays deterministically.  The
        # commit record after the reaction marks the instant's host
        # effects as delivered; a trailing uncommitted entry tells
        # recovery to redo that instant *live* (effects never happened)
        # rather than replay it silently.
        journal = self._journal if not self._replaying else None
        seq = self.reaction_count
        if journal is not None:
            journal.append(
                JournalEntry(
                    seq,
                    inputs,
                    [
                        (state.slot, state.pending_value)
                        for state in self._execs
                        if state.running and state.pending
                    ],
                )
            )
        # Reaction deadline: the scheduler charges net evaluations against
        # the remaining budget of this react() call; whatever one
        # (sub-)instant spends is deducted before the next one runs.
        self._scheduler.budget = self._budget_left
        try:
            if self._sparse:
                result = self._react_once_sparse(inputs)
            else:
                result = self._react_once_classic(inputs)
        finally:
            if self._budget_left is not None:
                self._budget_left -= self._scheduler.last_evaluated
            self._scheduler.budget = None
        if journal is not None:
            journal.commit(seq)
        return result

    def _react_once_classic(self, inputs: Dict[str, Any]) -> ReactionResult:
        circuit = self.compiled.circuit
        input_values: Dict[int, bool] = {}

        for signal in self._signals:
            signal.begin_instant()

        for name, value in inputs.items():
            info = circuit.interface.get(name)
            if info is None or info.input_net is None:
                valid = sorted(
                    k for k, v in circuit.interface.items() if v.input_net is not None
                )
                raise MachineError(
                    f"unknown input signal {name!r}; machine inputs: {valid}"
                )
            input_values[info.input_net.id] = True
            self._signals[info.slot].write(value)

        for state in self._execs:
            if state.running and state.pending:
                info = circuit.execs[state.slot]
                input_values[info.done_net.id] = True

        self._reacting = True
        try:
            self._scheduler.react(input_values)
        finally:
            self._reacting = False

        # Post-reaction bookkeeping: statuses and outputs.
        values = self._scheduler.values
        emitted: Dict[str, Any] = {}
        statuses: Dict[str, bool] = {}
        for info in circuit.signals:
            present = bool(values[info.status_net.id])
            self._signals[info.slot].now = present
        for name, info in circuit.interface.items():
            signal = self._signals[info.slot]
            statuses[name] = signal.now
            if info.direction in ("out", "inout") and signal.now:
                emitted[name] = signal.nowval

        self.reaction_count += 1
        if values[circuit.k0_net.id]:
            self.terminated = True
        result = ReactionResult(
            emitted, statuses, self.terminated, bool(values[circuit.k1_net.id])
        )

        self._notify_listeners(emitted)
        return result

    def _react_once_sparse(self, inputs: Dict[str, Any]) -> ReactionResult:
        """The sparse backend's reaction: identical semantics to
        :meth:`_react_once`, but every per-signal step walks only the
        *active* signals (written, present, or carrying rolled-over
        state) rather than the whole interface, so a steady-state
        reaction costs O(activity) end to end.
        """
        circuit = self.compiled.circuit
        signals = self._signals
        input_values: Dict[int, bool] = {}
        touched = self._touched_slots
        touched.clear()

        # begin_instant is a no-op on an inert signal (now/pre False, no
        # emissions, nowval already rolled into preval), and every
        # non-inert signal is in the active set by construction.
        for slot in self._active_slots:
            signals[slot].begin_instant()

        for name, value in inputs.items():
            info = circuit.interface.get(name)
            if info is None or info.input_net is None:
                valid = sorted(
                    k for k, v in circuit.interface.items() if v.input_net is not None
                )
                raise MachineError(
                    f"unknown input signal {name!r}; machine inputs: {valid}"
                )
            input_values[info.input_net.id] = True
            signals[info.slot].write(value)
            touched.add(info.slot)
            # Active immediately, not just at the post-sweep refresh: if
            # this reaction aborts (a later input name is unknown, a
            # payload raises), the next begin_instant must still reset
            # this signal's instant state, exactly like the full-sweep
            # backends do for every slot.
            self._active_slots.add(info.slot)

        for state in self._execs:
            if state.running and state.pending:
                info = circuit.execs[state.slot]
                input_values[info.done_net.id] = True

        self._reacting = True
        try:
            self._scheduler.react(input_values)
        finally:
            self._reacting = False

        values = self._scheduler.values
        dirty = self._scheduler.last_dirty
        if dirty is None:
            # Full sweep (first reaction, large cone, or fallback plan):
            # classic post-processing, rebuilding the tracking sets.
            return self._finish_full_sweep(values)

        # Statuses: only signals whose status net was re-evaluated can
        # have changed; everything else keeps last reaction's presence.
        status_slot_of_net = self._status_slot_of_net
        present = self._present_slots
        updated: set = set()
        for net_id in dirty:
            slot = status_slot_of_net.get(net_id)
            if slot is not None:
                updated.add(slot)
                if values[net_id]:
                    signals[slot].now = True
                    present.add(slot)
                else:
                    signals[slot].now = False
                    present.discard(slot)
        for slot in present:
            # Sustained signals: present before, status net untouched this
            # reaction (so still present), but begin_instant cleared `now`.
            if slot not in updated:
                signals[slot].now = True

        # Refresh the active set: only previously-active, written, or
        # status-updated slots can have become (or stayed) non-inert.
        candidates = self._active_slots
        candidates |= touched
        candidates |= updated
        active: set = set()
        for slot in candidates:
            signal = signals[slot]
            if (
                signal.now
                or signal.pre
                or signal.emitted
                or signal.nowval is not signal.preval
            ):
                active.add(slot)
        self._active_slots = active

        emitted: Dict[str, Any] = {}
        out_name_of_slot = self._out_name_of_slot
        for slot in sorted(present):
            name = out_name_of_slot.get(slot)
            if name is not None:
                emitted[name] = signals[slot].nowval

        self.reaction_count += 1
        if values[circuit.k0_net.id]:
            self.terminated = True
        snapshot = frozenset(present)
        iface_slots = self._iface_slots
        result = ReactionResult(
            emitted,
            lambda: {name: (slot in snapshot) for name, slot in iface_slots},
            self.terminated,
            bool(values[circuit.k1_net.id]),
        )

        self._notify_listeners(emitted)
        return result

    def _finish_full_sweep(self, values: List[Optional[bool]]) -> ReactionResult:
        """Post-reaction bookkeeping after a full sweep on the sparse
        backend: same as the classic path, plus a rebuild of the
        present/active tracking sets from scratch."""
        circuit = self.compiled.circuit
        signals = self._signals
        present: set = set()
        active: set = set()
        for info in circuit.signals:
            slot = info.slot
            signal = signals[slot]
            signal.now = now = bool(values[info.status_net.id])
            if now:
                present.add(slot)
            if (
                now
                or signal.pre
                or signal.emitted
                or signal.nowval is not signal.preval
            ):
                active.add(slot)
        self._present_slots = present
        self._active_slots = active

        emitted: Dict[str, Any] = {}
        statuses: Dict[str, bool] = {}
        for name, info in circuit.interface.items():
            signal = signals[info.slot]
            statuses[name] = signal.now
            if info.direction in ("out", "inout") and signal.now:
                emitted[name] = signal.nowval

        self.reaction_count += 1
        if values[circuit.k0_net.id]:
            self.terminated = True
        result = ReactionResult(
            emitted, statuses, self.terminated, bool(values[circuit.k1_net.id])
        )
        self._notify_listeners(emitted)
        return result

    def _notify_listeners(self, emitted: Dict[str, Any]) -> None:
        """Deliver output emissions to registered listeners — except
        during :meth:`replay`, when the original run already delivered
        them (exactly-once host effects across a recovery)."""
        if self._replaying:
            return
        for name, value in emitted.items():
            for listener in self._listeners.get(name, ()):
                listener(value)

    def queue_react(self, inputs: Dict[str, Any]) -> None:
        """Queue a reaction (callable from anywhere, including from inside
        async bodies during a reaction)."""
        if self._replaying:
            # Replay re-derives state only; queued sub-instants were
            # journaled individually by the original run.
            return
        if self._reacting:
            self._deferred.append(inputs)
        elif self._loop is not None:
            self._loop.call_soon(lambda: self.react(inputs))
        else:
            self.react(inputs)

    def reset(self) -> None:
        """Return the machine to its boot state (registers, signals —
        including per-signal ``emitted`` counters — counters, execs);
        host frame variables are re-initialized.

        The post-reset health contract (see :attr:`health`): zero
        reactions, zero failures, no exec errors, no queued reactions,
        and every breaker registered via :meth:`register_breaker`
        re-armed to its closed state — a reset machine is never born
        degraded by its previous life.
        """
        self._ensure_scalar()
        self._scheduler.clear_state()
        for state in self._execs:
            state.stop()
            state.last_error = None
            state.scope = None
        self._counters = [0] * len(self._counters)
        self._failed_reactions = 0
        self._exec_failures = 0
        self._budget_aborts = 0
        for signal in self._signals:
            signal.now = signal.pre = False
            signal.nowval = signal.preval = None
            signal.emitted = 0
        self._active_slots = set()
        self._present_slots = set()
        self._touched_slots = set()
        # Reactions queued during a failed or interrupted instant must not
        # replay into the freshly reset machine.
        self._deferred.clear()
        for breaker in self._breakers.values():
            reset = getattr(breaker, "reset", None)
            if callable(reset):
                reset()
        self.frame = {}
        self.terminated = False
        self.reaction_count = 0
        self._boot_values()

    # ------------------------------------------------------------------
    # durability: snapshot / restore / journal replay
    # ------------------------------------------------------------------

    def attach_journal(self, journal: Any) -> Any:
        """Attach a write-ahead input journal (see
        :mod:`repro.runtime.journal`): every subsequent instant appends a
        :class:`~repro.runtime.journal.JournalEntry` *before* reacting.
        Returns the journal.  Pass ``None`` to detach."""
        self._ensure_scalar()
        self._journal = journal
        return journal

    @property
    def journal(self) -> Optional[Any]:
        return self._journal

    def snapshot(self) -> Dict[str, Any]:
        """Serialize exactly the between-instant state as a plain,
        JSON-able dict.

        The payload holds the register values, per-signal
        ``now``/``pre``/``nowval``/``preval``/``emitted``, ``await count``
        counters, exec-slot state (running/generation/pending/scope/
        last_error summary), the host ``frame``, ``terminated`` and
        ``reaction_count`` — nothing else, because the synchronous model
        guarantees nothing else persists across instants.  It is stamped
        with the structural compile fingerprint so :meth:`restore`
        refuses payloads from structurally different programs.

        Snapshots are backend-portable: register order is identical
        across the worklist, levelized and sparse backends, and the
        sparse backend's dirty-set bookkeeping is deliberately *not*
        serialized (it is reconstructed by a full sweep on the first
        post-restore reaction).
        """
        if self._reacting:
            raise SnapshotError(
                "cannot snapshot mid-reaction: snapshots are taken at "
                "instant boundaries"
            )
        self._ensure_scalar()
        execs: List[Dict[str, Any]] = []
        for state in self._execs:
            failure = state.last_error
            execs.append(
                {
                    "running": state.running,
                    "generation": state.generation,
                    "pending": state.pending,
                    "pending_value": state.pending_value,
                    "scope": dict(state.scope) if state.scope is not None else None,
                    "last_error": (
                        {
                            "phase": failure.phase,
                            "reaction": failure.reaction,
                            "error": repr(failure.error),
                        }
                        if failure is not None
                        else None
                    ),
                }
            )
        snap = {
            "format": SNAPSHOT_FORMAT,
            "fingerprint": self.compiled.fingerprint,
            "module": self.name,
            "registers": [1 if value else 0 for value in self._scheduler.state],
            "signals": [
                [s.now, s.pre, s.nowval, s.preval, s.emitted] for s in self._signals
            ],
            "counters": list(self._counters),
            "execs": execs,
            "frame": dict(self.frame),
            "terminated": self.terminated,
            "reaction_count": self.reaction_count,
        }
        snap["checksum"] = snapshot_checksum(snap)
        return snap

    def state_digest(self) -> str:
        """A sha256 over the canonical JSON rendering of
        :meth:`snapshot` — a compact, process-portable equality check for
        between-instant state.  Two machines of the same compiled module
        have equal digests iff their observable state is identical, which
        is how the shard layer asserts a migrated or crash-recovered
        machine landed exactly where the original was."""
        payload = json.dumps(self.snapshot(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def restore(self, snap: Mapping) -> None:
        """Overwrite this machine's between-instant state with a
        :meth:`snapshot` payload.

        Refuses (with :class:`~repro.errors.SnapshotError`) payloads
        whose compile fingerprint does not match this machine's compiled
        module.  Any in-flight exec invocations are invalidated
        (kill-on-restore: their generations are bumped past the
        snapshot's, so stale ``notify`` calls are discarded); slots that
        were logically running keep their state and can have their host
        work re-issued with :meth:`restart_execs`.
        """
        if self._reacting:
            raise SnapshotError("cannot restore mid-reaction")
        self._ensure_scalar()
        if not isinstance(snap, Mapping):
            raise SnapshotError(f"snapshot payload must be a mapping, got {type(snap).__name__}")
        if snap.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unsupported snapshot format {snap.get('format')!r} "
                f"(this runtime writes format {SNAPSHOT_FORMAT})"
            )
        fingerprint = snap.get("fingerprint")
        if fingerprint != self.compiled.fingerprint:
            raise SnapshotError(
                f"snapshot fingerprint mismatch: payload was taken from "
                f"{snap.get('module')!r} with fingerprint {fingerprint!r}, "
                f"this machine is {self.name!r} with fingerprint "
                f"{self.compiled.fingerprint!r}"
            )
        recorded = snap.get("checksum")
        if recorded is not None:
            computed = snapshot_checksum(snap)
            if computed != recorded:
                raise SnapshotError(
                    f"snapshot checksum mismatch for {snap.get('module')!r}: "
                    f"payload recorded {recorded[:16]}..., content hashes to "
                    f"{computed[:16]}... — the snapshot is corrupt "
                    "(bit rot or a tampered field)"
                )
        registers = snap["registers"]
        signals = snap["signals"]
        counters = snap["counters"]
        execs = snap["execs"]
        if (
            len(signals) != len(self._signals)
            or len(counters) != len(self._counters)
            or len(execs) != len(self._execs)
        ):
            raise SnapshotError("snapshot state arity does not match this circuit")

        # clear_state() also flags the sparse backend for a full sweep on
        # the next reaction, which reconstructs its dirty-set/net-value
        # caches from the restored registers — that state is derived, not
        # serialized.
        self._scheduler.clear_state()
        state = self._scheduler.state
        if len(registers) != len(state):
            raise SnapshotError(
                f"snapshot has {len(registers)} registers, circuit has {len(state)}"
            )
        state[:] = [bool(value) for value in registers]

        for signal, (now, pre, nowval, preval, emitted) in zip(self._signals, signals):
            signal.now = bool(now)
            signal.pre = bool(pre)
            signal.nowval = nowval
            signal.preval = preval
            signal.emitted = int(emitted)

        self._counters = [int(value) for value in counters]

        for estate, esnap in zip(self._execs, execs):
            estate.running = bool(esnap["running"])
            # One past the snapshot generation: any handle that survived
            # from before the crash/restore is stale and its notify()s
            # are silently discarded (paper §2.2.4 applied to recovery).
            estate.generation = int(esnap["generation"]) + 1
            estate.pending = bool(esnap["pending"])
            estate.pending_value = esnap["pending_value"]
            scope = esnap.get("scope")
            estate.scope = dict(scope) if scope is not None else None
            estate.handle = None
            estate.started_live = False
            estate.last_error = None

        self.frame = dict(snap["frame"])
        self.terminated = bool(snap["terminated"])
        self.reaction_count = int(snap["reaction_count"])
        self._deferred.clear()

        # Rebuild the sparse backend's signal tracking sets from the
        # restored signal states (conservative: a slot is active iff it
        # needs begin_instant next reaction).
        present: set = set()
        active: set = set()
        for signal in self._signals:
            if signal.now:
                present.add(signal.slot)
            if (
                signal.now
                or signal.pre
                or signal.emitted
                or signal.nowval is not signal.preval
            ):
                active.add(signal.slot)
        self._present_slots = present
        self._active_slots = active
        self._touched_slots = set()

    def replay(self, entries: Any) -> List[ReactionResult]:
        """Deterministically re-run journaled instants against this
        machine's current state and return their results.

        During replay the machine re-derives state only: journaling,
        output listeners, exec host actions and queued reactions are all
        suppressed, so host effects already performed by the original
        run are never duplicated.  Entries must continue exactly at this
        machine's ``reaction_count`` (i.e. restore the matching snapshot
        first)."""
        if self._reacting:
            raise MachineError("cannot replay during a reaction")
        self._ensure_scalar()
        results: List[ReactionResult] = []
        self._replaying = True
        try:
            for entry in entries:
                if entry.seq != self.reaction_count:
                    raise SnapshotError(
                        f"journal entry seq {entry.seq} does not continue "
                        f"machine at reaction {self.reaction_count}"
                    )
                for slot, value in entry.execs:
                    estate = self._execs[slot]
                    if estate.running:
                        estate.pending = True
                        estate.pending_value = value
                results.append(self._react_once(dict(entry.inputs)))
        finally:
            self._replaying = False
            self._deferred.clear()
        return results

    def restart_execs(self) -> List[int]:
        """Re-issue host work for exec slots that are logically running
        but have no live invocation (the situation after :meth:`restore`):
        each gets a fresh generation/handle and its ``async`` body re-run.
        Slots whose completion is already pending are left alone — their
        value lands at the next reaction.  Returns the restarted slots."""
        restarted: List[int] = []
        for state in self._execs:
            if state.running and state.handle is None and not state.pending:
                info = self.compiled.circuit.execs[state.slot]
                handle = state.start(self, state.scope or {})
                state.started_live = True
                self._run_exec_action(info.stmt.start, handle, "start")
                restarted.append(state.slot)
        return restarted

    # ------------------------------------------------------------------
    # signal access (machine.connState.nowval, listeners)
    # ------------------------------------------------------------------

    def signal(self, name: str) -> SignalView:
        info = self.compiled.circuit.interface.get(name)
        if info is None:
            raise SignalError(f"no interface signal {name!r} on machine {self.name}")
        return SignalView(self._signals[info.slot])

    def __getattr__(self, name: str) -> Any:
        # Called only when normal lookup fails: expose interface signals.
        compiled = self.__dict__.get("compiled")
        signals = self.__dict__.get("_signals")
        if compiled is None or signals is None:
            raise AttributeError(name)
        info = compiled.circuit.interface.get(name)
        if info is None:
            raise AttributeError(name)
        return SignalView(signals[info.slot])

    def add_listener(self, name: str, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` whenever output ``name`` is emitted."""
        if name not in self.compiled.circuit.interface:
            raise SignalError(f"no interface signal {name!r}")
        self._listeners.setdefault(name, []).append(callback)

    def remove_listener(self, name: str, callback: Callable[[Any], None]) -> None:
        callbacks = self._listeners.get(name, [])
        if callback in callbacks:
            callbacks.remove(callback)

    # ------------------------------------------------------------------
    # payload host interface (called by compiled circuit payloads)
    # ------------------------------------------------------------------

    def env_for(self, scope: Dict[str, int]) -> _MachineEnv:
        return _MachineEnv(self, scope)

    def emit_value(self, slot: int, value: Any) -> None:
        self._signals[slot].write(value)
        self._touched_slots.add(slot)

    def init_signal(self, slot: int, value: Any) -> None:
        self._signals[slot].initialize(value)
        self._touched_slots.add(slot)

    def arm_counter(self, slot: int, value: int) -> None:
        self._counters[slot] = max(1, int(value))

    def tick_counter(self, slot: int) -> bool:
        self._counters[slot] -= 1
        return self._counters[slot] <= 0

    def exec_state(self, slot: int) -> ExecState:
        return self._execs[slot]

    def start_exec(self, slot: int, scope: Dict[str, int]) -> None:
        state = self._execs[slot]
        info = self.compiled.circuit.execs[slot]
        handle = state.start(self, scope)
        state.started_live = not self._replaying
        self._run_exec_action(info.stmt.start, handle, "start")

    def kill_exec(self, slot: int) -> None:
        state = self._execs[slot]
        if not state.running:
            return
        info = self.compiled.circuit.execs[slot]
        handle = state.handle
        live = state.started_live
        state.stop()
        # Kill cleanups pair with a live start: a handle rebuilt during
        # replay/restore owns no host resource, so there is nothing to
        # clean up (and its attribute bag is empty).
        if info.stmt.kill is not None and handle is not None and live:
            self._run_exec_action(info.stmt.kill, handle, "kill")

    def suspend_exec(self, slot: int) -> None:
        state = self._execs[slot]
        info = self.compiled.circuit.execs[slot]
        if (
            state.running
            and info.stmt.on_suspend is not None
            and state.handle
            and state.started_live
        ):
            self._run_exec_action(info.stmt.on_suspend, state.handle, "suspend")

    def resume_exec(self, slot: int) -> None:
        state = self._execs[slot]
        info = self.compiled.circuit.execs[slot]
        if (
            state.running
            and info.stmt.on_resume is not None
            and state.handle
            and state.started_live
        ):
            self._run_exec_action(info.stmt.on_resume, state.handle, "resume")

    def finish_exec(self, slot: int) -> None:
        """The completion instant: write the notified value into the
        completion signal (if any) and retire the invocation."""
        state = self._execs[slot]
        info = self.compiled.circuit.execs[slot]
        if info.signal is not None:
            self._signals[info.signal.slot].write(state.pending_value)
            self._touched_slots.add(info.signal.slot)
        state.stop()

    def notify_exec(self, slot: int, generation: int, value: Any) -> None:
        if self._replaying:
            # Completions consumed by the original run are re-injected
            # from the journal; a live callback firing during replay
            # belongs to a stale (pre-restore) invocation.
            return
        state = self._execs[slot]
        if not state.running or state.generation != generation:
            return  # stale invocation: silently discarded (paper §2.2.4)
        state.pending = True
        state.pending_value = value
        self.queue_react({})

    def _run_exec_action(self, action: Any, handle: ExecHandle, phase: str) -> None:
        """Run an exec host action under supervision: an exception is
        caught per-slot, recorded, and routed by ``on_exec_error`` instead
        of unconditionally crashing the reaction."""
        if self._replaying:
            # Host effects (service calls, timers, kill cleanups) already
            # happened in the original run; replay only rebuilds state.
            return
        try:
            if callable(action):
                action(handle)
                return
            env = E.ScopedEnv(handle.env, {"this": handle})
            for stmt in action:
                stmt.execute(env)
        except Exception as err:
            failure = ExecFailure(handle._slot, phase, err, self.reaction_count)
            self._execs[handle._slot].last_error = failure
            self._exec_failures += 1
            policy = self.on_exec_error
            if callable(policy):
                policy(failure)
            elif isinstance(policy, str) and policy.startswith("signal:"):
                name = policy[len("signal:"):]
                info = self.compiled.circuit.interface.get(name)
                if info is None or info.input_net is None:
                    raise MachineError(
                        f"on_exec_error policy names {name!r}, which is not an "
                        "input signal of this machine"
                    ) from err
                self.queue_react({name: err})
            else:
                raise

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def register_breaker(self, breaker: Any, name: Optional[str] = None) -> Any:
        """Expose a :class:`~repro.host.CircuitBreaker`'s state in this
        machine's :attr:`health` snapshot.  Returns the breaker."""
        self._breakers[name or getattr(breaker, "name", f"breaker{len(self._breakers)}")] = breaker
        return breaker

    @property
    def health(self) -> Dict[str, Any]:
        """A point-in-time health snapshot: reaction and failure counts,
        exec-slot errors, and the state of every registered breaker.

        Post-reset contract: immediately after :meth:`reset`,
        ``reactions``/``failed_reactions``/``exec_failures`` are zero,
        ``execs_running`` is zero, ``exec_errors`` is empty, and every
        registered breaker reports ``closed`` with zero consecutive
        failures (reset re-arms them) — the health of a freshly built
        machine."""
        exec_errors = [
            state.last_error for state in self._execs if state.last_error is not None
        ]
        return {
            "reactions": self.reaction_count,
            "failed_reactions": self._failed_reactions,
            "exec_failures": self._exec_failures,
            "budget_aborts": self._budget_aborts,
            "execs_running": sum(1 for state in self._execs if state.running),
            "exec_errors": exec_errors,
            "breakers": {name: b.snapshot() for name, b in self._breakers.items()},
        }

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return self.compiled.circuit.stats()

    def __repr__(self) -> str:
        return f"ReactiveMachine({self.name}, {len(self.compiled.circuit.nets)} nets)"
