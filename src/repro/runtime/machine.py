"""The reactive machine (paper §2.2.1 and §5): the JavaScript-facing — here
Python-facing — wrapper around the compiled circuit.

Typical use::

    from repro import ReactiveMachine
    from repro.syntax import parse_module

    M = ReactiveMachine(parse_module(SOURCE))
    result = M.react({"name": "alice", "passwd": "secret"})
    if result["enableLogin"]:
        ...
    print(M.connState.nowval)

Each :meth:`react` call is one synchronous reaction: atomic, deterministic,
and linear-time in the circuit size.  Input signals are passed as a dict
(presence implied by the key, value attached when meaningful); output
signal statuses and values are returned and also exposed as attributes.

Asynchronous integration: ``async`` bodies receive an
:class:`~repro.runtime.execblock.ExecHandle` bound to ``this``; its
``notify(v)`` completes the async (emitting the completion signal at the
next reaction) and ``react(inputs)`` queues a machine reaction — both safe
to call from host callbacks.  Reactions requested *during* a reaction are
deferred and run immediately after it, preserving atomicity.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro.errors import MachineError, SignalError
from repro.lang import ast as A
from repro.lang import expr as E
from repro.compiler.compile import CompiledModule, CompileOptions, compile_cached
from repro.runtime.execblock import ExecFailure, ExecHandle, ExecState
from repro.runtime.fastsched import LevelizedScheduler, SparseScheduler
from repro.runtime.scheduler import Scheduler
from repro.runtime.signal import RuntimeSignal, SignalView

BACKENDS = ("auto", "sparse", "levelized", "worklist")

#: Below this circuit size the compiled full sweep is cheaper than the
#: sparse mode's per-reaction bookkeeping (heap, dirty sets, incremental
#: statuses), so ``auto`` keeps small machines on the levelized backend.
#: Measured crossover on steady-state Skini scores is ~250 nets.
SPARSE_MIN_NETS = 256


class ReactionResult(Mapping):
    """The outcome of one reaction: a mapping of the *present* output
    signals to their values, plus machine status flags."""

    def __init__(
        self,
        emitted: Dict[str, Any],
        statuses: Union[Dict[str, bool], Callable[[], Dict[str, bool]]],
        terminated: bool,
        paused: bool,
    ):
        self._emitted = emitted
        # Either the statuses dict itself, or a zero-arg factory building
        # it on first access — the sparse backend defers the O(interface)
        # dict so a steady-state reaction that nobody inspects stays
        # proportional to activity, not interface size.
        self._statuses = statuses
        self.terminated = terminated
        self.paused = paused

    @property
    def statuses(self) -> Dict[str, bool]:
        if callable(self._statuses):
            self._statuses = self._statuses()
        return self._statuses

    def __getitem__(self, name: str) -> Any:
        return self._emitted[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._emitted)

    def __len__(self) -> int:
        return len(self._emitted)

    def present(self, name: str) -> bool:
        return name in self._emitted

    def __repr__(self) -> str:
        flags = " terminated" if self.terminated else ""
        return f"ReactionResult({self._emitted!r}{flags})"


class _MachineEnv(E.EvalEnv):
    """Evaluation environment for compiled expressions: signal accesses
    resolve through a lexical-scope snapshot; free identifiers resolve in
    the machine frame, then in the host globals."""

    __slots__ = ("_machine", "_scope")

    def __init__(self, machine: "ReactiveMachine", scope: Dict[str, int]):
        self._machine = machine
        self._scope = scope

    def _signal(self, name: str) -> RuntimeSignal:
        try:
            return self._machine._signals[self._scope[name]]
        except KeyError:
            raise SignalError(f"signal {name!r} not in scope") from None

    def signal_now(self, name: str) -> bool:
        signal = self._signal(name)
        if self._machine._reacting:
            info = self._machine.compiled.circuit.signals[signal.slot]
            status = self._machine._scheduler.values[info.status_net.id]
            if status is None:
                raise SignalError(
                    f"status of {name!r} read before it was resolved "
                    "(missing data dependency)"
                )
            return bool(status)
        return signal.now

    def signal_pre(self, name: str) -> bool:
        return self._signal(name).pre

    def signal_nowval(self, name: str) -> Any:
        return self._signal(name).nowval

    def signal_preval(self, name: str) -> Any:
        return self._signal(name).preval

    def signal_name(self, name: str) -> str:
        return self._signal(name).bound_name

    def lookup(self, name: str) -> Any:
        frame = self._machine.frame
        if name in frame:
            return frame[name]
        host = self._machine.host_globals
        if name in host:
            return host[name]
        raise KeyError(name)

    def assign(self, name: str, value: Any) -> None:
        self._machine.frame[name] = value


ModuleLike = Union[A.Module, CompiledModule]


class ReactiveMachine:
    """A compiled HipHop program ready to react."""

    def __init__(
        self,
        module: ModuleLike,
        modules: Optional[A.ModuleTable] = None,
        options: Optional[CompileOptions] = None,
        host_globals: Optional[Dict[str, Any]] = None,
        loop: Optional[Any] = None,
        on_exec_error: Union[str, Callable[[ExecFailure], None]] = "raise",
        backend: str = "auto",
    ):
        if isinstance(module, CompiledModule):
            self.compiled = module
        else:
            # Raw modules go through the structural compile cache: building
            # N machines of one module compiles (and plans) once.
            self.compiled = compile_cached(module, modules, options)
        self.module = self.compiled.module
        self.name = self.module.name
        self.host_globals: Dict[str, Any] = dict(host_globals or {})
        #: host variable frame (module vars, `let` bindings)
        self.frame: Dict[str, Any] = {}
        self._loop = loop

        circuit = self.compiled.circuit
        #: which reaction backend runs this machine ("sparse", "levelized"
        #: or "worklist"); `backend="auto"` picks sparse dirty-cone
        #: evaluation for pure straight-line plans, the levelized full
        #: sweep while straight-line statements dominate, and the worklist
        #: otherwise
        self.backend = self._select_backend(backend)
        if self.backend == "sparse":
            self._scheduler = SparseScheduler(
                self.compiled.evaluation_plan(), self
            )
        elif self.backend == "levelized":
            self._scheduler = LevelizedScheduler(
                self.compiled.evaluation_plan(), self
            )
        else:
            self._scheduler = Scheduler(circuit, self)
        self._sparse = self.backend == "sparse"
        # Incremental signal bookkeeping (sparse backend): the slots whose
        # RuntimeSignal is not inert (needs begin_instant), the slots
        # currently present, and the slots written during this reaction.
        self._active_slots: set = set()
        self._present_slots: set = set()
        self._touched_slots: set = set()
        (
            self._status_slot_of_net,
            self._iface_slots,
            self._out_name_of_slot,
        ) = self._signal_maps()
        self._signals: List[RuntimeSignal] = [
            RuntimeSignal(
                info.slot,
                info.name,
                info.bound_name,
                info.direction,
                self._resolve_combine(info.combine, info.name),
            )
            for info in circuit.signals
        ]
        self._counters: List[int] = [0] * len(circuit.counters)
        self._execs: List[ExecState] = [ExecState(i) for i in range(len(circuit.execs))]
        self._listeners: Dict[str, List[Callable[[Any], None]]] = {}
        self._reacting = False
        self._deferred: List[Dict[str, Any]] = []
        self.terminated = False
        self.reaction_count = 0

        #: what to do with exceptions raised inside exec host actions:
        #: ``"raise"`` (default: record, then propagate), ``"signal:<name>"``
        #: (record and queue a reaction emitting input ``<name>`` with the
        #: error), or a callable invoked with the :class:`ExecFailure`.
        self.on_exec_error = on_exec_error
        self._failed_reactions = 0
        self._exec_failures = 0
        self._breakers: Dict[str, Any] = {}

        self._boot_values()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _select_backend(self, backend: str) -> str:
        if backend not in BACKENDS:
            raise MachineError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if backend != "auto":
            return backend
        plan = self.compiled.evaluation_plan()
        if plan.sparse_eligible and len(plan.circuit.nets) >= SPARSE_MIN_NETS:
            return "sparse"
        return "levelized" if plan.auto_eligible else "worklist"

    def _signal_maps(self) -> tuple:
        """Shared (per compiled module) signal lookup tables: status-net
        id → slot, interface (name, slot) pairs, and slot → output name
        for the out/inout interface signals."""
        maps = self.compiled._signal_maps
        if maps is None:
            circuit = self.compiled.circuit
            status_slot_of_net = {
                info.status_net.id: info.slot for info in circuit.signals
            }
            iface_slots = tuple(
                (name, info.slot) for name, info in circuit.interface.items()
            )
            out_name_of_slot = {
                info.slot: name
                for name, info in circuit.interface.items()
                if info.direction in ("out", "inout")
            }
            maps = (status_slot_of_net, iface_slots, out_name_of_slot)
            self.compiled._signal_maps = maps
        return maps

    def _resolve_combine(self, combine: Any, signal_name: str) -> Any:
        """Combine functions declared textually (``combine fname``) resolve
        against the host globals at machine construction."""
        if combine is None or callable(combine):
            return combine
        fn = self.host_globals.get(combine)
        if fn is None or not callable(fn):
            raise MachineError(
                f"signal {signal_name!r} declares combine {combine!r}, which is "
                "not a callable in the machine's host globals"
            )
        return fn

    def _boot_values(self) -> None:
        env = self.env_for({})
        for name, init in self.compiled.circuit.frame_vars:
            # vars without an initializer stay unbound so lookups can fall
            # through to the host globals (or to a later instance Assign)
            if name not in self.frame and init is not None:
                self.frame[name] = init.eval(env)
        for info in self.compiled.circuit.signals:
            if info.init is not None:
                value = info.init.eval(env)
                signal = self._signals[info.slot]
                signal.nowval = value
                signal.preval = value

    def attach_loop(self, loop: Any) -> None:
        """Attach a host event loop providing ``call_soon(fn)``; queued
        reactions (from ``this.react`` / ``notify``) are scheduled on it."""
        self._loop = loop

    # ------------------------------------------------------------------
    # the public reaction API
    # ------------------------------------------------------------------

    def react(self, inputs: Optional[Dict[str, Any]] = None) -> ReactionResult:
        """Run one atomic reaction with the given input signals present.

        ``inputs`` maps input-signal names to their emitted values (use
        ``True`` for pure presence).  Returns the present outputs.
        """
        if self._reacting:
            raise MachineError(
                "reentrant react(): reactions are atomic; use this.react() "
                "from async bodies to queue one"
            )
        try:
            result = self._react_once(inputs or {})
            # Serve reactions queued by notify()/this.react() during this one.
            while self._deferred:
                self._react_once(self._deferred.pop(0))
        except Exception:
            self._failed_reactions += 1
            self._deferred.clear()
            raise
        return result

    def _react_once(self, inputs: Dict[str, Any]) -> ReactionResult:
        if self._sparse:
            return self._react_once_sparse(inputs)
        circuit = self.compiled.circuit
        input_values: Dict[int, bool] = {}

        for signal in self._signals:
            signal.begin_instant()

        for name, value in inputs.items():
            info = circuit.interface.get(name)
            if info is None or info.input_net is None:
                valid = sorted(
                    k for k, v in circuit.interface.items() if v.input_net is not None
                )
                raise MachineError(
                    f"unknown input signal {name!r}; machine inputs: {valid}"
                )
            input_values[info.input_net.id] = True
            self._signals[info.slot].write(value)

        for state in self._execs:
            if state.running and state.pending:
                info = circuit.execs[state.slot]
                input_values[info.done_net.id] = True

        self._reacting = True
        try:
            self._scheduler.react(input_values)
        finally:
            self._reacting = False

        # Post-reaction bookkeeping: statuses and outputs.
        values = self._scheduler.values
        emitted: Dict[str, Any] = {}
        statuses: Dict[str, bool] = {}
        for info in circuit.signals:
            present = bool(values[info.status_net.id])
            self._signals[info.slot].now = present
        for name, info in circuit.interface.items():
            signal = self._signals[info.slot]
            statuses[name] = signal.now
            if info.direction in ("out", "inout") and signal.now:
                emitted[name] = signal.nowval

        self.reaction_count += 1
        if values[circuit.k0_net.id]:
            self.terminated = True
        result = ReactionResult(
            emitted, statuses, self.terminated, bool(values[circuit.k1_net.id])
        )

        for name, value in emitted.items():
            for listener in self._listeners.get(name, ()):
                listener(value)
        return result

    def _react_once_sparse(self, inputs: Dict[str, Any]) -> ReactionResult:
        """The sparse backend's reaction: identical semantics to
        :meth:`_react_once`, but every per-signal step walks only the
        *active* signals (written, present, or carrying rolled-over
        state) rather than the whole interface, so a steady-state
        reaction costs O(activity) end to end.
        """
        circuit = self.compiled.circuit
        signals = self._signals
        input_values: Dict[int, bool] = {}
        touched = self._touched_slots
        touched.clear()

        # begin_instant is a no-op on an inert signal (now/pre False, no
        # emissions, nowval already rolled into preval), and every
        # non-inert signal is in the active set by construction.
        for slot in self._active_slots:
            signals[slot].begin_instant()

        for name, value in inputs.items():
            info = circuit.interface.get(name)
            if info is None or info.input_net is None:
                valid = sorted(
                    k for k, v in circuit.interface.items() if v.input_net is not None
                )
                raise MachineError(
                    f"unknown input signal {name!r}; machine inputs: {valid}"
                )
            input_values[info.input_net.id] = True
            signals[info.slot].write(value)
            touched.add(info.slot)

        for state in self._execs:
            if state.running and state.pending:
                info = circuit.execs[state.slot]
                input_values[info.done_net.id] = True

        self._reacting = True
        try:
            self._scheduler.react(input_values)
        finally:
            self._reacting = False

        values = self._scheduler.values
        dirty = self._scheduler.last_dirty
        if dirty is None:
            # Full sweep (first reaction, large cone, or fallback plan):
            # classic post-processing, rebuilding the tracking sets.
            return self._finish_full_sweep(values)

        # Statuses: only signals whose status net was re-evaluated can
        # have changed; everything else keeps last reaction's presence.
        status_slot_of_net = self._status_slot_of_net
        present = self._present_slots
        updated: set = set()
        for net_id in dirty:
            slot = status_slot_of_net.get(net_id)
            if slot is not None:
                updated.add(slot)
                if values[net_id]:
                    signals[slot].now = True
                    present.add(slot)
                else:
                    signals[slot].now = False
                    present.discard(slot)
        for slot in present:
            # Sustained signals: present before, status net untouched this
            # reaction (so still present), but begin_instant cleared `now`.
            if slot not in updated:
                signals[slot].now = True

        # Refresh the active set: only previously-active, written, or
        # status-updated slots can have become (or stayed) non-inert.
        candidates = self._active_slots
        candidates |= touched
        candidates |= updated
        active: set = set()
        for slot in candidates:
            signal = signals[slot]
            if (
                signal.now
                or signal.pre
                or signal.emitted
                or signal.nowval is not signal.preval
            ):
                active.add(slot)
        self._active_slots = active

        emitted: Dict[str, Any] = {}
        out_name_of_slot = self._out_name_of_slot
        for slot in sorted(present):
            name = out_name_of_slot.get(slot)
            if name is not None:
                emitted[name] = signals[slot].nowval

        self.reaction_count += 1
        if values[circuit.k0_net.id]:
            self.terminated = True
        snapshot = frozenset(present)
        iface_slots = self._iface_slots
        result = ReactionResult(
            emitted,
            lambda: {name: (slot in snapshot) for name, slot in iface_slots},
            self.terminated,
            bool(values[circuit.k1_net.id]),
        )

        for name, value in emitted.items():
            for listener in self._listeners.get(name, ()):
                listener(value)
        return result

    def _finish_full_sweep(self, values: List[Optional[bool]]) -> ReactionResult:
        """Post-reaction bookkeeping after a full sweep on the sparse
        backend: same as the classic path, plus a rebuild of the
        present/active tracking sets from scratch."""
        circuit = self.compiled.circuit
        signals = self._signals
        present: set = set()
        active: set = set()
        for info in circuit.signals:
            slot = info.slot
            signal = signals[slot]
            signal.now = now = bool(values[info.status_net.id])
            if now:
                present.add(slot)
            if (
                now
                or signal.pre
                or signal.emitted
                or signal.nowval is not signal.preval
            ):
                active.add(slot)
        self._present_slots = present
        self._active_slots = active

        emitted: Dict[str, Any] = {}
        statuses: Dict[str, bool] = {}
        for name, info in circuit.interface.items():
            signal = signals[info.slot]
            statuses[name] = signal.now
            if info.direction in ("out", "inout") and signal.now:
                emitted[name] = signal.nowval

        self.reaction_count += 1
        if values[circuit.k0_net.id]:
            self.terminated = True
        result = ReactionResult(
            emitted, statuses, self.terminated, bool(values[circuit.k1_net.id])
        )
        for name, value in emitted.items():
            for listener in self._listeners.get(name, ()):
                listener(value)
        return result

    def queue_react(self, inputs: Dict[str, Any]) -> None:
        """Queue a reaction (callable from anywhere, including from inside
        async bodies during a reaction)."""
        if self._reacting:
            self._deferred.append(inputs)
        elif self._loop is not None:
            self._loop.call_soon(lambda: self.react(inputs))
        else:
            self.react(inputs)

    def reset(self) -> None:
        """Return the machine to its boot state (registers, signals,
        counters, execs); host frame variables are re-initialized."""
        self._scheduler.clear_state()
        for state in self._execs:
            state.stop()
            state.last_error = None
        self._counters = [0] * len(self._counters)
        self._failed_reactions = 0
        self._exec_failures = 0
        for signal in self._signals:
            signal.now = signal.pre = False
            signal.nowval = signal.preval = None
            signal.emitted = 0
        self._active_slots = set()
        self._present_slots = set()
        self._touched_slots = set()
        self.frame = {}
        self.terminated = False
        self.reaction_count = 0
        self._boot_values()

    # ------------------------------------------------------------------
    # signal access (machine.connState.nowval, listeners)
    # ------------------------------------------------------------------

    def signal(self, name: str) -> SignalView:
        info = self.compiled.circuit.interface.get(name)
        if info is None:
            raise SignalError(f"no interface signal {name!r} on machine {self.name}")
        return SignalView(self._signals[info.slot])

    def __getattr__(self, name: str) -> Any:
        # Called only when normal lookup fails: expose interface signals.
        compiled = self.__dict__.get("compiled")
        signals = self.__dict__.get("_signals")
        if compiled is None or signals is None:
            raise AttributeError(name)
        info = compiled.circuit.interface.get(name)
        if info is None:
            raise AttributeError(name)
        return SignalView(signals[info.slot])

    def add_listener(self, name: str, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` whenever output ``name`` is emitted."""
        if name not in self.compiled.circuit.interface:
            raise SignalError(f"no interface signal {name!r}")
        self._listeners.setdefault(name, []).append(callback)

    def remove_listener(self, name: str, callback: Callable[[Any], None]) -> None:
        callbacks = self._listeners.get(name, [])
        if callback in callbacks:
            callbacks.remove(callback)

    # ------------------------------------------------------------------
    # payload host interface (called by compiled circuit payloads)
    # ------------------------------------------------------------------

    def env_for(self, scope: Dict[str, int]) -> _MachineEnv:
        return _MachineEnv(self, scope)

    def emit_value(self, slot: int, value: Any) -> None:
        self._signals[slot].write(value)
        self._touched_slots.add(slot)

    def init_signal(self, slot: int, value: Any) -> None:
        self._signals[slot].initialize(value)
        self._touched_slots.add(slot)

    def arm_counter(self, slot: int, value: int) -> None:
        self._counters[slot] = max(1, int(value))

    def tick_counter(self, slot: int) -> bool:
        self._counters[slot] -= 1
        return self._counters[slot] <= 0

    def exec_state(self, slot: int) -> ExecState:
        return self._execs[slot]

    def start_exec(self, slot: int, scope: Dict[str, int]) -> None:
        state = self._execs[slot]
        info = self.compiled.circuit.execs[slot]
        handle = state.start(self, scope)
        self._run_exec_action(info.stmt.start, handle, "start")

    def kill_exec(self, slot: int) -> None:
        state = self._execs[slot]
        if not state.running:
            return
        info = self.compiled.circuit.execs[slot]
        handle = state.handle
        state.stop()
        if info.stmt.kill is not None and handle is not None:
            self._run_exec_action(info.stmt.kill, handle, "kill")

    def suspend_exec(self, slot: int) -> None:
        state = self._execs[slot]
        info = self.compiled.circuit.execs[slot]
        if state.running and info.stmt.on_suspend is not None and state.handle:
            self._run_exec_action(info.stmt.on_suspend, state.handle, "suspend")

    def resume_exec(self, slot: int) -> None:
        state = self._execs[slot]
        info = self.compiled.circuit.execs[slot]
        if state.running and info.stmt.on_resume is not None and state.handle:
            self._run_exec_action(info.stmt.on_resume, state.handle, "resume")

    def finish_exec(self, slot: int) -> None:
        """The completion instant: write the notified value into the
        completion signal (if any) and retire the invocation."""
        state = self._execs[slot]
        info = self.compiled.circuit.execs[slot]
        if info.signal is not None:
            self._signals[info.signal.slot].write(state.pending_value)
            self._touched_slots.add(info.signal.slot)
        state.stop()

    def notify_exec(self, slot: int, generation: int, value: Any) -> None:
        state = self._execs[slot]
        if not state.running or state.generation != generation:
            return  # stale invocation: silently discarded (paper §2.2.4)
        state.pending = True
        state.pending_value = value
        self.queue_react({})

    def _run_exec_action(self, action: Any, handle: ExecHandle, phase: str) -> None:
        """Run an exec host action under supervision: an exception is
        caught per-slot, recorded, and routed by ``on_exec_error`` instead
        of unconditionally crashing the reaction."""
        try:
            if callable(action):
                action(handle)
                return
            env = E.ScopedEnv(handle.env, {"this": handle})
            for stmt in action:
                stmt.execute(env)
        except Exception as err:
            failure = ExecFailure(handle._slot, phase, err, self.reaction_count)
            self._execs[handle._slot].last_error = failure
            self._exec_failures += 1
            policy = self.on_exec_error
            if callable(policy):
                policy(failure)
            elif isinstance(policy, str) and policy.startswith("signal:"):
                name = policy[len("signal:"):]
                info = self.compiled.circuit.interface.get(name)
                if info is None or info.input_net is None:
                    raise MachineError(
                        f"on_exec_error policy names {name!r}, which is not an "
                        "input signal of this machine"
                    ) from err
                self.queue_react({name: err})
            else:
                raise

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def register_breaker(self, breaker: Any, name: Optional[str] = None) -> Any:
        """Expose a :class:`~repro.host.CircuitBreaker`'s state in this
        machine's :attr:`health` snapshot.  Returns the breaker."""
        self._breakers[name or getattr(breaker, "name", f"breaker{len(self._breakers)}")] = breaker
        return breaker

    @property
    def health(self) -> Dict[str, Any]:
        """A point-in-time health snapshot: reaction and failure counts,
        exec-slot errors, and the state of every registered breaker."""
        exec_errors = [
            state.last_error for state in self._execs if state.last_error is not None
        ]
        return {
            "reactions": self.reaction_count,
            "failed_reactions": self._failed_reactions,
            "exec_failures": self._exec_failures,
            "execs_running": sum(1 for state in self._execs if state.running),
            "exec_errors": exec_errors,
            "breakers": {name: b.snapshot() for name, b in self._breakers.items()},
        }

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return self.compiled.circuit.stats()

    def __repr__(self) -> str:
        return f"ReactiveMachine({self.name}, {len(self.compiled.circuit.nets)} nets)"
