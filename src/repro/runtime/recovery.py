"""Supervised recovery: checkpoints, rollback-and-retry, quarantine.

:class:`MachineSupervisor` makes one reactive machine durable by pairing
a write-ahead :mod:`journal <repro.runtime.journal>` with periodic
:meth:`~repro.runtime.machine.ReactiveMachine.snapshot` checkpoints:

* a *failed* instant (exception from ``react``) is rolled back to the
  pre-instant boundary — restore the last checkpoint, replay the journal
  up to the failed instant — and retried; after ``quarantine_after``
  consecutive identical failures the member is quarantined as poisoned;
* a *crashed* machine (process death, injected
  :class:`~repro.errors.CrashError`) is recovered onto the same or a
  fresh machine with :meth:`recover`, deterministically replaying the
  journal tail so no host effect is lost or duplicated.

:class:`FleetSupervisor` applies this per member of a
:class:`~repro.runtime.fleet.MachineFleet`: batch instants
(:meth:`react_all` / :meth:`broadcast`) always complete for healthy
members even when others throw, failed members are rolled back and
retried in place, and poisoned members are quarantined (skipped) until
:meth:`revive`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import MachineError, MigrationError, ReactionBudgetExceeded
from repro.runtime.journal import MemoryJournal
from repro.runtime.machine import ReactionResult, ReactiveMachine


class MachineSupervisor:
    """Durability wrapper for one machine.

    :param machine: the supervised :class:`ReactiveMachine`.
    :param journal: a journal sink (default: a fresh
        :class:`~repro.runtime.journal.MemoryJournal`); it is attached to
        the machine.
    :param checkpoint_every: take a checkpoint (snapshot + journal
        truncation) every N successful instants; ``None`` keeps only the
        initial checkpoint and the full journal.
    :param max_retries: how many times a failed instant is rolled back
        and retried before the failure propagates.
    :param quarantine_after: consecutive *identical* failures (same
        exception type and message — the poison-input signature) before
        the machine is quarantined.
    :param on_checkpoint: called with each new checkpoint snapshot
        *before* the journal prefix it covers is truncated.  Persisting
        the snapshot here (rather than after :meth:`checkpoint` returns)
        is the crash-safe ordering: if the process dies between the two
        steps, the durable state is a *newer* snapshot plus a journal
        that still reaches it — never an old snapshot whose journal tail
        has already been dropped.
    """

    def __init__(
        self,
        machine: ReactiveMachine,
        journal: Optional[Any] = None,
        checkpoint_every: Optional[int] = None,
        max_retries: int = 1,
        quarantine_after: int = 3,
        on_checkpoint: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        self.machine = machine
        self.journal = journal if journal is not None else MemoryJournal()
        machine.attach_journal(self.journal)
        self.checkpoint_every = checkpoint_every
        self.max_retries = max_retries
        self.quarantine_after = quarantine_after
        self.on_checkpoint = on_checkpoint
        self.quarantined = False
        self.last_error: Optional[BaseException] = None
        self.consecutive_failures = 0
        self._failure_signature: Optional[tuple] = None
        self.stats: Dict[str, int] = {
            "reactions": 0,
            "retries": 0,
            "rollbacks": 0,
            "recoveries": 0,
            "checkpoints": 0,
            "quarantines": 0,
            "budget_aborts": 0,
        }
        self._checkpoint = self.checkpoint()

    # -- checkpointing ---------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot the machine now and truncate the journal prefix the
        snapshot covers.  Returns (and keeps) the snapshot.

        ``on_checkpoint`` runs between the snapshot and the truncation:
        the snapshot must be durable *before* the journal entries it
        replaces are dropped."""
        snap = self.machine.snapshot()
        if self.on_checkpoint is not None:
            self.on_checkpoint(snap)
        self.journal.truncate(snap["reaction_count"])
        self._checkpoint = snap
        self.stats["checkpoints"] += 1
        return snap

    @property
    def last_checkpoint(self) -> Dict[str, Any]:
        return self._checkpoint

    # -- supervised reactions --------------------------------------------

    def react(
        self,
        inputs: Optional[Dict[str, Any]] = None,
        budget: Optional[Any] = None,
    ) -> ReactionResult:
        """One supervised instant: on failure, roll the machine back to
        the pre-instant boundary and retry up to ``max_retries`` times;
        persistent identical failures quarantine the machine (the
        exception still propagates so callers see the poison input).

        A :class:`~repro.errors.ReactionBudgetExceeded` abort (the
        machine's reaction deadline, or an explicit ``budget`` for this
        call) takes the same rollback path: the runaway instant is undone
        to the pre-instant boundary, and identical repeats quarantine the
        member as poisoned."""
        if self.quarantined:
            raise MachineError(
                f"machine {self.machine.name!r} is quarantined after "
                f"{self.consecutive_failures} identical failures "
                f"({self.last_error!r}); revive() it first"
            )
        inputs = dict(inputs or {})
        base_seq = self.machine.reaction_count
        attempts = 0
        while True:
            try:
                result = self.machine.react(inputs, budget=budget)
            except Exception as err:
                if isinstance(err, ReactionBudgetExceeded):
                    self.stats["budget_aborts"] += 1
                self._record_failure(err)
                self._rollback_to(base_seq)
                if attempts < self.max_retries:
                    attempts += 1
                    self.stats["retries"] += 1
                    continue
                if self.consecutive_failures >= self.quarantine_after:
                    self.quarantined = True
                    self.stats["quarantines"] += 1
                raise
            else:
                self.consecutive_failures = 0
                self._failure_signature = None
                self.stats["reactions"] += 1
                if (
                    self.checkpoint_every
                    and self.machine.reaction_count
                    - self._checkpoint["reaction_count"]
                    >= self.checkpoint_every
                ):
                    self.checkpoint()
                return result

    def _record_failure(self, err: BaseException) -> None:
        self.last_error = err
        signature = (type(err).__name__, str(err))
        if signature == self._failure_signature:
            self.consecutive_failures += 1
        else:
            self._failure_signature = signature
            self.consecutive_failures = 1

    def _rollback_to(self, seq: int) -> None:
        """Restore the instant boundary ``seq``: drop the failed
        instant's write-ahead entries, restore the last checkpoint, and
        replay the surviving journal tail up to ``seq``."""
        self.journal.rewind(seq)
        self.machine.restore(self._checkpoint)
        self.machine.replay(self.journal.entries(self._checkpoint["reaction_count"]))
        self.stats["rollbacks"] += 1

    # -- crash recovery --------------------------------------------------

    def recover(self, machine: Optional[ReactiveMachine] = None) -> ReactiveMachine:
        """Recover from a crash: restore the latest checkpoint and replay
        the journal tail — onto ``machine`` (a fresh instance of the same
        compiled module, simulating a process restart) or, by default,
        onto the supervised machine itself.  The recovered machine is
        (re-)attached to the journal and becomes the supervised one.

        Committed entries replay silently (their host effects were
        already delivered before the crash); a trailing *uncommitted*
        suffix — instants killed mid-flight, whose effects never
        happened — is rewound from the journal and redone **live**, so
        listeners and exec actions fire exactly once overall."""
        target = machine if machine is not None else self.machine
        if target is not self.machine:
            # Detach the dead machine so a stale host callback can no
            # longer append to the journal the successor now owns.
            self.machine.attach_journal(None)
        entries = self.journal.entries(self._checkpoint["reaction_count"])
        committed = [e for e in entries if e.committed]
        tail = [e for e in entries if not e.committed]
        target.attach_journal(None)
        target.restore(self._checkpoint)
        target.replay(committed)
        if tail:
            self.journal.rewind(tail[0].seq)
        target.attach_journal(self.journal)
        self.machine = target
        for entry in tail:
            for slot, value in entry.execs:
                state = target._execs[slot]
                if state.running:
                    state.pending = True
                    state.pending_value = value
            target.react(dict(entry.inputs))
        self.quarantined = False
        self.stats["recoveries"] += 1
        return target

    def revive(self) -> None:
        """Lift a quarantine (operator override): the next failure starts
        a fresh identical-failure count."""
        self.quarantined = False
        self.consecutive_failures = 0
        self._failure_signature = None

    # -- hot program upgrade ---------------------------------------------

    def upgrade(self, machine: ReactiveMachine) -> "MigrationReport":
        """Swap the supervised machine for ``machine`` — a *fresh* (never
        reacted) machine of an edited program version — carrying the
        current between-instant state across the edit.

        Runs at an instant boundary: the old machine's state is
        checkpointed, mapped onto the new program with
        :func:`~repro.runtime.migrate.migrate_snapshot` (state whose
        segment keys survive the edit is carried byte-exactly, new state
        boots fresh, removed state is reported), and the successor takes
        over the journal with a fresh checkpoint.  No instant is dropped:
        every reaction before the call ran on v1, every reaction after it
        runs on v2, and the journal prefix the old checkpoint covered was
        already committed.

        Returns the :class:`~repro.runtime.migrate.MigrationReport`.
        Raises :class:`~repro.errors.MigrationError` if ``machine`` has
        already reacted (its boot snapshot must supply pristine defaults).
        """
        from repro.runtime.migrate import (
            migrate_snapshot,
            state_descriptor,
        )

        if machine.reaction_count != 0:
            raise MigrationError(
                f"upgrade target {machine.name!r} has already run "
                f"{machine.reaction_count} instants; pass a fresh machine"
            )
        snap = self.checkpoint()
        desc_from = state_descriptor(self.machine.compiled)
        desc_to = state_descriptor(machine.compiled)
        boot = machine.snapshot()
        # Boot-probe a scratch machine so instances new in v2 are seeded
        # with post-boot state and start reacting at the next instant
        # (a branch grafted into a running parallel can never re-receive
        # the boot pulse the old program already consumed).
        # The probe must resolve the same textual combine functions (and
        # host expressions) as the target, so it borrows its host scope.
        probe = ReactiveMachine(
            machine.compiled, host_globals=machine.host_globals
        )
        probe.react({})
        migrated, report = migrate_snapshot(
            snap, desc_from, desc_to, boot, probe.snapshot()
        )
        self.machine.attach_journal(None)
        machine.restore(migrated)
        machine.attach_journal(self.journal)
        self.machine = machine
        self.quarantined = False
        self.consecutive_failures = 0
        self._failure_signature = None
        self.checkpoint()
        self.stats["upgrades"] = self.stats.get("upgrades", 0) + 1
        return report

    def __repr__(self) -> str:
        state = "quarantined" if self.quarantined else "healthy"
        return (
            f"MachineSupervisor({self.machine.name}, {state}, "
            f"checkpoint@{self._checkpoint['reaction_count']}, "
            f"{len(self.journal)} journaled)"
        )


class FleetSupervisor:
    """Per-member fault isolation for a
    :class:`~repro.runtime.fleet.MachineFleet`.

    Every member gets its own :class:`MachineSupervisor` (journal +
    checkpoints + rollback/retry/quarantine).  Batch instants complete
    for all healthy members even when some throw; per-instant failures
    are collected in :attr:`last_failures` instead of aborting the batch,
    and members that keep failing identically are quarantined (skipped,
    reported by :meth:`quarantined_members`, revivable with
    :meth:`revive`).
    """

    def __init__(
        self,
        fleet: Any,
        checkpoint_every: Optional[int] = None,
        journal_factory: Callable[[], Any] = MemoryJournal,
        max_retries: int = 1,
        quarantine_after: int = 3,
    ):
        self.fleet = fleet
        self.checkpoint_every = checkpoint_every
        self.journal_factory = journal_factory
        self.max_retries = max_retries
        self.quarantine_after = quarantine_after
        self.members: List[MachineSupervisor] = [
            self._supervise(machine) for machine in fleet
        ]
        #: member index → exception, for the most recent batch instant
        self.last_failures: Dict[int, BaseException] = {}

    def _supervise(self, machine: ReactiveMachine) -> MachineSupervisor:
        return MachineSupervisor(
            machine,
            journal=self.journal_factory(),
            checkpoint_every=self.checkpoint_every,
            max_retries=self.max_retries,
            quarantine_after=self.quarantine_after,
        )

    def spawn(self, **overrides: Any) -> MachineSupervisor:
        """Add (and supervise) a new fleet member."""
        supervisor = self._supervise(self.fleet.spawn(**overrides))
        self.members.append(supervisor)
        return supervisor

    def __len__(self) -> int:
        return len(self.members)

    def __getitem__(self, index: int) -> MachineSupervisor:
        return self.members[index]

    # -- batch driving ---------------------------------------------------

    def react_all(
        self, inputs: Optional[Dict[str, Any]] = None
    ) -> List[Optional[ReactionResult]]:
        """One supervised instant on every non-quarantined member with
        shared inputs.  Always completes the batch; failed or quarantined
        members yield ``None`` and failures land in
        :attr:`last_failures`."""
        shared = inputs or {}
        return self._drive(lambda index, machine: shared)

    def broadcast(
        self, make_inputs: Callable[[int, ReactiveMachine], Dict[str, Any]]
    ) -> List[Optional[ReactionResult]]:
        """One supervised instant per member with member-specific inputs
        (same completion guarantee as :meth:`react_all`)."""
        return self._drive(make_inputs)

    def _drive(
        self, make_inputs: Callable[[int, ReactiveMachine], Dict[str, Any]]
    ) -> List[Optional[ReactionResult]]:
        results: List[Optional[ReactionResult]] = [None] * len(self.members)
        failures: Dict[int, BaseException] = {}
        for index, supervisor in enumerate(self.members):
            if supervisor.quarantined:
                continue
            try:
                results[index] = supervisor.react(
                    make_inputs(index, supervisor.machine)
                )
            except Exception as err:
                failures[index] = err
        self.last_failures = failures
        return results

    # -- health / recovery -----------------------------------------------

    def quarantined_members(self) -> List[int]:
        return [i for i, s in enumerate(self.members) if s.quarantined]

    def revive(self, index: int) -> None:
        self.members[index].revive()

    def checkpoint_all(self) -> None:
        for supervisor in self.members:
            supervisor.checkpoint()

    def recover(
        self, index: int, machine: Optional[ReactiveMachine] = None
    ) -> ReactiveMachine:
        """Crash-recover member ``index`` (optionally onto a fresh
        machine, which replaces the dead one in the fleet as well)."""
        supervisor = self.members[index]
        old = supervisor.machine
        recovered = supervisor.recover(machine)
        if recovered is not old:
            machines = self.fleet._machines
            machines[machines.index(old)] = recovered
        return recovered

    def stats(self) -> Dict[str, Any]:
        totals: Dict[str, int] = {}
        for supervisor in self.members:
            for key, value in supervisor.stats.items():
                totals[key] = totals.get(key, 0) + value
        return {
            "members": len(self.members),
            "quarantined": len(self.quarantined_members()),
            **totals,
        }

    def __repr__(self) -> str:
        return (
            f"FleetSupervisor({len(self.members)} members, "
            f"{len(self.quarantined_members())} quarantined)"
        )
