"""The resilient network edge: an asyncio WebSocket gateway over a fleet.

The paper's deployments are *web* programs — Skini serves an audience of
phones — yet every robustness layer built so far (mailboxes, admission
control, durable replay, sharding) stops at the process boundary.  This
module is the edge that proves the story end to end: real(istic)
connections, with all their failure modes, in front of a
:class:`~repro.runtime.fleet.FleetIngress`-guarded fleet.

Architecture::

    client ──ws── Session ──mailbox── FleetIngress ──pump── machine
       │             │                                        │
       └── resume ───┴── replay buffer          reactive diffs┘

* **Sessions, not sockets, own state.**  A WebSocket connection is a
  disposable attachment to a :class:`Session`; the session owns the
  member binding, the monotonic diff sequence, the bounded replay
  buffer, and the applied-event record.  A reconnecting client presents
  its resume token and receives exactly the diffs it missed — or a full
  snapshot when the buffer aged out or the program was upgraded.
* **Admission is never silent.**  Client events funnel through
  :meth:`FleetIngress.offer`: token-bucket refusals come back as
  structured 429-style ``busy`` frames (with a ``retry_ms`` hint), a
  full ``reject``-policy mailbox as 503 — the client retries, nothing is
  dropped on the floor.  Duplicate deliveries (chaos, retransmission
  after an ack loss) are fenced by per-session event ids: an input is
  applied **exactly once** however many times it arrives.
* **A slow consumer degrades, the pump does not.**  Reactive diffs go
  out through a bounded per-connection queue; when it fills, adjacent
  diffs coalesce into one coarser diff (the degradation ladder: full
  diffs → coalesced diffs → resume snapshot).  The pump never awaits a
  slow socket.
* **Liveness is explicit.**  Heartbeat pings on quiet connections, idle
  timeouts on dead ones, and fencing of superseded sockets (two
  connections presenting one session: the older is told and closed).

:class:`GatewayClient` is the matching client harness — reconnect with
capped exponential backoff + jitter, resume, and retransmission of the
unacknowledged event — used by the chaos property tests and the
closed-loop load benchmark (``benchmarks/bench_gateway.py``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import secrets
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import MachineError, OverloadError
from repro.runtime.fleet import FleetIngress, MachineFleet
from repro.runtime.ingress import RATE_LIMITED
from repro.runtime.wsproto import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    FrameAssembler,
    ProtocolError,
    encode_close,
    encode_frame,
    encode_text,
    handshake_accept,
    handshake_request,
    http_response,
    parse_http_head,
    read_http_head,
    accept_key,
)

#: close code sent to a socket superseded by a newer resume of its session
CLOSE_FENCED = 4001
#: close code sent to live sockets when the gateway adopts an upgraded fleet
CLOSE_UPGRADED = 4002

#: per-session replay buffer length (diffs); a resume older than this
#: falls back to a full snapshot
REPLAY_BUFFER = 256
#: per-connection outbound queue bound; beyond it diffs coalesce
OUTBOUND_CAPACITY = 32
#: dedupe window: applied event ids remembered per session
APPLIED_WINDOW = 4096


def _json_bytes(obj: Any) -> str:
    return json.dumps(obj, separators=(",", ":"), default=str)


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


class Session:
    """One logical client session: member binding, diff sequence, replay
    buffer, view, and the exactly-once applied-event record.  Outlives
    any number of physical connections."""

    __slots__ = (
        "sid", "member", "fingerprint", "seq", "replay", "view",
        "terminated", "last_event_id", "applied_ids", "applied_order",
        "applied_count", "duplicate_count", "generation", "conn",
        "created_at", "confirmed",
    )

    def __init__(self, sid: str, member: Optional[int], fingerprint: str,
                 replay_limit: int = REPLAY_BUFFER):
        self.sid = sid
        self.member = member
        self.fingerprint = fingerprint
        self.seq = 0
        self.replay: Deque[Dict[str, Any]] = deque(maxlen=replay_limit)
        self.view: Dict[str, Any] = {}
        self.terminated = False
        self.last_event_id = 0
        self.applied_ids: Set[int] = set()
        self.applied_order: Deque[int] = deque()
        self.applied_count = 0
        self.duplicate_count = 0
        self.generation = 0
        self.conn: Optional["_Conn"] = None
        self.created_at = time.monotonic()
        #: a session is confirmed once *any* frame arrives after the
        #: welcome — proof the client holds the resume token.  An
        #: unconfirmed session whose socket dies is unreachable forever
        #: (the token died with the welcome), so it is safe to reap.
        self.confirmed = False

    # -- the exactly-once record ----------------------------------------

    def is_duplicate(self, event_id: int) -> bool:
        return event_id in self.applied_ids

    def record_applied(self, event_id: int) -> None:
        if len(self.applied_order) >= APPLIED_WINDOW:
            self.applied_ids.discard(self.applied_order.popleft())
        self.applied_ids.add(event_id)
        self.applied_order.append(event_id)
        self.applied_count += 1
        if event_id > self.last_event_id:
            self.last_event_id = event_id

    # -- the committed-diff record --------------------------------------

    def push_diff(self, emitted: Dict[str, Any], terminated: bool) -> Dict[str, Any]:
        """Commit one reactive diff: assign the next sequence number,
        fold it into the server-side view, append it to the replay
        buffer, and enqueue it on the live connection (if any)."""
        self.seq += 1
        diff = {
            "t": "diff",
            "seq": self.seq,
            "emitted": emitted,
            "ack": self.last_event_id,
        }
        if terminated:
            diff["terminated"] = True
            self.terminated = True
        self.view.update(emitted)
        self.replay.append(diff)
        if self.conn is not None:
            self.conn.enqueue(diff)
        return diff

    def resume_from(self, last_seq: int) -> Optional[List[Dict[str, Any]]]:
        """The diffs a client that saw up to ``last_seq`` missed, oldest
        first — or ``None`` when the replay buffer no longer covers the
        gap (aged out, or a token from the future) and only a full
        snapshot can resynchronize."""
        if last_seq > self.seq:
            return None
        if last_seq == self.seq:
            return []
        if self.replay and self.replay[0]["seq"] <= last_seq + 1:
            return [d for d in self.replay if d["seq"] > last_seq]
        return None

    def snapshot_frame(self, token: str, reason: str) -> Dict[str, Any]:
        return {
            "t": "snapshot",
            "sid": self.sid,
            "token": token,
            "member": self.member,
            "seq": self.seq,
            "view": dict(self.view),
            "terminated": self.terminated,
            "ack": self.last_event_id,
            "reason": reason,
        }


class _Conn:
    """One physical WebSocket connection: the bounded, coalescing
    outbound queue, its writer task, and heartbeat/idle handling."""

    def __init__(self, gateway: "Gateway", reader: Any, writer: Any):
        self.gateway = gateway
        self.reader = reader
        self.writer = writer
        self.session: Optional[Session] = None
        self.alive = True
        self.outbound: Deque[Dict[str, Any]] = deque()
        self.capacity = gateway.outbound_capacity
        self._wake = asyncio.Event()
        self._lock = asyncio.Lock()
        self._sending = False
        self.last_inbound = time.monotonic()
        self._writer_task: Optional[asyncio.Task] = None

    # -- outbound --------------------------------------------------------

    def enqueue(self, payload: Mapping[str, Any]) -> None:
        """Queue a frame for the writer task.  A full queue degrades to
        coarser diffs: the newest queued diff absorbs the incoming one
        (merged emitted map, advanced seq/ack) instead of growing the
        queue or stalling the pump."""
        if not self.alive:
            return
        entry = dict(payload)
        if "emitted" in entry:
            entry["emitted"] = dict(entry["emitted"])
        if len(self.outbound) >= self.capacity and self.outbound:
            tail = self.outbound[-1]
            if tail.get("t") == "diff" and entry.get("t") == "diff":
                tail["emitted"].update(entry["emitted"])
                tail["seq"] = entry["seq"]
                tail["ack"] = max(tail.get("ack", 0), entry.get("ack", 0))
                tail["coalesced"] = tail.get("coalesced", 0) + 1
                if entry.get("terminated"):
                    tail["terminated"] = True
                self.gateway.counters["diffs_coalesced"] += 1
                self._wake.set()
                return
        self.outbound.append(entry)
        self._wake.set()

    async def send_json(self, obj: Mapping[str, Any]) -> None:
        data = encode_text(_json_bytes(obj))
        async with self._lock:
            self._sending = True
            try:
                self.writer.write(data)
                await self.writer.drain()
            finally:
                self._sending = False

    async def send_raw(self, data: bytes) -> None:
        async with self._lock:
            self.writer.write(data)
            await self.writer.drain()

    @property
    def busy(self) -> bool:
        return bool(self.outbound) or self._sending

    def start_writer(self) -> None:
        self._writer_task = asyncio.ensure_future(self._write_loop())

    async def _write_loop(self) -> None:
        gateway = self.gateway
        heartbeat_s = gateway.heartbeat_ms / 1000.0
        try:
            while self.alive:
                if not self.outbound:
                    try:
                        await asyncio.wait_for(self._wake.wait(), timeout=heartbeat_s)
                    except asyncio.TimeoutError:
                        idle_ms = (time.monotonic() - self.last_inbound) * 1000.0
                        if idle_ms >= gateway.idle_timeout_ms:
                            gateway.counters["idle_closed"] += 1
                            await self._bail(1001, "idle timeout")
                            return
                        gateway.counters["pings"] += 1
                        await self.send_raw(encode_frame(OP_PING, b"hb"))
                        continue
                self._wake.clear()
                while self.outbound:
                    payload = self.outbound.popleft()
                    await self.send_json(payload)
        except (ConnectionError, OSError, RuntimeError):
            pass
        finally:
            self.detach()

    async def _bail(self, code: int, reason: str) -> None:
        try:
            await self.send_raw(encode_close(code, reason))
        except (ConnectionError, OSError):
            pass
        self.close()

    # -- lifecycle -------------------------------------------------------

    def detach(self) -> None:
        self.alive = False
        session, self.session = self.session, None
        if session is not None and session.conn is self:
            session.conn = None
            self.gateway._reap_if_orphaned(session)
        self.gateway._conns.discard(self)

    def close(self) -> None:
        self.detach()
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass

    def cancel(self) -> None:
        self.close()
        # RST rather than FIN: unblock a handler parked in reader.read()
        abort = getattr(self.writer, "abort", None)
        if abort is not None:
            try:
                abort()
            except (ConnectionError, OSError):
                pass
        if self._writer_task is not None:
            self._writer_task.cancel()


class Gateway:
    """The asyncio WebSocket edge over a
    :class:`~repro.runtime.fleet.FleetIngress`-guarded fleet.

    :param ingress: the admission-control front to serve (a bare
        :class:`~repro.runtime.fleet.MachineFleet` is wrapped in a
        default coalescing ingress).  The ``drop-oldest`` mailbox policy
        is refused: evicting an already-acknowledged event would
        silently un-apply it, breaking the edge's exactly-once contract
        (``coalesce`` never sheds; ``reject`` refuses *before* the ack).
    :param replay_buffer: per-session committed-diff replay depth.
    :param outbound_capacity: per-connection outbound queue bound.
    :param heartbeat_ms: quiet-connection ping interval.
    :param idle_timeout_ms: close a connection with no inbound traffic
        (pongs count) for this long; the session stays resumable.
    :param pump_interval_ms: idle tick of the pump task (admitted events
        wake it immediately).
    :param grow: spawn new fleet members for sessions beyond the free
        pool (otherwise new sessions are refused with a 503 ``busy``).
    :param boot: drive one empty boot reaction on each member at start
        (and on grown members), the way the concert example boots its
        fleet.
    :param record_instants: keep the per-member log of exactly the input
        maps fed to machines (post-mailbox-coalescing) — the oracle
        replay feed for digest-parity chaos tests and benchmarks.
    """

    def __init__(
        self,
        ingress: Any,
        replay_buffer: int = REPLAY_BUFFER,
        outbound_capacity: int = OUTBOUND_CAPACITY,
        heartbeat_ms: float = 5_000.0,
        idle_timeout_ms: float = 20_000.0,
        pump_interval_ms: float = 20.0,
        grow: bool = True,
        boot: bool = True,
        record_instants: bool = False,
        ws_path: str = "/ws",
        name: str = "gateway",
    ):
        if isinstance(ingress, MachineFleet):
            ingress = ingress.ingress()
        if not isinstance(ingress, FleetIngress):
            raise MachineError(
                f"Gateway needs a FleetIngress or MachineFleet, got "
                f"{type(ingress).__name__}"
            )
        for mailbox in ingress.mailboxes:
            if mailbox.policy == "drop-oldest":
                raise MachineError(
                    "Gateway refuses the 'drop-oldest' mailbox policy: "
                    "evicting an acknowledged event would silently "
                    "un-apply it; use 'coalesce' (never sheds) or "
                    "'reject' (refuses before the ack)"
                )
        self.ingress = ingress
        self.name = name
        self.ws_path = ws_path
        self.replay_buffer = replay_buffer
        self.outbound_capacity = outbound_capacity
        self.heartbeat_ms = heartbeat_ms
        self.idle_timeout_ms = idle_timeout_ms
        self.pump_interval_ms = pump_interval_ms
        self.grow = grow
        self.boot = boot
        self.fingerprint: str = ingress.fleet.compiled.fingerprint

        self.sessions: Dict[str, Session] = {}
        self._session_of_member: Dict[int, Session] = {}
        self._free: Deque[int] = deque(range(len(ingress.fleet)))
        self._conns: Set[_Conn] = set()
        self._sids = itertools.count(1)
        self._handler_tasks: Set[asyncio.Task] = set()
        self._pump_event = asyncio.Event()
        self._pump_task: Optional[asyncio.Task] = None
        self._pumping = False
        self._server: Optional[Any] = None
        self._running = False
        self._booted = False

        #: admitted-event → diff latency samples (ms), server side
        self.latency_samples: List[float] = []
        self._pending_stamps: Dict[int, List[float]] = {}
        self.instant_log: Dict[int, List[Dict[str, Any]]] = {}
        self._record_instants = record_instants
        self._chain_instant_hook()

        self.counters: Dict[str, int] = {
            "connections": 0,
            "sessions": 0,
            "resumes": 0,
            "resumed_replay": 0,
            "snapshot_aged_out": 0,
            "snapshot_fingerprint": 0,
            "snapshot_unknown": 0,
            "fenced": 0,
            "events": 0,
            "events_applied": 0,
            "events_duplicate": 0,
            "events_rate_limited": 0,
            "events_rejected": 0,
            "diffs": 0,
            "diffs_coalesced": 0,
            "diffs_replayed": 0,
            "diffs_unattended": 0,
            "pump_failures": 0,
            "pings": 0,
            "idle_closed": 0,
            "http_requests": 0,
            "refused_sessions": 0,
            "sessions_reaped": 0,
            "duplicate_hellos": 0,
            "upgrades": 0,
            "protocol_errors": 0,
        }

    # -- wiring ----------------------------------------------------------

    def _chain_instant_hook(self) -> None:
        previous = getattr(self.ingress, "on_instant", None)

        def on_instant(index: int, inputs: Dict[str, Any]) -> None:
            if self._record_instants:
                self.instant_log.setdefault(index, []).append(dict(inputs))
            if previous is not None:
                previous(index, inputs)

        self.ingress.on_instant = on_instant

    def _boot_member(self, index: int) -> None:
        machine = self.ingress.fleet[index]
        if machine.reaction_count == 0:
            machine.react({})

    async def start(self) -> None:
        """Boot the fleet (when ``boot``) and start the pump task.  Must
        run inside the event loop that will serve connections."""
        if self._running:
            return
        self._running = True
        if self.boot and not self._booted:
            self._booted = True
            self.ingress.fleet.react_all({})
        self._pump_task = asyncio.ensure_future(self._pump_loop())

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> Any:
        """Start (if needed) and listen on TCP; returns the asyncio
        server (``server.sockets[0].getsockname()`` for the bound
        port)."""
        await self.start()
        self._server = await asyncio.start_server(self.handle_connection, host, port)
        return self._server

    async def aclose(self) -> None:
        """Stop serving: close the listener, every live connection, and
        the pump task.  Sessions are kept (a restarted gateway could
        readopt them; tests inspect them)."""
        self._running = False
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._server = None
        for conn in list(self._conns):
            conn.cancel()
        for task in list(self._handler_tasks):
            task.cancel()
        self._handler_tasks.clear()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except (asyncio.CancelledError, Exception):
                pass
            self._pump_task = None

    # -- the pump --------------------------------------------------------

    async def _pump_loop(self) -> None:
        interval_s = self.pump_interval_ms / 1000.0
        while self._running:
            try:
                await asyncio.wait_for(self._pump_event.wait(), timeout=interval_s)
            except asyncio.TimeoutError:
                pass
            self._pump_event.clear()
            self.pump_now()
            # yield between pump rounds so reader/writer tasks interleave
            await asyncio.sleep(0)

    def pump_now(self) -> int:
        """Drain every pending mailbox through the ingress pump,
        committing one diff per member reaction.  Returns the number of
        reactions driven.  Runs synchronously on the event loop — the
        pump is the serialization point, exactly like the host loop in
        the single-process deployments."""
        self._pumping = True
        driven = 0
        try:
            while True:
                results = self.ingress.pump()
                failures = self.ingress.last_failures
                if failures:
                    self.counters["pump_failures"] += len(failures)
                if not results and not failures:
                    break
                now = time.perf_counter()
                for index, result in results.items():
                    driven += 1
                    self._deliver(index, result, now)
        finally:
            self._pumping = False
        return driven

    def _deliver(self, index: int, result: Any, now: float) -> None:
        stamps = self._pending_stamps.get(index)
        if stamps:
            for t0 in stamps:
                self.latency_samples.append((now - t0) * 1000.0)
            stamps.clear()
            if len(self.latency_samples) > 500_000:  # pragma: no cover
                del self.latency_samples[:250_000]
        session = self._session_of_member.get(index)
        if session is None:
            self.counters["diffs_unattended"] += 1
            return
        session.push_diff(dict(result), terminated=result.terminated)
        self.counters["diffs"] += 1

    # -- session management ----------------------------------------------

    def _new_sid(self) -> str:
        return f"s{next(self._sids):x}-{secrets.token_hex(4)}"

    def token_for(self, session: Session) -> str:
        return f"{session.sid}.{self.fingerprint}"

    def _claim_member(self) -> Optional[int]:
        while self._free:
            index = self._free.popleft()
            if index not in self._session_of_member:
                return index
        if not self.grow:
            return None
        index = self.ingress.add_member()
        if self.boot:
            self._boot_member(index)
        return index

    def _release_member(self, index: Optional[int]) -> None:
        if index is not None:
            self._session_of_member.pop(index, None)
            self._free.append(index)

    def _bind(self, session: Session) -> bool:
        """Ensure the session has a member (after an upgrade rebind it
        may not); returns False when capacity ran out."""
        if session.member is None:
            member = self._claim_member()
            if member is None:
                return False
            session.member = member
        self._session_of_member[session.member] = session
        return True

    def _attach(self, session: Session, conn: _Conn) -> None:
        """Make ``conn`` the session's live socket, fencing off any
        previous one (the duplicate-resume race: the newer socket always
        wins; the older is told, then closed)."""
        old = session.conn
        if old is not None and old is not conn and old.alive:
            self.counters["fenced"] += 1
            old.session = None  # stop its cleanup from detaching the winner
            asyncio.ensure_future(self._fence_close(old))
        prev = conn.session
        if prev is not None and prev is not session and prev.conn is conn:
            # the socket is switching sessions (duplicated/reordered hello
            # or resume frames): release its previous session cleanly so a
            # stale conn pointer cannot keep it looking live forever
            prev.conn = None
            self._reap_if_orphaned(prev)
        session.generation += 1
        session.conn = conn
        conn.session = session

    async def _fence_close(self, conn: _Conn) -> None:
        try:
            # tell, then close — in this order, on one task, so the close
            # frame cannot overtake the explanation
            await conn.send_json({"t": "fenced", "code": CLOSE_FENCED})
        except (ConnectionError, OSError):
            pass
        await conn._bail(CLOSE_FENCED, "session resumed elsewhere")

    def _reap_if_orphaned(self, session: Session) -> None:
        """Free a session no client can ever resume: its only socket died
        before any frame confirmed the welcome was received, and nothing
        was applied or committed on it.  Without this, a hello whose
        welcome is eaten by the network leaks a member per retry."""
        if (
            not session.confirmed
            and session.applied_count == 0
            and session.seq == 0
            and session.sid in self.sessions
        ):
            self.counters["sessions_reaped"] += 1
            del self.sessions[session.sid]
            self._release_member(session.member)

    def close_session(self, sid: str) -> None:
        session = self.sessions.pop(sid, None)
        if session is None:
            return
        if session.conn is not None:
            session.conn.close()
        self._release_member(session.member)

    def adopt_ingress(self, ingress: Any) -> None:
        """Swap the serving fleet for an upgraded one (the edge side of
        ``upgrade_program``): the program fingerprint changes, live
        sockets are closed with :data:`CLOSE_UPGRADED` (clients
        reconnect and resume), and every session's replay buffer is
        cleared — diffs from the old program version never replay, so a
        stale resume token yields a full snapshot of the new world.
        Member bindings survive where the new fleet still has the index
        (in-place supervised upgrades); others rebind lazily."""
        if isinstance(ingress, MachineFleet):
            ingress = ingress.ingress()
        self.ingress = ingress
        self.fingerprint = ingress.fleet.compiled.fingerprint
        self._chain_instant_hook()
        if self.boot:
            for machine in ingress.fleet:
                if machine.reaction_count == 0:
                    machine.react({})
        self.counters["upgrades"] += 1
        self._session_of_member.clear()
        size = len(ingress.fleet)
        bound: Set[int] = set()
        for session in self.sessions.values():
            session.replay.clear()
            if session.member is not None and session.member < size:
                self._session_of_member[session.member] = session
                bound.add(session.member)
            else:
                session.member = None
        self._free = deque(i for i in range(size) if i not in bound)
        for conn in list(self._conns):
            asyncio.ensure_future(conn._bail(CLOSE_UPGRADED, "program upgraded"))

    # -- connection handling ---------------------------------------------

    async def handle_connection(self, reader: Any, writer: Any = None) -> None:
        """Serve one inbound connection — a real asyncio stream pair or
        a single duplex endpoint (:func:`repro.host.netchaos.memory_pipe`
        end) passed as both roles."""
        if writer is None:
            writer = reader
        self.counters["connections"] += 1
        try:
            head, leftover = await read_http_head(reader)
            start_line, headers = parse_http_head(head)
            parts = start_line.split()
            if len(parts) < 2:
                raise ProtocolError(f"bad request line {start_line!r}")
            method, path = parts[0], parts[1]
        except ProtocolError:
            self.counters["protocol_errors"] += 1
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
            return
        try:
            if headers.get("upgrade", "").lower() == "websocket":
                await self._serve_ws(reader, writer, headers, leftover)
            else:
                await self._serve_http(writer, method, path)
        except (ConnectionError, ProtocolError, OSError):
            self.counters["protocol_errors"] += 1
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _serve_http(self, writer: Any, method: str, path: str) -> None:
        self.counters["http_requests"] += 1
        path = path.split("?", 1)[0]
        if method != "GET":
            writer.write(http_response(400, b'{"error":"GET only"}'))
        elif path == "/healthz":
            body = _json_bytes(self.health_payload()).encode("utf-8")
            writer.write(http_response(200, body))
        elif path == "/statsz":
            body = _json_bytes(self.stats_payload()).encode("utf-8")
            writer.write(http_response(200, body))
        else:
            writer.write(http_response(404, b'{"error":"not found"}'))
        await writer.drain()

    async def _serve_ws(
        self, reader: Any, writer: Any, headers: Dict[str, str], leftover: bytes
    ) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            writer.write(http_response(400, b'{"error":"missing websocket key"}'))
            await writer.drain()
            return
        writer.write(handshake_accept(key))
        await writer.drain()

        conn = _Conn(self, reader, writer)
        self._conns.add(conn)
        conn.start_writer()
        assembler = FrameAssembler()
        try:
            frames = assembler.feed(leftover) if leftover else []
            while conn.alive:
                for frame in frames:
                    conn.last_inbound = time.monotonic()
                    if conn.session is not None:
                        conn.session.confirmed = True
                    if frame.opcode == OP_TEXT:
                        await self._dispatch(conn, frame.payload)
                    elif frame.opcode == OP_PING:
                        await conn.send_raw(encode_frame(OP_PONG, frame.payload))
                    elif frame.opcode == OP_CLOSE:
                        await conn._bail(1000, "bye")
                        return
                    # OP_PONG: inbound-activity timestamp already updated
                if not conn.alive:
                    return
                chunk = await reader.read(65536)
                if not chunk:
                    return
                frames = assembler.feed(chunk)
        except (ConnectionError, OSError):
            pass
        except ProtocolError:
            self.counters["protocol_errors"] += 1
        finally:
            conn.cancel()

    # -- the session protocol --------------------------------------------

    async def _dispatch(self, conn: _Conn, payload: bytes) -> None:
        try:
            msg = json.loads(payload.decode("utf-8"))
            kind = msg["t"]
        except (ValueError, KeyError, UnicodeDecodeError):
            self.counters["protocol_errors"] += 1
            await conn.send_json({"t": "err", "error": "unparseable frame"})
            return
        if kind == "hello":
            await self._on_hello(conn)
        elif kind == "resume":
            await self._on_resume(conn, msg)
        elif kind == "ev":
            await self._on_event(conn, msg)
        elif kind == "sync":
            await self._on_sync(conn, msg)
        elif kind == "bye":
            session = conn.session
            await conn._bail(1000, "bye")
            if session is not None:
                self.close_session(session.sid)
        else:
            self.counters["protocol_errors"] += 1
            await conn.send_json({"t": "err", "error": f"unknown frame {kind!r}"})

    async def _on_hello(self, conn: _Conn, reason: Optional[str] = None) -> None:
        if conn.session is not None:
            # a duplicated hello (at-least-once delivery) on a socket that
            # already owns a session must be idempotent: re-send that
            # session's welcome instead of claiming a second member —
            # otherwise every duplicated hello leaks a member forever
            self.counters["duplicate_hellos"] += 1
            session = conn.session
            await conn.send_json(self._welcome_frame(session, reason))
            return
        member = self._claim_member()
        if member is None:
            self.counters["refused_sessions"] += 1
            await conn.send_json(
                {"t": "busy", "code": 503, "decision": "no-capacity",
                 "retry_ms": 500.0}
            )
            await conn._bail(1013, "no capacity")
            return
        session = Session(self._new_sid(), member, self.fingerprint,
                          replay_limit=self.replay_buffer)
        self.sessions[session.sid] = session
        self._session_of_member[member] = session
        self.counters["sessions"] += 1
        self._attach(session, conn)
        await conn.send_json(self._welcome_frame(session, reason))

    def _welcome_frame(
        self, session: Session, reason: Optional[str] = None
    ) -> Dict[str, Any]:
        welcome = {
            "t": "welcome",
            "sid": session.sid,
            "token": self.token_for(session),
            "member": session.member,
            "seq": session.seq,
            "view": dict(session.view),
            "fingerprint": self.fingerprint,
        }
        if reason is not None:
            welcome["reason"] = reason
        return welcome

    async def _on_resume(self, conn: _Conn, msg: Mapping[str, Any]) -> None:
        self.counters["resumes"] += 1
        token = str(msg.get("token", ""))
        last_seq = int(msg.get("last", 0))
        sid, _, fingerprint = token.partition(".")
        session = self.sessions.get(sid)
        if session is None:
            # unknown (or expired) session: a fresh one, flagged so the
            # client knows its old world is gone
            self.counters["snapshot_unknown"] += 1
            await self._on_hello(conn, reason="unknown-session")
            return
        if not self._bind(session):
            self.counters["refused_sessions"] += 1
            await conn.send_json(
                {"t": "busy", "code": 503, "decision": "no-capacity",
                 "retry_ms": 500.0}
            )
            await conn._bail(1013, "no capacity")
            return
        session.confirmed = True  # presenting the token is proof enough
        self._attach(session, conn)
        if fingerprint != self.fingerprint:
            # a token minted by a previous program version: the replay
            # stream does not survive an upgrade — full snapshot
            self.counters["snapshot_fingerprint"] += 1
            await conn.send_json(
                session.snapshot_frame(self.token_for(session), "fingerprint")
            )
            return
        missed = session.resume_from(last_seq)
        if missed is None:
            self.counters["snapshot_aged_out"] += 1
            await conn.send_json(
                session.snapshot_frame(self.token_for(session), "aged-out")
            )
            return
        self.counters["resumed_replay"] += 1
        self.counters["diffs_replayed"] += len(missed)
        await conn.send_json(
            {"t": "resumed", "sid": session.sid, "token": self.token_for(session),
             "member": session.member, "replayed": len(missed),
             "seq": session.seq, "ack": session.last_event_id}
        )
        # enqueue (not direct-send) so replay keeps strict order with any
        # new diffs the pump commits from here on
        for diff in missed:
            conn.enqueue(diff)

    async def _on_event(self, conn: _Conn, msg: Mapping[str, Any]) -> None:
        session = conn.session
        if session is None:
            # chaos can reorder the event ahead of its hello/resume; echo
            # the id so the client retries promptly instead of timing out
            self.counters["protocol_errors"] += 1
            await conn.send_json(
                {"t": "err", "id": msg.get("id"),
                 "error": "event before hello/resume"}
            )
            return
        self.counters["events"] += 1
        try:
            event_id = int(msg["id"])
            inputs = dict(msg["inputs"])
        except (KeyError, TypeError, ValueError):
            self.counters["protocol_errors"] += 1
            await conn.send_json({"t": "err", "error": "malformed event"})
            return
        if session.is_duplicate(event_id):
            # at-least-once delivery (retransmission, chaos duplication)
            # fenced down to exactly-once application
            session.duplicate_count += 1
            self.counters["events_duplicate"] += 1
            await conn.send_json(
                {"t": "ack", "id": event_id, "decision": "duplicate",
                 "ack": session.last_event_id}
            )
            return
        now_ms = asyncio.get_event_loop().time() * 1000.0
        try:
            decision = self.ingress.offer(session.member, inputs, now_ms)
        except OverloadError:
            # bounded 'reject' mailbox: a structured refusal, not a drop
            self.counters["events_rejected"] += 1
            await conn.send_json(
                {"t": "busy", "id": event_id, "code": 503,
                 "decision": "rejected", "retry_ms": 50.0}
            )
            return
        if decision == RATE_LIMITED:
            self.counters["events_rate_limited"] += 1
            await conn.send_json(
                {"t": "busy", "id": event_id, "code": 429,
                 "decision": RATE_LIMITED, "retry_ms": self._retry_hint_ms()}
            )
            return
        session.record_applied(event_id)
        self.counters["events_applied"] += 1
        self._pending_stamps.setdefault(session.member, []).append(time.perf_counter())
        self._pump_event.set()
        await conn.send_json(
            {"t": "ack", "id": event_id, "decision": decision,
             "ack": session.last_event_id}
        )

    async def _on_sync(self, conn: _Conn, msg: Mapping[str, Any]) -> None:
        """Barrier helper for clients: replies with the session's current
        committed seq — once the client has seen that seq, it holds every
        committed diff."""
        session = conn.session
        if session is None:
            await conn.send_json({"t": "err", "error": "sync before hello/resume"})
            return
        await conn.send_json(
            {"t": "synced", "id": msg.get("id"), "seq": session.seq}
        )

    def _retry_hint_ms(self) -> float:
        bucket = self.ingress.bucket
        if bucket is None:  # pragma: no cover - rate limiting disabled
            return 25.0
        deficit = max(0.0, 1.0 - bucket.tokens)
        return max(1.0, 1000.0 * deficit / bucket.rate_per_s)

    # -- broadcast (conductor pulses in serve mode) ----------------------

    def broadcast(self, inputs: Mapping[str, Any]) -> Dict[int, str]:
        """Offer ``inputs`` to every connected session's member (one
        admission decision each) and wake the pump — the Skini conductor
        pulse at the edge."""
        now_ms = asyncio.get_event_loop().time() * 1000.0
        decisions = {}
        for session in self.sessions.values():
            if session.member is not None:
                decisions[session.member] = self.ingress.offer(
                    session.member, inputs, now_ms
                )
        self._pump_event.set()
        return decisions

    # -- observability ---------------------------------------------------

    def health_payload(self) -> Dict[str, Any]:
        """``/healthz``: liveness + the aggregated
        :attr:`ReactiveMachine.health` counters across the fleet, plus
        the ingress accounting invariant (a violated invariant is a bug
        worth failing a probe over)."""
        fleet = self.ingress.fleet
        failed = aborts = breakers_open = execs_running = 0
        for machine in fleet:
            health = machine.health
            failed += health["failed_reactions"]
            aborts += health["budget_aborts"]
            execs_running += health["execs_running"]
            breakers_open += sum(
                1 for b in health["breakers"].values() if b.get("state") == "open"
            )
        accounting = "ok"
        try:
            self.ingress.check_accounting()
        except MachineError as err:
            accounting = str(err)
        status = "ok" if accounting == "ok" and not failed else "degraded"
        return {
            "status": status,
            "fingerprint": self.fingerprint,
            "members": len(fleet),
            "healthy_members": len(self.ingress.healthy_members()),
            "sessions": len(self.sessions),
            "connections": len(self._conns),
            "failed_reactions": failed,
            "budget_aborts": aborts,
            "execs_running": execs_running,
            "breakers_open": breakers_open,
            "accounting": accounting,
        }

    def stats_payload(self) -> Dict[str, Any]:
        """``/statsz``: the full scrapeable accounting — gateway
        counters, admission decisions (offered/admitted/coalesced/
        rejected/rate-limited), pump latency percentiles, fleet stats."""
        samples = self.latency_samples
        fleet_stats = self.ingress.fleet.stats()
        return {
            "gateway": {
                **self.counters,
                "live_sessions": len(self.sessions),
                "live_connections": len(self._conns),
                "latency_ms": {
                    "samples": len(samples),
                    "p50": round(_percentile(samples, 0.50), 4),
                    "p99": round(_percentile(samples, 0.99), 4),
                },
            },
            "ingress": self.ingress.stats(),
            "fleet": {
                "members": fleet_stats["members"],
                "reactions": fleet_stats["reactions"],
                "backends": fleet_stats["backends"],
            },
        }

    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait until every mailbox is pumped and every outbound queue is
        flushed (the quiesce barrier tests and benchmarks use before
        checking parity).  Returns False on timeout."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            self._pump_event.set()
            await asyncio.sleep(0.005)
            pending = self.ingress.stats()["pending"]
            queued = any(conn.busy for conn in self._conns)
            if not pending and not queued and not self._pumping:
                await asyncio.sleep(0.01)
                if (
                    not self.ingress.stats()["pending"]
                    and not any(conn.busy for conn in self._conns)
                ):
                    return True
        return False

    # -- in-memory client plumbing ---------------------------------------

    def local_connector(
        self, wrap: Optional[Callable[[Any], Any]] = None
    ) -> Callable[[], Any]:
        """A connector for :class:`GatewayClient` that dials this gateway
        over an in-memory duplex pipe (no sockets): each call creates a
        fresh pipe, serves the server end on a task, and returns the
        client end — optionally passed through ``wrap`` (e.g. a seeded
        :class:`~repro.host.netchaos.ChaosTransport`)."""
        from repro.host.netchaos import memory_pipe

        async def connect() -> Tuple[Any, Any]:
            client_end, server_end = memory_pipe()
            task = asyncio.ensure_future(
                self.handle_connection(server_end, server_end)
            )
            # strong ref: a handler parked on a quiet pipe must not be GC'd
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
            transport = wrap(client_end) if wrap is not None else client_end
            return transport, transport

        return connect

    def __repr__(self) -> str:
        return (
            f"Gateway({self.name}, {len(self.sessions)} sessions, "
            f"{len(self._conns)} connections, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


class GatewayClient:
    """The client half of the resumable edge, as a test/load harness.

    Wraps one logical session: connects through ``connector`` (TCP via
    :func:`tcp_connector`, in-memory via :meth:`Gateway.local_connector`,
    either optionally chaos-wrapped), performs the WebSocket handshake
    and the ``hello``/``resume`` exchange, then offers:

    * :meth:`send_event` — closed-loop event submission with exactly-once
      semantics: retransmits the *same* event id across 429/503 refusals
      (after the server's ``retry_ms`` hint, jittered) and across
      connection deaths (after resume), relying on server-side dedupe;
    * automatic reconnect with capped exponential backoff + full jitter
      (``base * 2^attempt``, capped, scaled by a seeded uniform draw) and
      session resume carrying the token and the last seen diff seq;
    * a client-side **view** folded from diffs/snapshots — the parity
      object chaos tests compare against the server's session view.

    A client whose session was fenced (resumed by a newer socket) or
    refused stops reconnecting and flags itself.
    """

    def __init__(
        self,
        connector: Callable[[], Any],
        seed: int = 0,
        name: str = "client",
        base_backoff_ms: float = 20.0,
        max_backoff_ms: float = 1_000.0,
        max_attempts: int = 64,
        ack_timeout_s: float = 15.0,
        connect_timeout_s: float = 5.0,
    ):
        self.connector = connector
        self.name = name
        self.rng = random.Random(seed)
        self.base_backoff_ms = base_backoff_ms
        self.max_backoff_ms = max_backoff_ms
        self.max_attempts = max_attempts
        self.ack_timeout_s = ack_timeout_s
        self.connect_timeout_s = connect_timeout_s

        self.sid: Optional[str] = None
        self.token: Optional[str] = None
        self.member: Optional[int] = None
        self.view: Dict[str, Any] = {}
        self.terminated = False
        self.last_seq = 0
        self.fenced = False
        self.closed = False

        self._transport: Optional[Any] = None
        self._connected = False
        self._conn_lock = asyncio.Lock()
        self._reader_task: Optional[asyncio.Task] = None
        self._session_fut: Optional[asyncio.Future] = None
        self._ack_futures: Dict[int, asyncio.Future] = {}
        self._sync_futures: Dict[int, asyncio.Future] = {}
        self._view_event = asyncio.Event()
        self._next_id = 1
        self._attempt = 0

        self.stats: Dict[str, int] = {
            "connects": 0,
            "reconnects": 0,
            "resumes": 0,
            "replayed": 0,
            "snapshots": 0,
            "backoffs": 0,
            "events_sent": 0,
            "events_admitted": 0,
            "retransmits": 0,
            "busy": 0,
            "duplicate_acks": 0,
            "diffs": 0,
            "stale_diffs": 0,
            "drops": 0,
        }

    # -- connection lifecycle --------------------------------------------

    async def connect(self) -> None:
        async with self._conn_lock:
            if self._connected or self.closed:
                return
            await self._connect_locked()

    async def _connect_locked(self) -> None:
        while not self.closed:
            try:
                # the whole attempt is bounded: chaos can eat any frame of
                # the handshake, and an unanswered upgrade must become a
                # backoff-and-retry, not a hang
                await asyncio.wait_for(
                    self._try_connect(), timeout=self.connect_timeout_s
                )
                self._attempt = 0
                return
            except (ConnectionError, ProtocolError, OSError, asyncio.TimeoutError):
                self._teardown(ConnectionResetError("connect attempt failed"))
                await self._backoff()
        raise ConnectionResetError(f"{self.name}: closed while connecting")

    async def _try_connect(self) -> None:
        reader, writer = await self.connector()
        self.stats["connects"] += 1
        if self.token is not None:
            self.stats["reconnects"] += 1
        # WebSocket upgrade
        request, key = handshake_request("gateway", "/ws")
        writer.write(request)
        await writer.drain()
        head, leftover = await read_http_head(reader)
        start_line, headers = parse_http_head(head)
        if " 101 " not in f" {start_line} ":
            raise ProtocolError(f"upgrade refused: {start_line!r}")
        if headers.get("sec-websocket-accept") != accept_key(key):
            raise ProtocolError("bad Sec-WebSocket-Accept")
        self._transport = writer
        session_fut: asyncio.Future = asyncio.get_event_loop().create_future()
        self._session_fut = session_fut
        self._connected = True
        self._reader_task = asyncio.ensure_future(
            self._read_loop(reader, writer, leftover)
        )
        # hello on first contact, resume with token + last seen seq after
        if self.token is None:
            await self._send_json(writer, {"t": "hello"})
        else:
            self.stats["resumes"] += 1
            await self._send_json(
                writer, {"t": "resume", "token": self.token, "last": self.last_seq}
            )
        await asyncio.wait_for(session_fut, timeout=self.ack_timeout_s)

    async def _backoff(self) -> None:
        self._connected = False
        self._attempt += 1
        if self._attempt > self.max_attempts:
            self.closed = True
            raise ConnectionResetError(
                f"{self.name}: gave up after {self.max_attempts} attempts"
            )
        delay_ms = min(
            self.max_backoff_ms, self.base_backoff_ms * (2 ** (self._attempt - 1))
        )
        # full jitter: uniform in [delay/2, delay) — desynchronizes the
        # reconnect storm the way AWS's "exponential backoff and jitter"
        # note prescribes
        delay_ms *= 0.5 + self.rng.random() * 0.5
        self.stats["backoffs"] += 1
        await asyncio.sleep(delay_ms / 1000.0)

    async def _ensure_connected(self) -> None:
        if self._connected and not self.closed:
            return
        await self.connect()

    def drop_connection(self) -> None:
        """Simulate abrupt network loss (the storm driver's hook): the
        transport dies; the next operation reconnects and resumes."""
        transport = self._transport
        if transport is None:
            return
        self.stats["drops"] += 1
        abort = getattr(transport, "abort", None)
        if abort is not None:
            abort()
        else:  # pragma: no cover - plain StreamWriter
            transport.close()

    async def close(self) -> None:
        """Polite shutdown: best-effort ``bye``, then tear down."""
        self.closed = True
        transport = self._transport
        if transport is not None and self._connected:
            try:
                await self._send_json(transport, {"t": "bye"})
            except (ConnectionError, OSError):
                pass
        self._teardown(ConnectionResetError("client closed"))
        if self._reader_task is not None:
            self._reader_task.cancel()

    def _drop_transport(self, writer: Any) -> None:
        """Retire ``writer`` if it is still the live transport — called on
        send failures, which surface *synchronously* on a dead chaos
        transport, before the reader task ever gets to notice."""
        if writer is not None and self._transport is writer:
            self._teardown(ConnectionResetError("transport failed mid-send"))

    def _teardown(self, error: Exception) -> None:
        self._connected = False
        transport, self._transport = self._transport, None
        if transport is not None:
            try:
                transport.close()
            except (ConnectionError, OSError):
                pass
        for fut in (*self._ack_futures.values(), *self._sync_futures.values()):
            if not fut.done():
                fut.set_exception(error)
                fut.exception()  # pre-retrieve: the waiter may be gone
        self._ack_futures.clear()
        self._sync_futures.clear()
        fut = self._session_fut
        if fut is not None and not fut.done():
            fut.set_exception(error)
            fut.exception()

    # -- the reader ------------------------------------------------------

    async def _read_loop(self, reader: Any, writer: Any, leftover: bytes) -> None:
        assembler = FrameAssembler()
        try:
            frames = assembler.feed(leftover) if leftover else []
            while True:
                for frame in frames:
                    if frame.opcode == OP_TEXT:
                        self._on_message(json.loads(frame.payload.decode("utf-8")))
                    elif frame.opcode == OP_PING:
                        await self._send_raw(
                            writer, encode_frame(OP_PONG, frame.payload, mask=True)
                        )
                    elif frame.opcode == OP_CLOSE:
                        raise ConnectionResetError("server closed")
                chunk = await reader.read(65536)
                if not chunk:
                    raise ConnectionResetError("connection lost")
                frames = assembler.feed(chunk)
        except (ConnectionError, ProtocolError, OSError, ValueError) as err:
            if self._transport is writer:
                self._teardown(
                    err if isinstance(err, ConnectionError)
                    else ConnectionResetError(str(err))
                )
        except asyncio.CancelledError:  # pragma: no cover - teardown path
            pass

    def _on_message(self, msg: Dict[str, Any]) -> None:
        kind = msg.get("t")
        if kind == "diff":
            seq = msg["seq"]
            if seq <= self.last_seq:
                self.stats["stale_diffs"] += 1
                return
            self.view.update(msg["emitted"])
            self.last_seq = seq
            if msg.get("terminated"):
                self.terminated = True
            self.stats["diffs"] += 1
            self._view_event.set()
        elif kind in ("ack", "busy", "err"):
            fut = self._ack_futures.get(msg.get("id"))
            if fut is not None and not fut.done():
                fut.set_result(msg)
        elif kind == "welcome":
            self.sid = msg["sid"]
            self.token = msg["token"]
            self.member = msg["member"]
            self.view = dict(msg["view"])
            self.last_seq = msg["seq"]
            if msg.get("reason") == "unknown-session":
                self.stats["snapshots"] += 1
            self._resolve_session(msg)
        elif kind == "resumed":
            self.token = msg["token"]
            self.member = msg["member"]
            self.stats["replayed"] += msg.get("replayed", 0)
            self._resolve_session(msg)
        elif kind == "snapshot":
            self.token = msg["token"]
            self.member = msg["member"]
            self.view = dict(msg["view"])
            self.last_seq = msg["seq"]
            self.terminated = bool(msg.get("terminated"))
            self.stats["snapshots"] += 1
            self._view_event.set()
            self._resolve_session(msg)
        elif kind == "synced":
            fut = self._sync_futures.get(msg.get("id"))
            if fut is not None and not fut.done():
                fut.set_result(msg["seq"])
        elif kind == "fenced":
            self.fenced = True
            self.closed = True
        # "err" frames surface through ack timeouts; nothing to resolve

    def _resolve_session(self, msg: Dict[str, Any]) -> None:
        # adopt the session's applied-event watermark: a client taking
        # over an existing session (resume from another device) must not
        # reuse event ids the server already fenced as applied
        self._next_id = max(self._next_id, int(msg.get("ack", 0)) + 1)
        fut = self._session_fut
        if fut is not None and not fut.done():
            fut.set_result(msg)

    # -- sending ---------------------------------------------------------

    async def _send_raw(self, writer: Any, data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    async def _send_json(self, writer: Any, obj: Mapping[str, Any]) -> None:
        await self._send_raw(writer, encode_text(_json_bytes(obj), mask=True))

    async def send_event(
        self, inputs: Mapping[str, Any], max_refusals: int = 200
    ) -> str:
        """Submit one input event and return its final admission decision
        (``admitted`` / ``coalesced``).  Survives refusals (waits out the
        server's ``retry_ms`` hint) and connection deaths (reconnects,
        resumes, retransmits the same event id — the server dedupes)."""
        event_id = self._next_id
        self._next_id += 1
        self.stats["events_sent"] += 1
        payload = {"t": "ev", "id": event_id, "inputs": dict(inputs)}
        refusals = 0
        while True:
            if self.closed:
                raise ConnectionResetError(f"{self.name}: closed")
            writer = None
            try:
                await self._ensure_connected()
                writer = self._transport
                fut: asyncio.Future = asyncio.get_event_loop().create_future()
                self._ack_futures[event_id] = fut
                await self._send_json(writer, payload)
                ack = await asyncio.wait_for(fut, timeout=self.ack_timeout_s)
            except (ConnectionError, ProtocolError, OSError, asyncio.TimeoutError):
                if self.closed:
                    raise ConnectionResetError(f"{self.name}: closed") from None
                self._drop_transport(writer)
                self.stats["retransmits"] += 1
                await asyncio.sleep(0)
                continue
            finally:
                self._ack_futures.pop(event_id, None)
            decision = ack.get("decision")
            if ack.get("t") == "err":
                # the server saw the event out of order (e.g. reordered
                # ahead of the resume); settle and retransmit
                self.stats["retransmits"] += 1
                await asyncio.sleep(0.01)
                continue
            if ack.get("t") == "busy":
                refusals += 1
                self.stats["busy"] += 1
                if refusals > max_refusals:
                    raise OverloadError(
                        f"{self.name}: event {event_id} refused "
                        f"{refusals} times ({decision})",
                        inputs=dict(inputs),
                        pending=0,
                    )
                retry_ms = float(ack.get("retry_ms", 25.0))
                await asyncio.sleep(
                    retry_ms * (1.0 + self.rng.random()) / 1000.0
                )
                continue
            if decision == "duplicate":
                # it *was* applied — the original ack got lost in chaos
                self.stats["duplicate_acks"] += 1
                decision = "admitted"
            self.stats["events_admitted"] += 1
            return decision

    # -- synchronization -------------------------------------------------

    async def sync(self, timeout_s: float = 15.0) -> int:
        """Barrier: learn the server's committed seq for this session and
        wait until the local view has caught up to it (reconnecting and
        resuming as needed).  Returns the synced seq."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout_s
        while True:
            if loop.time() > deadline:
                raise asyncio.TimeoutError(f"{self.name}: sync timed out")
            sync_id = self._next_id
            self._next_id += 1
            writer = None
            try:
                await self._ensure_connected()
                writer = self._transport
                fut: asyncio.Future = loop.create_future()
                self._sync_futures[sync_id] = fut
                await self._send_json(writer, {"t": "sync", "id": sync_id})
                target = await asyncio.wait_for(fut, timeout=self.ack_timeout_s)
            except (ConnectionError, ProtocolError, OSError, asyncio.TimeoutError):
                if self.closed:
                    raise
                self._drop_transport(writer)
                await asyncio.sleep(0)
                continue
            finally:
                self._sync_futures.pop(sync_id, None)
            if self.last_seq >= target:
                return target
            # diffs (or the replay) are still in flight; wait for them
            try:
                self._view_event.clear()
                await asyncio.wait_for(
                    self._view_event.wait(),
                    timeout=max(0.01, min(1.0, deadline - loop.time())),
                )
            except asyncio.TimeoutError:
                continue

    async def wait_view(
        self, predicate: Callable[[Dict[str, Any]], bool], timeout_s: float = 15.0
    ) -> Dict[str, Any]:
        """Wait until the client-side view satisfies ``predicate``."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout_s
        while not predicate(self.view):
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError(
                    f"{self.name}: view never satisfied predicate "
                    f"(view={self.view!r})"
                )
            try:
                self._view_event.clear()
                await asyncio.wait_for(
                    self._view_event.wait(), timeout=min(1.0, remaining)
                )
            except asyncio.TimeoutError:
                continue
        return self.view

    def __repr__(self) -> str:
        state = (
            "fenced" if self.fenced else
            "closed" if self.closed else
            "connected" if self._connected else "disconnected"
        )
        return f"GatewayClient({self.name}, {state}, sid={self.sid!r})"


def tcp_connector(host: str, port: int) -> Callable[[], Any]:
    """A :class:`GatewayClient` connector dialing a real TCP gateway."""

    async def connect() -> Tuple[Any, Any]:
        return await asyncio.open_connection(host, port)

    return connect
