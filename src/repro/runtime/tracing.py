"""Reaction tracing: record and render what a reactive machine did.

Temporal bugs are hard to read off imperative logs; a trace of reactions
— which inputs arrived, which outputs fired, when the program paused or
terminated — is the natural debugging view for synchronous programs.

Usage::

    from repro.runtime.tracing import Tracer

    tracer = Tracer(machine)          # wraps machine.react
    ... drive the machine ...
    print(tracer.render())            # timeline, one line per reaction
    tracer.events("connState")        # [(reaction#, value), ...]

The tracer is non-invasive: it observes inputs/results only, adds no
signals, and can be detached.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class ReactionRecord:
    """Everything observable about one reaction."""

    __slots__ = ("index", "inputs", "outputs", "statuses", "paused", "terminated", "health")

    def __init__(
        self,
        index: int,
        inputs: Dict[str, Any],
        result: Any,
        health: Optional[Dict[str, Any]] = None,
    ):
        self.index = index
        self.inputs = dict(inputs)
        self.outputs = dict(result)
        self.statuses = dict(result.statuses)
        self.paused = result.paused
        self.terminated = result.terminated
        #: the machine's health snapshot right after this reaction (None
        #: when the traced object exposes no ``health``)
        self.health = health

    def describe(self) -> str:
        def fmt(d: Dict[str, Any]) -> str:
            parts = []
            for key in sorted(d):
                value = d[key]
                parts.append(key if value in (True, None) else f"{key}={value!r}")
            return "{" + ", ".join(parts) + "}"

        state = "TERMINATED" if self.terminated else ("paused" if self.paused else "")
        return (
            f"#{self.index:<4} in {fmt(self.inputs):<30} "
            f"out {fmt(self.outputs):<34} {state}"
        ).rstrip()

    def __repr__(self) -> str:
        return f"ReactionRecord({self.describe()})"


class Tracer:
    """Wraps a machine's ``react`` and accumulates
    :class:`ReactionRecord` entries."""

    def __init__(self, machine: Any, limit: Optional[int] = None):
        self.machine = machine
        self.records: List[ReactionRecord] = []
        self.limit = limit
        self._counter = 0
        self._original = machine.react
        machine.react = self._traced_react  # type: ignore[method-assign]
        self._attached = True

    def _traced_react(self, inputs: Optional[Dict[str, Any]] = None):
        inputs = inputs or {}
        result = self._original(inputs)
        health = getattr(self.machine, "health", None)
        self.records.append(ReactionRecord(self._counter, inputs, result, health))
        self._counter += 1
        if self.limit is not None and len(self.records) > self.limit:
            self.records.pop(0)
        return result

    def detach(self) -> None:
        """Restore the machine's original ``react``."""
        if self._attached:
            self.machine.react = self._original
            self._attached = False

    def clear(self) -> None:
        self.records.clear()

    # -- queries ----------------------------------------------------------

    def events(self, signal: str) -> List[Tuple[int, Any]]:
        """Reactions in which ``signal`` was emitted, with its value."""
        return [
            (r.index, r.outputs[signal]) for r in self.records if signal in r.outputs
        ]

    def reactions_with_input(self, signal: str) -> List[int]:
        return [r.index for r in self.records if signal in r.inputs]

    def final_state(self) -> Optional[str]:
        if not self.records:
            return None
        last = self.records[-1]
        return "terminated" if last.terminated else ("paused" if last.paused else "idle")

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """A one-line-per-reaction timeline."""
        return "\n".join(r.describe() for r in self.records)

    def render_signal_grid(self, signals: List[str]) -> str:
        """A waveform-ish grid: rows are signals, columns reactions;
        ``#`` marks presence (as input or output)."""
        header = "reaction   " + " ".join(f"{r.index % 10}" for r in self.records)
        lines = [header]
        for name in signals:
            cells = []
            for record in self.records:
                present = name in record.inputs or record.statuses.get(name, False)
                cells.append("#" if present else ".")
            lines.append(f"{name:<10} " + " ".join(cells))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
