"""Run-time state of ``async`` (exec) statements.

Each compiled exec occurrence owns an :class:`ExecState` slot.  Starting
the statement creates a fresh *invocation* (generation); `notify` calls
from stale invocations — killed or already completed — are ignored, which
is how the paper's login example discards pending authentications
automatically when a new ``login`` preempts the old one.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.lang.ast import ExecContext


class ExecFailure:
    """One caught exception from an exec host action (start/kill/suspend/
    resume), as recorded on :attr:`ExecState.last_error` and handed to
    ``on_exec_error`` callbacks."""

    __slots__ = ("slot", "phase", "error", "reaction")

    def __init__(self, slot: int, phase: str, error: BaseException, reaction: int):
        self.slot = slot
        self.phase = phase
        self.error = error
        self.reaction = reaction

    def __repr__(self) -> str:
        return (
            f"ExecFailure(slot={self.slot}, phase={self.phase!r}, "
            f"reaction={self.reaction}, error={self.error!r})"
        )


class ExecHandle(ExecContext):
    """The object bound to ``this`` in async bodies.

    Besides :meth:`notify` and :meth:`react` it is a free-form attribute
    bag, so host code can stash resources on it (``this.intv = ...`` in the
    paper's Timer module).
    """

    def __init__(self, machine: Any, slot: int, generation: int, scope: Dict[str, int]):
        self._machine = machine
        self._slot = slot
        self._generation = generation
        self._scope = scope

    # -- ExecContext API ------------------------------------------------

    def notify(self, value: Any = None) -> None:
        self._machine.notify_exec(self._slot, self._generation, value)

    def react(self, inputs: Optional[Dict[str, Any]] = None) -> None:
        self._machine.queue_react(inputs or {})

    @property
    def machine(self) -> Any:
        return self._machine

    @property
    def env(self):
        """Evaluation environment scoped to the exec's signal bindings."""
        return self._machine.env_for(self._scope)

    @property
    def alive(self) -> bool:
        """True while this invocation is the exec's current one."""
        state = self._machine.exec_state(self._slot)
        return state.running and state.generation == self._generation


class ExecState:
    """Machine-side bookkeeping for one exec slot."""

    __slots__ = (
        "slot",
        "running",
        "generation",
        "pending",
        "pending_value",
        "handle",
        "scope",
        "started_live",
        "last_error",
    )

    def __init__(self, slot: int):
        self.slot = slot
        self.running = False
        self.generation = 0
        self.pending = False
        self.pending_value: Any = None
        self.handle: Optional[ExecHandle] = None
        #: the lexical signal scope of the current invocation; kept after
        #: the handle so machine snapshots can serialize it and
        #: ``restart_execs`` can re-issue the host work after a restore
        self.scope: Optional[Dict[str, int]] = None
        #: whether the start action actually ran for this invocation —
        #: False for handles rebuilt during replay/restore, whose kill/
        #: suspend/resume cleanups must be suppressed (there is no host
        #: resource behind them)
        self.started_live = False
        #: the most recent :class:`ExecFailure` of this slot (persists
        #: until the next invocation starts, for post-mortem inspection)
        self.last_error: Optional[ExecFailure] = None

    def start(self, machine: Any, scope: Dict[str, int]) -> ExecHandle:
        self.generation += 1
        self.running = True
        self.pending = False
        self.pending_value = None
        self.last_error = None
        self.scope = dict(scope)
        self.handle = ExecHandle(machine, self.slot, self.generation, scope)
        return self.handle

    def stop(self) -> None:
        self.running = False
        self.pending = False
        self.pending_value = None
        self.generation += 1  # invalidate outstanding handles

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return f"ExecState(#{self.slot} {state}, gen {self.generation})"
