"""The lockstep fleet engine: word-parallel reactions over bit-packed state.

:class:`LockstepFleet` is the runtime half of the bit-parallel backend
(the compile half is :mod:`repro.compiler.wordplan`).  It owns the packed
*bitplanes* of every **word-resident** fleet member:

* ``R[k]`` — register slot ``k`` across members (bit ``b`` = member in
  bit-slot ``b``);
* ``NOW[s]`` / ``PRE[s]`` — signal slot ``s``'s current/previous-instant
  presence across members.

One :meth:`react` call runs one logical instant for every addressed
resident member: per-member ``begin_instant`` on the (few) active signal
slots, a plane-level ``pre := now`` roll, one call of the compiled word
function, then plane/attr reconciliation and per-member
:class:`~repro.runtime.machine.ReactionResult` construction.  Members
whose instant stayed *quiescent* (no outputs present, not terminating,
uniform pause bit) share a single result object, so a broadcast over a
mostly-idle audience costs a handful of word operations plus O(active)
per member rather than O(circuit) per member.

Invariants the engine maintains (and the parity suite checks):

* **Attrs are authoritative.**  Every member's ``RuntimeSignal``
  attributes (``now``/``pre``/``nowval``/``preval``/``emitted``),
  ``terminated``, counters, exec slots and frame are kept exactly as the
  scalar backends would — mid-instant payload reads (``sig.pre``,
  ``sig.nowval``) and between-instant host reads see identical values.
  Planes are a packed mirror used only by the word function.
* **Divergence demotes.**  Anything the word cannot express — exec-block
  activity, deferred sub-instants, payload failures, or any external
  access to the machine (direct ``react``/``snapshot``/``restore``/
  ``reset``/``replay``, journal or mailbox attachment) — exports the
  member's bits back into its scalar scheduler (the exact
  ``restore()`` pattern) and clears its bit in *every* plane, so a later
  promotion only ORs true bits into zeroed columns.  Demoted members
  rejoin the word automatically after their next clean scalar reaction
  in a fleet batch.
* **Failure is per-member.**  A payload exception aborts only that
  member's bit: its registers stay unlatched, its statuses absent, its
  ``reaction_count`` unincremented and the exception is reported through
  the fleet's :class:`~repro.errors.FleetReactionError`, exactly like a
  failed scalar reaction.

The one observable (and documented) difference from driving members
scalar-by-scalar: payload host effects are interleaved net-major (net
order outer, member order inner) instead of member-major.  *Per member*
the effect order is byte-identical; only host sinks shared across
members can see the transposed interleaving.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import MachineError
from repro.compiler.plan import KIND_ACTION
from repro.compiler.wordplan import WordPlan, build_word_plan
from repro.runtime.machine import ReactionResult, ReactiveMachine

#: demotion causes, in the order stats report them
DEMOTION_CAUSES = ("external", "exec", "deferred", "error")

#: set-bit positions per byte value, for O(members/8) column iteration
_BYTE_BITS = tuple(
    tuple(b for b in range(8) if (value >> b) & 1) for value in range(256)
)


def _bits_of(mask: int) -> List[int]:
    """The set bit positions of ``mask``, ascending (byte-table walk:
    linear in the column width, not quadratic like repeated shifting)."""
    out: List[int] = []
    if not mask:
        return out
    base = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
        if byte:
            for b in _BYTE_BITS[byte]:
                out.append(base + b)
        base += 8
    return out


class _WordValues:
    """Member-slice view of the net columns: ``values[i]`` is member
    ``bit``'s value of net ``i``, so :class:`_MachineEnv.signal_now`
    reads resolve against the in-progress word sweep."""

    __slots__ = ("W", "bit")

    def __init__(self) -> None:
        self.W: List[int] = []
        self.bit = 0

    def __getitem__(self, net_id: int) -> int:
        return (self.W[net_id] >> self.bit) & 1


class _WordView:
    """Stand-in scheduler installed on a member while one of its payloads
    fires from the word sweep; only ``.values`` is ever read mid-payload."""

    __slots__ = ("values",)

    def __init__(self, values: _WordValues) -> None:
        self.values = values


class LockstepFleet:
    """Packed-state store and word-reaction engine for one fleet (see the
    module docstring; constructed by :class:`~repro.runtime.fleet.MachineFleet`
    when the plan is pure and the backend policy enables lockstep)."""

    def __init__(self, plan: Any, word_plan: Optional[WordPlan] = None):
        if not plan.is_pure:
            raise MachineError(
                f"backend='lockstep' requires a pure straight-line plan; "
                f"{plan.circuit.name!r} has cyclic relaxation blocks "
                f"(constructive-but-cyclic circuits stay on the scalar "
                f"backends)"
            )
        self.plan = plan
        self.word_plan = word_plan or build_word_plan(plan)
        circuit = plan.circuit
        self._payloads = plan.payloads
        self._kind_code = plan.kind_code
        self._k0 = circuit.k0_net.id
        self._k1 = circuit.k1_net.id
        #: (slot, status net id) for every signal instance
        self._status_pairs = self.word_plan.status_net_of_slot
        self._iface_slots: Tuple[Tuple[str, int], ...] = tuple(
            (name, info.slot) for name, info in circuit.interface.items()
        )
        self._out_slots: Tuple[Tuple[str, int, int], ...] = tuple(
            (name, info.slot, info.status_net.id)
            for name, info in circuit.interface.items()
            if info.direction in ("out", "inout")
        )
        self._interface = circuit.interface
        self._valid_inputs = sorted(
            name
            for name, info in circuit.interface.items()
            if info.input_net is not None
        )
        self._has_execs = bool(circuit.execs)
        self._init_reg_slots = tuple(
            slot for slot, net in enumerate(plan.registers) if net.init
        )

        # -- bitplanes ---------------------------------------------------
        self.R: List[int] = [0] * len(plan.registers)
        self.NOW: List[int] = [0] * len(circuit.signals)
        self.PRE: List[int] = [0] * len(circuit.signals)

        # -- membership --------------------------------------------------
        self._member_of: Dict[int, ReactiveMachine] = {}
        self._actives: Dict[int, Set[int]] = {}
        self._resident = 0
        self._term = 0
        self._free: List[int] = []
        self._width = 0
        #: bits whose active-slot set is non-empty (lets the word instant
        #: skip begin_instant and the slow epilogue for inert members)
        self._active_bits = 0
        #: bumped on every membership change; the fleet keys its cached
        #: full-broadcast batch partition on this
        self.generation = 0

        # -- per-react scratch (rebound each instant) --------------------
        self._run = 0
        self._ab = [0]
        self._fired_bits = 0
        self._fire_errors: Dict[int, Exception] = {}
        self._values = _WordValues()
        self._view = _WordView(self._values)

        # -- observability ----------------------------------------------
        self.promotions = 0
        self.demotions: Dict[str, int] = {cause: 0 for cause in DEMOTION_CAUSES}
        self.word_instants = 0
        self.payload_fires = 0
        self.shared_results = 0
        self.special_results = 0

    # ------------------------------------------------------------------
    # membership: promotion and demotion
    # ------------------------------------------------------------------

    @property
    def resident_count(self) -> int:
        return len(self._member_of)

    def eligible(self, machine: ReactiveMachine) -> bool:
        """A member can live in the word only while nothing about it
        needs scalar machinery between instants: no journal or mailbox
        (those wrap ``react`` with per-instant bookkeeping), no reaction
        budget, no live or pending exec invocation, no queued deferred
        reactions, and not mid-react/replay."""
        return (
            machine._journal is None
            and machine._mailbox is None
            and machine.reaction_budget is None
            and not machine._deferred
            and not machine._reacting
            and not machine._replaying
            and not any(s.running or s.pending for s in machine._execs)
        )

    def try_promote(self, machine: ReactiveMachine) -> bool:
        if machine._lockstep is not None or not self.eligible(machine):
            return False
        self.promote(machine)
        return True

    def _alloc_bit(self) -> int:
        if self._free:
            return self._free.pop()
        bit = self._width
        self._width += 1
        return bit

    def promote(self, machine: ReactiveMachine) -> int:
        """Import ``machine``'s between-instant state into the planes.
        The machine keeps its scalar scheduler (stale while resident);
        :meth:`demote` re-exports before any scalar code touches it."""
        bit = self._alloc_bit()
        mask = 1 << bit
        self._member_of[bit] = machine
        self._resident |= mask
        machine._lockstep = self
        machine._lockstep_bit = bit
        R = self.R
        for slot, value in enumerate(machine._scheduler.state):
            if value:
                R[slot] |= mask
        NOW, PRE = self.NOW, self.PRE
        active: Set[int] = set()
        for sig in machine._signals:
            if sig.now:
                NOW[sig.slot] |= mask
            if sig.pre:
                PRE[sig.slot] |= mask
            if sig.now or sig.pre or sig.emitted or sig.nowval is not sig.preval:
                active.add(sig.slot)
        self._actives[bit] = active
        if active:
            self._active_bits |= mask
        if machine.terminated:
            self._term |= mask
        self.promotions += 1
        self.generation += 1
        return bit

    def promote_fresh(self, machines: List[ReactiveMachine]) -> int:
        """Bulk-promote freshly spawned members: they all carry the boot
        pattern (init registers, inert signals), so the planes take one
        OR of a contiguous mask per init register instead of a per-member
        state walk.  Returns how many were promoted (0 when the fleet's
        machine defaults make members ineligible, e.g. a reaction
        budget)."""
        if not machines or not self.eligible(machines[0]):
            return 0
        mask_new = 0
        for machine in machines:
            bit = self._alloc_bit()
            mask_new |= 1 << bit
            self._member_of[bit] = machine
            machine._lockstep = self
            machine._lockstep_bit = bit
            self._actives[bit] = set()
        self._resident |= mask_new
        R = self.R
        for slot in self._init_reg_slots:
            R[slot] |= mask_new
        self.promotions += len(machines)
        self.generation += 1
        return len(machines)

    def demote(self, machine: ReactiveMachine, cause: str) -> None:
        """Export ``machine``'s bits back into its scalar scheduler and
        signal-tracking sets (the ``restore()`` pattern: ``clear_state``
        flags the sparse backend for a rebuilding full sweep), then zero
        its bit in every plane so the slot can be reused cleanly."""
        bit = machine._lockstep_bit
        mask = 1 << bit
        inv = ~mask
        scheduler = machine._scheduler
        scheduler.clear_state()
        state = scheduler.state  # fetched after clear_state: may rebind
        R = self.R
        for slot in range(len(state)):
            state[slot] = bool(R[slot] & mask)
            R[slot] &= inv
        NOW, PRE = self.NOW, self.PRE
        for slot in range(len(NOW)):
            NOW[slot] &= inv
            PRE[slot] &= inv
        present: Set[int] = set()
        active: Set[int] = set()
        for sig in machine._signals:
            if sig.now:
                present.add(sig.slot)
            if sig.now or sig.pre or sig.emitted or sig.nowval is not sig.preval:
                active.add(sig.slot)
        machine._present_slots = present
        machine._active_slots = active
        machine._touched_slots.clear()
        del self._member_of[bit]
        del self._actives[bit]
        self._resident &= inv
        self._term &= inv
        self._active_bits &= inv
        self.generation += 1
        self._free.append(bit)
        machine._lockstep = None
        machine._lockstep_bit = -1
        self.demotions[cause] = self.demotions.get(cause, 0) + 1

    # ------------------------------------------------------------------
    # the word instant
    # ------------------------------------------------------------------

    def _fire(self, net_id: int, enable_col: int) -> int:
        """Fire net ``net_id``'s scalar payload for every enabled,
        non-aborted member of the running word; returns the result
        column.  A raising payload aborts only that member's bit."""
        enable_col &= self._run & ~self._ab[0]
        if not enable_col:
            return 0
        self._fired_bits |= enable_col
        payload = self._payloads[net_id]
        is_action = self._kind_code[net_id] == KIND_ACTION
        members = self._member_of
        values = self._values
        view = self._view
        out = 0
        for bit in _bits_of(enable_col):
            machine = members[bit]
            values.bit = bit
            saved = machine._scheduler
            machine._scheduler = view
            machine._reacting = True
            self.payload_fires += 1
            try:
                result = payload(machine)
            except Exception as err:
                self._ab[0] |= 1 << bit
                self._fire_errors[bit] = err
                continue
            finally:
                machine._reacting = False
                machine._scheduler = saved
            if is_action or result:
                out |= 1 << bit
        return out

    def react(
        self,
        batch: List[Tuple[int, int, Dict[str, Any]]],
        shared: Optional[Dict[str, Any]] = None,
    ) -> Tuple[
        Optional[ReactionResult],
        Dict[int, ReactionResult],
        Dict[int, Exception],
    ]:
        """One instant for the addressed resident members.

        ``batch`` is ``[(fleet index, bit, inputs), ...]``; when
        ``shared`` is not None every member got that same input map (the
        broadcast fast path, enabling the shared quiescent result).

        Returns ``(default_result, specials, failures)``: members whose
        fleet index is in neither dict produced ``default_result``.
        """
        members = self._member_of
        actives = self._actives
        interface = self._interface
        if len(batch) == len(members):
            # a full broadcast addresses every resident member
            run = self._resident
        else:
            run = 0
            for _, bit, _ in batch:
                run |= 1 << bit
        began = run
        failures: Dict[int, Exception] = {}
        specials: Dict[int, ReactionResult] = {}

        # 1. begin_instant, per member over its active slots only (a
        # no-op on inert signals, and every non-inert slot is active by
        # the promote/refresh invariants — members with empty active
        # sets are skipped wholesale via the _active_bits mask).
        for bit in _bits_of(began & self._active_bits):
            signals = members[bit]._signals
            for slot in actives[bit]:
                signals[slot].begin_instant()

        # 2. plane-level pre := now roll for every member that began the
        # instant (exact for inert slots too: both bits are zero).
        NOW, PRE = self.NOW, self.PRE
        not_began = ~began
        for slot in range(len(NOW)):
            now_col = NOW[slot]
            PRE[slot] = (PRE[slot] & not_began) | (now_col & began)
            NOW[slot] = now_col & not_began

        # 3. inputs: presence columns for the word function, value writes
        # on the member signals.  Scalar parity on a bad name: writes
        # before it stand, the member fails without running the sweep.
        IM: Dict[int, int] = {}
        written_shared: List[Tuple[int, Any]] = []
        if shared is not None:
            for name, value in shared.items():
                info = interface.get(name)
                if info is None or info.input_net is None:
                    err = MachineError(
                        f"unknown input signal {name!r}; machine inputs: "
                        f"{self._valid_inputs}"
                    )
                    for index, bit, _ in batch:
                        failures[index] = err
                        machine = members[bit]
                        machine._failed_reactions += 1
                        machine._deferred.clear()
                    run = 0
                    break
                slot = info.slot
                written_shared.append((slot, value))
                IM[info.input_net.id] = run
                for _, bit, _ in batch:
                    sig = members[bit]._signals[slot]
                    # begin_instant reset emitted, so this is the first
                    # write of the instant: plain assignment, no combine
                    sig.nowval = value
                    sig.emitted = 1
                    # active immediately: if this instant fails (a later
                    # input name is unknown), the next begin_instant must
                    # still reset this signal's emit counter
                    actives[bit].add(slot)
                self._active_bits |= began
        else:
            for index, bit, inputs in batch:
                machine = members[bit]
                signals = machine._signals
                for name, value in inputs.items():
                    info = interface.get(name)
                    if info is None or info.input_net is None:
                        failures[index] = MachineError(
                            f"unknown input signal {name!r}; machine "
                            f"inputs: {self._valid_inputs}"
                        )
                        machine._failed_reactions += 1
                        machine._deferred.clear()
                        run &= ~(1 << bit)
                        break
                    slot = info.slot
                    sig = signals[slot]
                    sig.nowval = value
                    sig.emitted = 1
                    actives[bit].add(slot)
                    self._active_bits |= 1 << bit
                    IM[info.input_net.id] = IM.get(info.input_net.id, 0) | (
                        1 << bit
                    )

        # 4. the compiled word sweep (one evaluation per net per word)
        W = [0] * len(self.plan.circuit.nets)
        self._values.W = W
        self._run = run
        self._ab[0] = 0
        self._fired_bits = 0
        self._fire_errors.clear()
        if run:
            self.word_instants += 1
            self.word_plan.fn(W, self.R, IM, PRE, run, self._fire, self._ab)
        aborted = self._ab[0]
        ok = run & ~aborted

        # 5. reconcile planes and attrs; collect the specials mask.
        out_present = 0
        for slot, status_id in self._status_pairs:
            col = W[status_id] & ok
            if col:
                NOW[slot] |= col
                self._active_bits |= col
                for bit in _bits_of(col):
                    members[bit]._signals[slot].now = True
                    actives[bit].add(slot)
        k0_col = W[self._k0] & ok
        k1_col = W[self._k1] & ok
        if k0_col:
            for bit in _bits_of(k0_col):
                members[bit].terminated = True
            self._term |= k0_col
        for name, slot, status_id in self._out_slots:
            out_present |= W[status_id] & ok

        # Aborted members: scalar failed-react semantics (registers were
        # masked out of the latch by the word function; statuses absent;
        # count the failure) and a demotion, so their next instant runs
        # scalar with freshly rebuilt tracking state.
        if aborted:
            for index, bit, _ in batch:
                if (aborted >> bit) & 1:
                    machine = members[bit]
                    failures[index] = self._fire_errors[bit]
                    machine._failed_reactions += 1
                    machine._deferred.clear()
                    self.demote(machine, "error")

        special_mask = out_present | k0_col | (self._term & ok)
        if shared is None:
            special_mask = ok
        shared_bits = ok & ~special_mask
        if shared_bits:
            k1_shared = k1_col & shared_bits
            if k1_shared and k1_shared != shared_bits:
                # non-uniform pause bit: the minority side gets
                # individual results, the majority keeps the shared one
                if 2 * k1_shared.bit_count() <= shared_bits.bit_count():
                    special_mask |= k1_shared
                else:
                    special_mask |= shared_bits ^ k1_shared
                shared_bits = ok & ~special_mask

        # 6. per-member epilogue: counts, results, active-set refresh,
        # divergence demotions, deferred drains.
        default_result: Optional[ReactionResult] = None
        if shared_bits:
            shared_paused = bool(k1_col & shared_bits)
            written_slot_set = {slot for slot, _ in written_shared}
            shared_statuses = {
                name: slot in written_slot_set
                for name, slot in self._iface_slots
            }
            default_result = ReactionResult(
                {}, shared_statuses, False, shared_paused
            )
            self.shared_results += shared_bits.bit_count()

        # Quiescent members with inert signal sets and no payload fires
        # this instant need nothing from the slow epilogue: their result
        # is the shared one, their active sets stay empty, no payload can
        # have queued deferred work or started an exec, and the listener
        # walk over an empty emitted dict is a no-op.  Only the
        # per-member reaction counter remains.
        fast = shared_bits & ~self._active_bits & ~self._fired_bits
        if fast:
            for bit in _bits_of(fast):
                members[bit].reaction_count += 1
        slow = ok & ~fast
        iface_slots = self._iface_slots
        out_names = {slot: name for name, slot, _ in self._out_slots}
        has_execs = self._has_execs
        for index, bit, _ in batch if slow else ():
            if not (slow >> bit) & 1:
                continue
            machine = members[bit]
            machine.reaction_count += 1
            signals = machine._signals

            # active-set refresh: written slots were added at write time;
            # present slots were added above; payload value writes
            # (emit_value/init_signal) landed in _touched_slots; prune
            # whatever went inert.
            active = actives[bit]
            touched = machine._touched_slots
            if touched:
                active.update(touched)
                touched.clear()
            for slot in tuple(active):
                sig = signals[slot]
                if not (
                    sig.now
                    or sig.pre
                    or sig.emitted
                    or sig.nowval is not sig.preval
                ):
                    active.discard(slot)
            if active:
                self._active_bits |= 1 << bit
            else:
                self._active_bits &= ~(1 << bit)

            if (special_mask >> bit) & 1:
                emitted: Dict[str, Any] = {}
                statuses: Dict[str, bool] = {}
                for name, slot in iface_slots:
                    sig = signals[slot]
                    statuses[name] = sig.now
                    if sig.now and slot in out_names:
                        emitted[name] = sig.nowval
                specials[index] = ReactionResult(
                    emitted,
                    statuses,
                    machine.terminated,
                    bool((k1_col >> bit) & 1),
                )
                self.special_results += 1
                machine._notify_listeners(emitted)

            # divergence: exec activity or queued sub-instants leave the
            # word; the deferred chain then drains scalar with react()'s
            # exception semantics.
            deferred = machine._deferred
            if deferred or (
                has_execs
                and any(s.running or s.pending for s in machine._execs)
            ):
                self.demote(machine, "deferred" if deferred else "exec")
                if deferred:
                    try:
                        while deferred:
                            machine._react_once(deferred.pop(0))
                    except Exception as err:
                        machine._failed_reactions += 1
                        deferred.clear()
                        failures[index] = err
                        specials.pop(index, None)

        return default_result, specials, failures

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "resident": len(self._member_of),
            "promotions": self.promotions,
            "demotions": dict(self.demotions),
            "word_instants": self.word_instants,
            "payload_fires": self.payload_fires,
            "shared_results": self.shared_results,
            "special_results": self.special_results,
            "lowered_nets": len(self.word_plan.lowered_ids),
            "fired_nets": len(self.word_plan.fired_ids),
        }

    def memory_bytes(self) -> Dict[str, int]:
        """The packed-column memory split: whole-fleet register planes
        vs status planes vs the shared compiled word plan."""
        register_planes = sys.getsizeof(self.R) + sum(
            sys.getsizeof(col) for col in self.R
        )
        status_planes = (
            sys.getsizeof(self.NOW)
            + sys.getsizeof(self.PRE)
            + sum(sys.getsizeof(col) for col in self.NOW)
            + sum(sys.getsizeof(col) for col in self.PRE)
        )
        plan_bytes = self.word_plan.memory_estimate()
        return {
            "register_plane_bytes": register_planes,
            "status_plane_bytes": status_planes,
            "word_plan_bytes": plan_bytes,
            "total_bytes": register_planes + status_planes + plan_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"LockstepFleet({self.plan.circuit.name}, "
            f"{len(self._member_of)} resident, "
            f"{self.word_instants} word instants)"
        )
