"""Crash-tolerant multi-process sharded fleets with live migration.

:class:`ShardManager` spreads the members of a logical
:class:`~repro.runtime.fleet.MachineFleet` across OS worker processes
(:mod:`repro.runtime.worker`).  Placement is a pure runtime concern: the
reactive program never observes which process hosts it, exactly as the
Hop/HipHop multitier work treats code location — and like hydrapy's
multiplicity-N box networks, determinism is preserved per member because
each member's instants stay totally ordered no matter where it runs.

Architecture::

    ShardManager ──pipe──▶ worker 0   (fleet shard + ingress + journals)
        │        ──pipe──▶ worker 1
        │           ...
        └─ placement {member gid → worker}, heartbeats, failover, migration

* **Cold start** — each worker hydrates the shared compiled plan once,
  through :func:`~repro.compiler.compile.plan_artifact` /
  :func:`~repro.compiler.compile.hydrate_plan_artifact` when the module
  is portable (no embedded host callables), falling back to fork-time
  heap inheritance otherwise.  Fingerprints are cross-checked so every
  process provably runs the same program.
* **Durability** — workers keep a per-member
  :class:`~repro.runtime.journal.FileJournal` and snapshot file with
  write-ahead checkpoint ordering; the manager recovers a SIGKILLed
  worker's members purely from those files: restore last checkpoint,
  silently replay the committed journal tail, redo the uncommitted tail
  *live* on a survivor — host effects exactly once, traces identical.
* **Live migration** — :meth:`migrate` drains the member's mailbox on
  the source, snapshots between instants, ships snapshot + uncommitted
  tail + mailbox backlog, and resumes on the destination with zero
  dropped instants; :meth:`rebalance`, :meth:`drain_worker` and
  :meth:`restart_worker` compose it into fleet-level operations.

Failure model: a worker death is detected by pipe EOF, a missed request
deadline, or a failed :meth:`heartbeat`; detection triggers
:meth:`_failover` *before* the caller sees :class:`~repro.errors.WorkerDied`,
so the exception reports a failure that has already been repaired.  The
only state that dies with a worker is its in-memory mailbox backlog
(counted in :attr:`stats`), never a committed instant.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import errors as _errors
from repro.errors import ShardError, WorkerDied
from repro.compiler.compile import CompileOptions, plan_artifact
from repro.lang import ast as A
from repro.runtime.journal import FileJournal
from repro.runtime.worker import Channel, WorkerConfig, worker_main


class _Worker:
    """Manager-side handle on one worker process."""

    __slots__ = ("id", "proc", "chan", "directory", "pid", "members", "live")

    def __init__(self, wid: int, proc: Any, chan: Channel, directory: str):
        self.id = wid
        self.proc = proc
        self.chan = chan
        self.directory = directory
        self.pid: Optional[int] = None
        self.members: set = set()
        self.live = True

    def __repr__(self) -> str:
        state = "live" if self.live else "dead"
        return f"_Worker({self.id}, pid={self.pid}, {len(self.members)} members, {state})"


class ShardManager:
    """A fleet of reactive machines sharded over worker processes.

    :param module: the HipHop module (or AST) every member instantiates.
    :param shards: how many worker processes to start.
    :param size: members to spawn immediately (round-robin placement).
    :param journal_dir: root directory for per-worker durable state
        (journals, snapshots, effect logs); a temp dir when ``None``.
    :param effect_signals: output signals whose listener deliveries are
        appended to each worker's ``effects.log`` — the exactly-once
        ledger the chaos tests audit.
    :param request_timeout_s: per-request deadline; a worker missing it
        is declared dead and failed over.

    Single-request APIs (:meth:`react_member`, :meth:`offer`, ...) raise
    :class:`~repro.errors.WorkerDied` *after* recovery when the target
    worker dies mid-request.  The batch API :meth:`react_all` instead
    completes the instant for every member — recovered members are
    re-driven live so no member misses the broadcast — and records the
    death in :attr:`stats` and :attr:`last_deaths`.
    """

    def __init__(
        self,
        module: Any,
        modules: Optional[A.ModuleTable] = None,
        options: Optional[CompileOptions] = None,
        *,
        shards: int = 4,
        size: int = 0,
        journal_dir: Optional[str] = None,
        backend: str = "auto",
        checkpoint_every: Optional[int] = 25,
        capacity: int = 64,
        policy: str = "coalesce",
        effect_signals: Sequence[str] = (),
        machine_kwargs: Optional[Dict[str, Any]] = None,
        request_timeout_s: float = 30.0,
        max_retries: int = 1,
        quarantine_after: int = 3,
    ):
        if shards < 1:
            raise ShardError("a sharded fleet needs at least one worker")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardError(
                "sharded fleets need the 'fork' start method (POSIX only)"
            )
        self._ctx = multiprocessing.get_context("fork")
        self._module = module
        self._modules = modules
        self._options = options
        try:
            self._artifact: Optional[bytes] = plan_artifact(module, modules, options)
        except ShardError:
            # Non-portable module (embedded callables): rely on fork-time
            # heap inheritance instead of a pickled artifact.
            self._artifact = None
        self._backend = backend
        self._checkpoint_every = checkpoint_every
        self._capacity = capacity
        self._policy = policy
        self._effect_signals = tuple(effect_signals)
        self._machine_kwargs = dict(machine_kwargs or {})
        self._max_retries = max_retries
        self._quarantine_after = quarantine_after
        self.request_timeout_s = request_timeout_s
        if journal_dir is None:
            journal_dir = tempfile.mkdtemp(prefix="hiphop-shard-")
        self.journal_dir = journal_dir
        os.makedirs(journal_dir, exist_ok=True)

        self.workers: List[_Worker] = []
        self._worker_seq = 0
        #: member gid → live worker
        self.placement: Dict[int, _Worker] = {}
        self._next_gid = 0
        #: member gid → last known reaction_count (from worker responses)
        self._reactions: Dict[int, int] = {}
        self.fingerprint: Optional[str] = None
        self.last_deaths: List[WorkerDied] = []
        self.stats: Dict[str, int] = {
            "workers_started": 0,
            "failovers": 0,
            "members_recovered": 0,
            "redriven_instants": 0,
            "migrations": 0,
            "restarts": 0,
            "lost_backlog_mailboxes": 0,
        }
        for _ in range(shards):
            self.add_worker()
        if size:
            self.spawn_members(size)

    # -- worker lifecycle ------------------------------------------------

    def add_worker(self) -> int:
        """Start one more worker process (empty shard); returns its id."""
        wid = self._worker_seq
        self._worker_seq += 1
        directory = os.path.join(self.journal_dir, f"worker-{wid}")
        config = WorkerConfig(
            directory=directory,
            artifact=self._artifact,
            module=None if self._artifact is not None else self._module,
            modules=None if self._artifact is not None else self._modules,
            options=None if self._artifact is not None else self._options,
            backend=self._backend,
            checkpoint_every=self._checkpoint_every,
            capacity=self._capacity,
            policy=self._policy,
            machine_kwargs=self._machine_kwargs,
            effect_signals=self._effect_signals,
            max_retries=self._max_retries,
            quarantine_after=self._quarantine_after,
        )
        cmd_r, cmd_w = os.pipe()
        resp_r, resp_w = os.pipe()
        # The child must close every *manager-side* fd it inherits — its
        # own and those of previously started workers — or a SIGKILLed
        # sibling's pipes would never reach EOF.
        close_in_child = [cmd_w, resp_r]
        for worker in self.workers:
            if worker.live:
                close_in_child.extend(
                    (worker.chan.send_fd, worker.chan.recv_fd)
                )
        proc = self._ctx.Process(
            target=worker_main,
            args=(config, cmd_r, resp_w, tuple(close_in_child)),
            daemon=True,
        )
        proc.start()
        os.close(cmd_r)
        os.close(resp_w)
        worker = _Worker(wid, proc, Channel(resp_r, cmd_w), directory)
        try:
            hello = worker.chan.recv(self.request_timeout_s)
        except (EOFError, TimeoutError) as err:
            raise ShardError(f"worker {wid} failed to start: {err!r}") from err
        if not hello.get("ok"):
            raise ShardError(
                f"worker {wid} failed to build its shard: "
                f"{hello.get('kind')}: {hello.get('error')}"
            )
        worker.pid = hello["value"]["pid"]
        fingerprint = hello["value"]["fingerprint"]
        if self.fingerprint is None:
            self.fingerprint = fingerprint
        elif fingerprint != self.fingerprint:
            raise ShardError(
                f"worker {wid} compiled fingerprint {fingerprint!r} != "
                f"fleet fingerprint {self.fingerprint!r}; shards disagree "
                "about the program"
            )
        self.workers.append(worker)
        self.stats["workers_started"] += 1
        return wid

    def _worker_by_id(self, wid: int) -> _Worker:
        for worker in self.workers:
            if worker.id == wid:
                return worker
        raise ShardError(f"no worker with id {wid}")

    def live_workers(self) -> List[_Worker]:
        return [w for w in self.workers if w.live]

    def worker_pids(self) -> Dict[int, int]:
        return {w.id: w.pid for w in self.live_workers()}

    # -- the request path ------------------------------------------------

    def _raise_remote(self, resp: Dict[str, Any]) -> None:
        kind, message = resp.get("kind"), resp.get("error", "")
        cls = getattr(_errors, str(kind), None)
        if isinstance(cls, type) and issubclass(cls, Exception):
            try:
                raise cls(message)
            except TypeError:
                pass
        raise ShardError(f"worker error {kind}: {message}")

    def _request(
        self, worker: _Worker, cmd: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Any:
        if not worker.live:
            raise ShardError(f"worker {worker.id} is dead")
        try:
            worker.chan.send(cmd)
            resp = worker.chan.recv(
                self.request_timeout_s if timeout is None else timeout
            )
        except (BrokenPipeError, EOFError, TimeoutError, OSError) as err:
            raise self._failover(worker, repr(err)) from err
        if resp.get("ok"):
            return resp["value"]
        self._raise_remote(resp)

    # -- membership ------------------------------------------------------

    def spawn_members(self, count: int) -> List[int]:
        """Spawn ``count`` members, placed round-robin across live
        workers (one batched spawn command per worker); returns the new
        global member ids."""
        live = self.live_workers()
        if not live:
            raise ShardError("no live workers to place members on")
        batches: Dict[int, List[int]] = {w.id: [] for w in live}
        gids = []
        for i in range(count):
            gid = self._next_gid
            self._next_gid += 1
            gids.append(gid)
            batches[live[i % len(live)].id].append(gid)
        for worker in live:
            batch = batches[worker.id]
            if not batch:
                continue
            counts = self._request(worker, {"op": "spawn", "gids": batch})
            worker.members.update(batch)
            for gid in batch:
                self.placement[gid] = worker
                self._reactions[gid] = counts[gid]
        return gids

    def members(self) -> List[int]:
        return sorted(self.placement)

    def __len__(self) -> int:
        return len(self.placement)

    def _home_of(self, gid: int) -> _Worker:
        try:
            return self.placement[gid]
        except KeyError:
            raise ShardError(f"no member with gid {gid}") from None

    # -- driving ---------------------------------------------------------

    def react_member(self, gid: int, inputs: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One instant on member ``gid``; returns
        ``{"emitted", "terminated", "paused", "reaction_count"}``."""
        worker = self._home_of(gid)
        pre = self._reactions.get(gid, 0)
        try:
            value = self._request(
                worker, {"op": "react", "gid": gid, "inputs": dict(inputs or {})}
            )
        except WorkerDied:
            # The member was recovered onto a survivor; finish the
            # requested instant there unless the crash already redid it.
            if self._reactions.get(gid, 0) <= pre:
                return self.react_member(gid, inputs)
            raise
        self._reactions[gid] = value["reaction_count"]
        return value

    def react_all(self, inputs: Optional[Dict[str, Any]] = None) -> Dict[int, Dict[str, Any]]:
        """One broadcast instant on every member.  Commands are written
        to all workers before any response is read, so shards react in
        parallel.  A worker dying mid-batch is failed over and its
        members re-driven live, so the instant completes for the whole
        fleet; the death lands in :attr:`last_deaths`, not an exception.
        Per-member reaction failures come back in the result as
        ``{"error": (kind, message)}`` entries."""
        shared = dict(inputs or {})
        self.last_deaths = []
        pre = dict(self._reactions)
        cmd = {"op": "react_all", "inputs": shared}
        sent: List[_Worker] = []
        # Failovers are DEFERRED until every in-flight response is
        # drained: the adopt requests a failover issues to survivors must
        # not interleave with broadcast responses those survivors still
        # owe, or the request/response lockstep (and with it every later
        # reply) would be off by one.
        dead: List[Tuple[_Worker, str]] = []
        bad_resp: Optional[Dict[str, Any]] = None
        for worker in self.live_workers():
            if not worker.members:
                continue
            try:
                worker.chan.send(cmd)
                sent.append(worker)
            except (BrokenPipeError, OSError) as err:
                dead.append((worker, repr(err)))
        out: Dict[int, Dict[str, Any]] = {}
        for worker in sent:
            try:
                resp = worker.chan.recv(self.request_timeout_s)
            except (EOFError, TimeoutError, OSError) as err:
                dead.append((worker, repr(err)))
                continue
            if not resp.get("ok"):
                bad_resp = resp
                continue
            value = resp["value"]
            for gid, payload in value["results"].items():
                out[gid] = payload
                self._reactions[gid] = payload["reaction_count"]
            for gid, (kind, message) in value["failures"].items():
                out[gid] = {"error": (kind, message)}
        for worker, reason in dead:
            self.last_deaths.append(self._failover(worker, reason))
        if bad_resp is not None:
            self._raise_remote(bad_resp)
        # Members recovered from a mid-batch death: those whose redone
        # tail did not already cover this instant get it re-driven live.
        for died in self.last_deaths:
            for gid in died.recovered:
                if self._reactions.get(gid, 0) <= pre.get(gid, 0):
                    try:
                        out[gid] = self.react_member(gid, shared)
                        self.stats["redriven_instants"] += 1
                    except Exception as err:
                        out[gid] = {"error": (type(err).__name__, str(err))}
                else:
                    out[gid] = {
                        "emitted": None,
                        "recovered": True,
                        "reaction_count": self._reactions[gid],
                    }
        return out

    def offer(self, gid: int, inputs: Dict[str, Any]) -> str:
        """Offer one input map to member ``gid``'s mailbox on its shard;
        returns the recorded admission decision."""
        return self._request(
            self._home_of(gid), {"op": "offer", "gid": gid, "inputs": dict(inputs)}
        )

    def route(self, inputs: Dict[str, Any]) -> Tuple[int, str]:
        """Admit one map to the least-loaded member of the least-loaded
        live shard; returns ``(gid, decision)``."""
        live = [w for w in self.live_workers() if w.members]
        if not live:
            raise ShardError("no live worker hosts any member")
        worker = min(live, key=lambda w: (len(w.members), w.id))
        gid, decision = self._request(
            worker, {"op": "route", "inputs": dict(inputs)}
        )
        return gid, decision

    def pump_all(self) -> Dict[int, Dict[str, Any]]:
        """Drain every shard's mailboxes (each worker pumps its own
        ingress); returns the last result per member that reacted."""
        out: Dict[int, Dict[str, Any]] = {}
        for worker in list(self.live_workers()):
            if not worker.members:
                continue
            value = self._request(worker, {"op": "pump_all"})
            out.update(value["results"])
        return out

    # -- durability / introspection --------------------------------------

    def checkpoint_all(self) -> Dict[int, int]:
        """Force a durable checkpoint of every member on every shard;
        returns each member's checkpointed reaction count."""
        out: Dict[int, int] = {}
        for worker in list(self.live_workers()):
            if worker.members:
                out.update(self._request(worker, {"op": "checkpoint"}))
        return out

    def member_digest(self, gid: int) -> str:
        """The member's :meth:`~repro.runtime.machine.ReactiveMachine.state_digest`
        — a process-portable hash of its between-instant state."""
        return self._request(self._home_of(gid), {"op": "digest", "gid": gid})

    def heartbeat(self, timeout: Optional[float] = None) -> Dict[int, Any]:
        """Ping every live worker; a missed deadline or closed pipe
        declares the worker dead and fails it over.  Returns per-worker
        ping payloads (dead workers appear as their
        :class:`~repro.errors.WorkerDied`)."""
        out: Dict[int, Any] = {}
        for worker in list(self.live_workers()):
            try:
                out[worker.id] = self._request(
                    worker, {"op": "ping"},
                    timeout=timeout if timeout is not None else self.request_timeout_s,
                )
            except WorkerDied as died:
                out[worker.id] = died
        return out

    def shard_stats(self) -> Dict[int, Any]:
        return {
            w.id: self._request(w, {"op": "stats"})
            for w in list(self.live_workers())
        }

    def arm_crash(
        self,
        worker_id: int,
        mode: str,
        after_appends: int = 1,
        gid: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Arm a chaos self-SIGKILL on a worker (see
        :meth:`repro.runtime.worker.ShardWorker.arm_crash`)."""
        return self._request(
            self._worker_by_id(worker_id),
            {"op": "arm_crash", "mode": mode, "after_appends": after_appends,
             "gid": gid},
        )

    # -- failover --------------------------------------------------------

    def _failover(self, worker: _Worker, reason: str) -> WorkerDied:
        """Declare ``worker`` dead and re-place every member it hosted
        onto survivors from the worker's durable files: restore the last
        checkpoint, replay the committed journal tail silently, redo the
        uncommitted tail live.  Returns (never raises) the
        :class:`~repro.errors.WorkerDied` describing what happened."""
        worker.live = False
        try:
            if worker.pid:
                os.kill(worker.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass
        worker.proc.join(timeout=5)
        worker.chan.close()
        self.stats["failovers"] += 1
        orphans = sorted(worker.members)
        worker.members = set()
        survivors = self.live_workers()
        recovered: List[int] = []
        if not survivors and orphans:
            died = WorkerDied(
                f"worker {worker.id} died ({reason}) and no survivor can "
                f"adopt its {len(orphans)} members",
                worker_id=worker.id,
            )
            for gid in orphans:
                self.placement.pop(gid, None)
            return died
        for gid in orphans:
            target = min(survivors, key=lambda w: (len(w.members), w.id))
            value = self._adopt_from_disk(worker, target, gid)
            self.placement[gid] = target
            target.members.add(gid)
            self._reactions[gid] = value["reaction_count"]
            recovered.append(gid)
        self.stats["members_recovered"] += len(recovered)
        if orphans:
            # the dead worker's in-memory mailbox backlog is the one
            # thing that cannot be recovered; account for it loudly
            self.stats["lost_backlog_mailboxes"] += len(orphans)
        return WorkerDied(
            f"worker {worker.id} died ({reason}); {len(recovered)} members "
            "recovered onto survivors",
            worker_id=worker.id,
            recovered=recovered,
        )

    def _adopt_from_disk(
        self, dead: _Worker, target: _Worker, gid: int
    ) -> Dict[str, Any]:
        """Rebuild member ``gid`` on ``target`` from the dead worker's
        snapshot + journal files (torn journal tails are truncated by
        :class:`~repro.runtime.journal.FileJournal` itself)."""
        snap_path = os.path.join(dead.directory, f"member-{gid}.snap")
        journal_path = os.path.join(dead.directory, f"member-{gid}.journal")
        try:
            with open(snap_path, "r", encoding="utf-8") as fh:
                snapshot = json.load(fh)
        except FileNotFoundError:
            # Died before its initial checkpoint was persisted: the
            # member never reacted, a fresh spawn is the correct state.
            counts = self._request(target, {"op": "spawn", "gids": [gid]})
            return {"reaction_count": counts[gid]}
        committed: List[Dict[str, Any]] = []
        tail: List[Dict[str, Any]] = []
        if os.path.exists(journal_path):
            journal = FileJournal(journal_path)
            try:
                for entry in journal.entries(snapshot["reaction_count"]):
                    (committed if entry.committed else tail).append(entry.to_json())
            finally:
                journal.close()
        return self._request(
            target,
            {"op": "adopt", "gid": gid, "snapshot": snapshot,
             "committed": committed, "tail": tail, "pending": []},
        )

    # -- live migration --------------------------------------------------

    def migrate(self, gid: int, dst_worker_id: int) -> Dict[str, Any]:
        """Move member ``gid`` to another worker with zero dropped
        instants: the source stops admitting to it, drains its mailbox,
        snapshots between instants, and ships snapshot + uncommitted
        journal tail + backlog; the destination restores, redoes the tail
        live, and re-enqueues the backlog.  Returns the destination's
        adopt payload (including the post-migration state digest)."""
        src = self._home_of(gid)
        dst = self._worker_by_id(dst_worker_id)
        if not dst.live:
            raise ShardError(f"destination worker {dst_worker_id} is dead")
        if dst is src:
            return {"reaction_count": self._reactions.get(gid, 0), "noop": True}
        shipped = self._request(src, {"op": "extract", "gid": gid})
        src.members.discard(gid)
        self.placement.pop(gid, None)
        value = self._request(
            dst,
            {"op": "adopt", "gid": gid, "snapshot": shipped["snapshot"],
             "committed": [], "tail": shipped["tail"],
             "pending": shipped["pending"]},
        )
        self.placement[gid] = dst
        dst.members.add(gid)
        self._reactions[gid] = value["reaction_count"]
        self.stats["migrations"] += 1
        return value

    def drain_worker(self, worker_id: int) -> List[int]:
        """Migrate every member off a worker (to the least-loaded other
        live workers); returns the moved gids.  The worker stays up,
        empty — pair with :meth:`shutdown_worker` or use
        :meth:`restart_worker` for the full rolling-restart move."""
        source = self._worker_by_id(worker_id)
        others = [w for w in self.live_workers() if w is not source]
        if not others:
            raise ShardError("cannot drain the only live worker")
        moved = []
        for gid in sorted(source.members):
            target = min(others, key=lambda w: (len(w.members), w.id))
            self.migrate(gid, target.id)
            moved.append(gid)
        return moved

    def shutdown_worker(self, worker_id: int) -> None:
        """Cleanly stop an (ideally already drained) worker."""
        worker = self._worker_by_id(worker_id)
        if not worker.live:
            return
        if worker.members:
            raise ShardError(
                f"worker {worker_id} still hosts {len(worker.members)} "
                "members; drain_worker() first"
            )
        try:
            self._request(worker, {"op": "shutdown"})
        except WorkerDied:
            pass
        worker.live = False
        worker.proc.join(timeout=5)
        worker.chan.close()

    def restart_worker(self, worker_id: int) -> int:
        """Rolling restart of one worker with zero dropped instants:
        start a replacement, live-migrate every member onto it, and shut
        the old process down.  Returns the replacement's worker id."""
        old = self._worker_by_id(worker_id)
        replacement_id = self.add_worker()
        for gid in sorted(old.members):
            self.migrate(gid, replacement_id)
        self.shutdown_worker(worker_id)
        self.stats["restarts"] += 1
        return replacement_id

    # -- rolling program upgrade -----------------------------------------

    def upgrade_program(
        self,
        module: Any,
        modules: Optional[A.ModuleTable] = None,
        options: Optional[CompileOptions] = None,
    ) -> Dict[str, Any]:
        """Zero-downtime rolling upgrade of the whole sharded fleet to an
        edited program.

        For each live worker: start a replacement running the new
        program's artifact, then for every member the old worker hosts —
        extract it between instants (draining its mailbox), map its
        snapshot onto the new program with
        :func:`~repro.runtime.migrate.migrate_snapshot` (state whose
        segment keys survive the edit carries byte-exactly; new state
        boots fresh; removed state is dropped and reported), and adopt it
        on the replacement, re-enqueueing the drained backlog with input
        signals the new interface no longer declares filtered out.  The
        emptied old worker is then shut down.

        No instant is dropped and no host effect is duplicated: every
        member's last v1 instant committed before its extract, and its
        first v2 instant runs after its adopt.

        Returns ``{"fingerprint", "workers", "reports"}`` — the new
        program fingerprint, the replacement worker ids, and a per-member
        :class:`~repro.runtime.migrate.MigrationReport`.
        """
        from repro.compiler.compile import compile_cached
        from repro.lang.signals import OUT
        from repro.runtime.machine import ReactiveMachine
        from repro.runtime.migrate import migrate_snapshot, state_descriptor

        old_compiled = compile_cached(self._module, self._modules, self._options)
        new_compiled = compile_cached(module, modules, options)
        desc_from = state_descriptor(old_compiled)
        desc_to = state_descriptor(new_compiled)
        boot = ReactiveMachine(new_compiled).snapshot()
        # Post-boot probe: instances new in v2 are seeded with the state
        # a fresh machine has after its boot instant, so branches grafted
        # into a running parallel start reacting at the next instant.
        probe = ReactiveMachine(new_compiled)
        probe.react({})
        started = probe.snapshot()
        input_names = {
            name
            for name, info in new_compiled.circuit.interface.items()
            if info.direction != OUT
        }

        self._module = module
        self._modules = modules
        self._options = options
        try:
            self._artifact = plan_artifact(module, modules, options)
        except ShardError:
            self._artifact = None
        self.fingerprint = new_compiled.fingerprint

        reports: Dict[int, Any] = {}
        replacements: List[int] = []
        for old in list(self.live_workers()):
            replacement_id = self.add_worker()
            replacements.append(replacement_id)
            dst = self._worker_by_id(replacement_id)
            for gid in sorted(old.members):
                shipped = self._request(old, {"op": "extract", "gid": gid})
                old.members.discard(gid)
                self.placement.pop(gid, None)
                migrated, report = migrate_snapshot(
                    shipped["snapshot"], desc_from, desc_to, boot, started
                )
                n_execs = len(new_compiled.circuit.execs)
                tail = []
                for entry in shipped["tail"]:
                    entry = dict(entry)
                    entry["inputs"] = {
                        name: value
                        for name, value in entry.get("inputs", {}).items()
                        if name in input_names
                    }
                    # exec completions are positional; drop any aimed at
                    # slots the new program no longer has
                    entry["execs"] = [
                        pair for pair in entry.get("execs", [])
                        if pair[0] < n_execs
                    ]
                    tail.append(entry)
                pending = [
                    {k: v for k, v in item.items() if k in input_names}
                    for item in shipped["pending"]
                ]
                value = self._request(
                    dst,
                    {"op": "adopt", "gid": gid, "snapshot": migrated,
                     "committed": [], "tail": tail, "pending": pending},
                )
                self.placement[gid] = dst
                dst.members.add(gid)
                self._reactions[gid] = value["reaction_count"]
                reports[gid] = report
            self.shutdown_worker(old.id)
        self.stats["upgrades"] = self.stats.get("upgrades", 0) + 1
        return {
            "fingerprint": self.fingerprint,
            "workers": replacements,
            "reports": reports,
        }

    def rebalance(self) -> List[int]:
        """Even out member counts across live workers via live
        migrations; returns the moved gids."""
        moved: List[int] = []
        while True:
            live = self.live_workers()
            if len(live) < 2:
                return moved
            fullest = max(live, key=lambda w: (len(w.members), -w.id))
            emptiest = min(live, key=lambda w: (len(w.members), w.id))
            if len(fullest.members) - len(emptiest.members) <= 1:
                return moved
            gid = sorted(fullest.members)[0]
            self.migrate(gid, emptiest.id)
            moved.append(gid)

    # -- shutdown --------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker (clean shutdown command, then join)."""
        for worker in self.workers:
            if not worker.live:
                continue
            try:
                worker.chan.send({"op": "shutdown"})
                worker.chan.recv(5)
            except (BrokenPipeError, EOFError, TimeoutError, OSError):
                try:
                    if worker.pid:
                        os.kill(worker.pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass
            worker.live = False
            worker.proc.join(timeout=5)
            worker.chan.close()

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        live = self.live_workers()
        return (
            f"ShardManager({len(self.placement)} members over {len(live)} "
            f"live workers, fingerprint={str(self.fingerprint)[:12]}...)"
        )
