"""A direct constructive interpreter for the *pure* kernel language.

This is a second, independent implementation of the semantics (the
reference one being the circuit translation + ternary simulation).  It
follows Berry's constructive behavioral semantics:

1. **Must/Can resolution** — iterate: everything the program *must* do
   under current knowledge makes signals present; signals that *cannot*
   be emitted under current knowledge become absent; repeat to fixpoint.
   Signals still unknown at the fixpoint are a causality error.
2. **Execution** — with all statuses decided, a deterministic pass runs
   the reaction: computes the completion code and the set of ``pause``
   points selected for the next instant.

Supported subset: the pure kernel — ``nothing``, ``pause``, pure ``emit``,
``seq``, ``par``, ``loop``, ``if``/``present`` over boolean signal
expressions, delayed/immediate ``abort``, ``suspend``, ``trap``/``break``,
and ``local`` signals *outside loops* (the circuit backend handles loop
reincarnation by body duplication; this interpreter deliberately excludes
that case rather than duplicating the trick — a genuinely independent
oracle must not share the workaround).  Valued signals, counters, host
expressions and ``async`` are out of scope and raise
:class:`UnsupportedProgram`.

The property-based differential tests
(``tests/test_equivalence.py``) generate random pure programs and check
reaction-per-reaction output equality between this interpreter and the
compiled circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import CausalityError, HipHopError
from repro.lang import ast as A
from repro.lang import expr as E
from repro.compiler.expand import expand_statement

# three-valued logic
TRUE = 1
FALSE = 0
BOT = None  # unknown


class UnsupportedProgram(HipHopError):
    """The program uses features outside the interpreter's pure subset."""


def _and3(a, b):
    # Strict (not Kleene-lazy) connectives: guards are host data
    # expressions, which the circuit backend treats as atomic black boxes
    # that wait for *every* signal they read to be resolved (the paper's
    # microscheduling).  `False && ⊥` must therefore stay ⊥, not short-
    # circuit to False, or the oracle diverges from the reference backend.
    if a is BOT or b is BOT:
        return BOT
    return TRUE if (a is TRUE and b is TRUE) else FALSE


def _or3(a, b):
    if a is BOT or b is BOT:
        return BOT
    return TRUE if (a is TRUE or b is TRUE) else FALSE


def _not3(a):
    if a is BOT:
        return BOT
    return TRUE if a is FALSE else FALSE


@dataclass
class _Result:
    """Outcome of a Must or Can analysis of one statement.

    ``codes`` — possible completion codes this instant (empty when the
    statement does not complete: not executing, blocked, or halted).
    ``emits`` — signal uids (must-/can-) emitted.
    """

    codes: FrozenSet[int] = frozenset()
    emits: FrozenSet[int] = frozenset()


_NOTHING_RESULT = _Result()


def _cartesian(code_sets: List[FrozenSet[int]]):
    """All tuples choosing one code per branch."""
    import itertools

    return itertools.product(*code_sets)


def _seq_codes(first: FrozenSet[int], then) -> Tuple[FrozenSet[int], bool]:
    """Codes of `p; q` given codes of p; returns (codes-from-p, q-runs)."""
    return frozenset(c for c in first if c != 0), 0 in first


def _clone(stmt: A.Stmt) -> A.Stmt:
    """Rebuild the kernel tree with fresh node objects at every position."""
    if isinstance(stmt, A.Nothing):
        return A.Nothing(stmt.loc)
    if isinstance(stmt, A.Pause):
        return A.Pause(stmt.loc)
    if isinstance(stmt, A.Emit):
        return A.Emit(stmt.signal, stmt.value, stmt.loc)
    if isinstance(stmt, A.Break):
        return A.Break(stmt.label, stmt.loc)
    if isinstance(stmt, A.Seq):
        return A.Seq([_clone(s) for s in stmt.items], stmt.loc)
    if isinstance(stmt, A.Par):
        return A.Par([_clone(b) for b in stmt.branches], stmt.loc)
    if isinstance(stmt, A.Loop):
        return A.Loop(_clone(stmt.body), stmt.loc)
    if isinstance(stmt, A.If):
        return A.If(stmt.test, _clone(stmt.then), _clone(stmt.orelse), stmt.loc)
    if isinstance(stmt, A.Abort):
        return A.Abort(stmt.delay, _clone(stmt.body), stmt.loc)
    if isinstance(stmt, A.Suspend):
        return A.Suspend(stmt.delay, _clone(stmt.body), stmt.loc)
    if isinstance(stmt, A.Trap):
        return A.Trap(stmt.label, _clone(stmt.body), stmt.loc)
    if isinstance(stmt, A.Local):
        return A.Local(list(stmt.decls), _clone(stmt.body), stmt.loc)
    return stmt  # unsupported nodes are rejected later by _check


class _Scope:
    __slots__ = ("names", "parent")

    def __init__(self, names: Dict[str, int], parent: Optional["_Scope"]):
        self.names = names
        self.parent = parent

    def find(self, name: str) -> int:
        scope: Optional[_Scope] = self
        while scope is not None:
            uid = scope.names.get(name)
            if uid is not None:
                return uid
            scope = scope.parent
        raise UnsupportedProgram(f"unknown signal {name!r}")


class Interpreter:
    """Constructive interpreter for a module restricted to the pure kernel.

    Usage mirrors the reactive machine::

        interp = Interpreter(module)
        outputs = interp.react({"A", "B"})   # set of present inputs
        # outputs: set of present output signal names
    """

    def __init__(self, module: A.Module, modules: Optional[A.ModuleTable] = None):
        self.module = module
        # _clone forces a tree shape: DSL-built ASTs may share node objects
        # (a DAG), but the interpreter keys pause/local state by node
        # identity, so every position must be a distinct object
        self.body = _clone(expand_statement(module.body, modules))
        self._uids = 0
        self._signal_names: Dict[int, str] = {}
        self._root_scope_names: Dict[str, int] = {}
        self.inputs: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        for decl in module.interface:
            if decl.init is not None or decl.combine is not None:
                raise UnsupportedProgram("valued interface signals unsupported")
            uid = self._fresh(decl.name)
            self._root_scope_names[decl.name] = uid
            if decl.is_input:
                self.inputs[decl.name] = uid
            if decl.is_output:
                self.outputs[decl.name] = uid
        self._scope = _Scope(self._root_scope_names, None)
        self._check(self.body, in_loop=False)

        #: selected pause set (the control state between instants)
        self.sel: Set[int] = set()
        self._pause_ids: Dict[int, int] = {}  # id(node) -> uid
        self._subtree_pauses: Dict[int, FrozenSet[int]] = {}
        self._local_uids: Dict[int, Dict[str, int]] = {}  # id(node) -> name->uid
        self._index(self.body)
        self.booted = False
        self.terminated = False
        self._pre: Set[int] = set()

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------

    def _fresh(self, name: str) -> int:
        self._uids += 1
        self._signal_names[self._uids] = name
        return self._uids

    def _check(self, stmt: A.Stmt, in_loop: bool) -> None:
        if isinstance(stmt, (A.Nothing, A.Pause, A.Break)):
            return
        if isinstance(stmt, A.Emit):
            if stmt.value is not None:
                raise UnsupportedProgram("valued emit unsupported")
            return
        if isinstance(stmt, A.Seq):
            for item in stmt.items:
                self._check(item, in_loop)
            return
        if isinstance(stmt, A.Par):
            for branch in stmt.branches:
                self._check(branch, in_loop)
            return
        if isinstance(stmt, A.Loop):
            self._check(stmt.body, True)
            return
        if isinstance(stmt, A.If):
            self._check_expr(stmt.test)
            self._check(stmt.then, in_loop)
            self._check(stmt.orelse, in_loop)
            return
        if isinstance(stmt, (A.Abort, A.Suspend)):
            if stmt.delay.count is not None:
                raise UnsupportedProgram("counted delays unsupported")
            self._check_expr(stmt.delay.expr)
            self._check(stmt.body, in_loop)
            return
        if isinstance(stmt, A.Trap):
            self._check(stmt.body, in_loop)
            return
        if isinstance(stmt, A.Local):
            if in_loop:
                raise UnsupportedProgram(
                    "local signals inside loops (reincarnation) unsupported"
                )
            for decl in stmt.decls:
                if decl.init is not None:
                    raise UnsupportedProgram("initialized local unsupported")
            self._check(stmt.body, in_loop)
            return
        raise UnsupportedProgram(f"{type(stmt).__name__} unsupported")

    def _check_expr(self, expr: E.Expr) -> None:
        if isinstance(expr, E.SigRef):
            if expr.kind not in (E.NOW, E.PRE):
                raise UnsupportedProgram("value accesses unsupported")
            return
        if isinstance(expr, E.Lit):
            if not isinstance(expr.value, bool):
                raise UnsupportedProgram("non-boolean literal in guard")
            return
        if isinstance(expr, E.UnOp) and expr.op == "!":
            self._check_expr(expr.operand)
            return
        if isinstance(expr, E.BinOp) and expr.op in ("&&", "||"):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        raise UnsupportedProgram(f"guard expression {expr!r} unsupported")

    def _index(self, stmt: A.Stmt) -> FrozenSet[int]:
        """Assign pause uids and collect per-subtree pause sets."""
        pauses: Set[int] = set()
        if isinstance(stmt, A.Pause):
            self._uids += 1
            self._pause_ids[id(stmt)] = self._uids
            pauses.add(self._uids)
        elif isinstance(stmt, A.Local):
            self._local_uids[id(stmt)] = {d.name: self._fresh(d.name) for d in stmt.decls}
            pauses |= self._index(stmt.body)
        else:
            for child in stmt.children():
                pauses |= self._index(child)
        self._subtree_pauses[id(stmt)] = frozenset(pauses)
        return frozenset(pauses)

    # ------------------------------------------------------------------
    # three-valued guard evaluation
    # ------------------------------------------------------------------

    def _eval3(self, expr: E.Expr, scope: _Scope, statuses: Dict[int, Optional[int]]):
        if isinstance(expr, E.SigRef):
            uid = scope.find(expr.signal)
            if expr.kind == E.PRE:
                return TRUE if uid in self._pre else FALSE
            return statuses[uid]
        if isinstance(expr, E.Lit):
            return TRUE if expr.value else FALSE
        if isinstance(expr, E.UnOp):
            return _not3(self._eval3(expr.operand, scope, statuses))
        if isinstance(expr, E.BinOp):
            left = self._eval3(expr.left, scope, statuses)
            right = self._eval3(expr.right, scope, statuses)
            return _and3(left, right) if expr.op == "&&" else _or3(left, right)
        raise UnsupportedProgram(f"guard {expr!r}")

    # ------------------------------------------------------------------
    # Must / Can analysis
    # ------------------------------------------------------------------

    def _analyse(
        self,
        stmt: A.Stmt,
        go: bool,
        res: bool,
        scope: _Scope,
        statuses: Dict[int, Optional[int]],
        must: bool,
    ) -> _Result:
        """Shared Must (``must=True``) / Can (``must=False``) analysis."""
        if not go and not res:
            return _NOTHING_RESULT

        if isinstance(stmt, A.Nothing):
            return _Result(frozenset({0}) if go else frozenset())

        if isinstance(stmt, A.Pause):
            codes: Set[int] = set()
            if go:
                codes.add(1)
            if res and self._pause_ids[id(stmt)] in self.sel:
                codes.add(0)
            return _Result(frozenset(codes))

        if isinstance(stmt, A.Emit):
            if not go:
                return _NOTHING_RESULT
            uid = scope.find(stmt.signal)
            return _Result(frozenset({0}), frozenset({uid}))

        if isinstance(stmt, A.Break):
            return _Result(frozenset({self._trap_code(stmt)}) if go else frozenset())

        if isinstance(stmt, A.Seq):
            codes: Set[int] = set()
            emits: Set[int] = set()
            run_go = go
            for item in stmt.items:
                result = self._analyse(item, run_go, res, scope, statuses, must)
                emits |= result.emits
                codes |= {c for c in result.codes if c != 0}
                run_go = 0 in result.codes
            if run_go:
                codes.add(0)
            return _Result(frozenset(codes), frozenset(emits))

        if isinstance(stmt, A.Par):
            emits = set()
            branch_codes: List[FrozenSet[int]] = []
            for branch in stmt.branches:
                executing = go or (res and self._selected(branch))
                result = self._analyse(branch, go, res, scope, statuses, must)
                emits |= result.emits
                if executing:
                    branch_codes.append(result.codes)
            if not branch_codes:
                return _Result(frozenset(), frozenset(emits))
            # In both analyses, a child with no possible completion code
            # (blocked in Must; provably non-completing in Can) prevents
            # the parallel from completing this instant.
            if any(not codes for codes in branch_codes):
                return _Result(frozenset(), frozenset(emits))
            combos = {max(choice) for choice in _cartesian(branch_codes)}
            return _Result(frozenset(combos), frozenset(emits))

        if isinstance(stmt, A.Loop):
            first = self._analyse(stmt.body, go or False, res, scope, statuses, must)
            emits = set(first.emits)
            codes = {c for c in first.codes if c != 0}
            if 0 in first.codes:
                second = self._analyse(stmt.body, True, False, scope, statuses, must)
                emits |= second.emits
                codes |= {c for c in second.codes if c != 0}
                if 0 in second.codes:
                    raise CausalityError("instantaneous loop at run time")
            return _Result(frozenset(codes), frozenset(emits))

        if isinstance(stmt, A.If):
            if not go:
                # only propagate to selected branches
                then = self._analyse(stmt.then, False, res, scope, statuses, must)
                orelse = self._analyse(stmt.orelse, False, res, scope, statuses, must)
                return _Result(then.codes | orelse.codes, then.emits | orelse.emits)
            value = self._eval3(stmt.test, scope, statuses)
            resumed_then = self._analyse(stmt.then, False, res, scope, statuses, must)
            resumed_else = self._analyse(stmt.orelse, False, res, scope, statuses, must)
            base = _Result(
                resumed_then.codes | resumed_else.codes,
                resumed_then.emits | resumed_else.emits,
            )
            if value is TRUE:
                taken = self._analyse(stmt.then, True, res, scope, statuses, must)
                return _Result(base.codes | taken.codes, base.emits | taken.emits)
            if value is FALSE:
                taken = self._analyse(stmt.orelse, True, res, scope, statuses, must)
                return _Result(base.codes | taken.codes, base.emits | taken.emits)
            if must:
                return _Result(frozenset(), base.emits)  # blocked on unknown test
            then = self._analyse(stmt.then, True, res, scope, statuses, must)
            orelse = self._analyse(stmt.orelse, True, res, scope, statuses, must)
            return _Result(
                base.codes | then.codes | orelse.codes,
                base.emits | then.emits | orelse.emits,
            )

        if isinstance(stmt, A.Abort):
            selected = self._selected(stmt.body)
            guard = BOT
            if res and selected:
                guard = self._eval3(stmt.delay.expr, scope, statuses)
            go_guard = None
            if go and stmt.delay.immediate:
                go_guard = self._eval3(stmt.delay.expr, scope, statuses)
            codes: Set[int] = set()
            emits: Set[int] = set()
            blocked = False
            # start path
            if go:
                if stmt.delay.immediate:
                    if go_guard is TRUE:
                        codes.add(0)
                    elif go_guard is BOT:
                        if must:
                            blocked = True
                        else:
                            codes.add(0)
                            result = self._analyse(stmt.body, True, False, scope, statuses, False)
                            codes |= result.codes
                            emits |= result.emits
                    if go_guard is FALSE:
                        result = self._analyse(stmt.body, True, False, scope, statuses, must)
                        codes |= result.codes
                        emits |= result.emits
                else:
                    result = self._analyse(stmt.body, True, False, scope, statuses, must)
                    codes |= result.codes
                    emits |= result.emits
            # resume path
            if res and selected:
                if guard is TRUE:
                    codes.add(0)
                elif guard is FALSE:
                    result = self._analyse(stmt.body, False, True, scope, statuses, must)
                    codes |= result.codes
                    emits |= result.emits
                else:  # unknown guard
                    if must:
                        blocked = True
                    else:
                        codes.add(0)
                        result = self._analyse(stmt.body, False, True, scope, statuses, False)
                        codes |= result.codes
                        emits |= result.emits
            if blocked:
                return _Result(frozenset(), frozenset(emits))
            return _Result(frozenset(codes), frozenset(emits))

        if isinstance(stmt, A.Suspend):
            selected = self._selected(stmt.body)
            codes = set()
            emits = set()
            blocked = False
            if go:
                result = self._analyse(stmt.body, True, False, scope, statuses, must)
                codes |= result.codes
                emits |= result.emits
            if res and selected:
                guard = self._eval3(stmt.delay.expr, scope, statuses)
                if guard is TRUE:
                    codes.add(1)
                elif guard is FALSE:
                    result = self._analyse(stmt.body, False, True, scope, statuses, must)
                    codes |= result.codes
                    emits |= result.emits
                else:
                    if must:
                        blocked = True
                    else:
                        codes.add(1)
                        result = self._analyse(stmt.body, False, True, scope, statuses, False)
                        codes |= result.codes
                        emits |= result.emits
            if blocked:
                return _Result(frozenset(), frozenset(emits))
            return _Result(frozenset(codes), frozenset(emits))

        if isinstance(stmt, A.Trap):
            self._trap_stack.append(stmt.label)
            try:
                result = self._analyse(stmt.body, go, res, scope, statuses, must)
            finally:
                self._trap_stack.pop()
            codes = set()
            for code in result.codes:
                if code == 2:
                    codes.add(0)
                elif code > 2:
                    codes.add(code - 1)
                else:
                    codes.add(code)
            return _Result(frozenset(codes), result.emits)

        if isinstance(stmt, A.Local):
            names = self._local_uids[id(stmt)]
            inner = _Scope(names, scope)
            return self._analyse(stmt.body, go, res, inner, statuses, must)

        raise UnsupportedProgram(type(stmt).__name__)

    def _selected(self, stmt: A.Stmt) -> bool:
        return bool(self._subtree_pauses[id(stmt)] & self.sel)

    _trap_stack: List[str] = []

    def _trap_code(self, stmt: A.Break) -> int:
        stack = self._trap_stack
        try:
            index = len(stack) - 1 - stack[::-1].index(stmt.label)
        except ValueError:
            raise UnsupportedProgram(f"unbound break {stmt.label!r}") from None
        return 2 + (len(stack) - 1 - index)

    # ------------------------------------------------------------------
    # execution (statuses fully known)
    # ------------------------------------------------------------------

    def _execute(
        self,
        stmt: A.Stmt,
        go: bool,
        res: bool,
        scope: _Scope,
        statuses: Dict[int, Optional[int]],
        new_sel: Set[int],
    ) -> Optional[int]:
        """Run the reaction; returns the completion code (None = does not
        complete this instant) and accumulates next-instant selections."""
        if not go and not res:
            return None

        if isinstance(stmt, A.Nothing):
            return 0 if go else None

        if isinstance(stmt, A.Pause):
            uid = self._pause_ids[id(stmt)]
            if res and uid in self.sel:
                return 0
            if go:
                new_sel.add(uid)
                return 1
            return None

        if isinstance(stmt, A.Emit):
            return 0 if go else None

        if isinstance(stmt, A.Break):
            return self._trap_code(stmt) if go else None

        if isinstance(stmt, A.Seq):
            run_go = go
            out: Optional[int] = None
            for item in stmt.items:
                code = self._execute(item, run_go, res, scope, statuses, new_sel)
                if code is not None and code != 0:
                    out = code if out is None else max(out, code)
                run_go = code == 0
            if out is not None:
                return out
            return 0 if run_go else None

        if isinstance(stmt, A.Par):
            codes: List[int] = []
            incomplete = False
            for branch in stmt.branches:
                executing = go or (res and self._selected(branch))
                code = self._execute(branch, go, res, scope, statuses, new_sel)
                if executing:
                    if code is None:
                        incomplete = True
                    else:
                        codes.append(code)
            if incomplete or not codes:
                return None
            return max(codes)

        if isinstance(stmt, A.Loop):
            code = self._execute(stmt.body, go, res, scope, statuses, new_sel)
            if code == 0:
                code = self._execute(stmt.body, True, False, scope, statuses, new_sel)
                if code == 0:
                    raise CausalityError("instantaneous loop at run time")
            return code

        if isinstance(stmt, A.If):
            taken = None
            if go:
                taken = stmt.then if self._eval3(stmt.test, scope, statuses) is TRUE else stmt.orelse
            then_code = self._execute(
                stmt.then, go and taken is stmt.then, res, scope, statuses, new_sel
            )
            else_code = self._execute(
                stmt.orelse, go and taken is stmt.orelse, res, scope, statuses, new_sel
            )
            if then_code is None:
                return else_code
            if else_code is None:
                return then_code
            return max(then_code, else_code)

        if isinstance(stmt, A.Abort):
            selected = self._selected(stmt.body)
            if res and selected:
                guard = self._eval3(stmt.delay.expr, scope, statuses)
                if guard is TRUE:
                    # strong preemption: the body does not run; its state decays
                    return 0
                code = self._execute(stmt.body, False, True, scope, statuses, new_sel)
                if code is not None:
                    return code
            if go:
                if stmt.delay.immediate and self._eval3(stmt.delay.expr, scope, statuses) is TRUE:
                    return 0
                return self._execute(stmt.body, True, False, scope, statuses, new_sel)
            return None

        if isinstance(stmt, A.Suspend):
            selected = self._selected(stmt.body)
            if res and selected:
                guard = self._eval3(stmt.delay.expr, scope, statuses)
                if guard is TRUE:
                    # frozen: keep the selection alive
                    new_sel.update(self._subtree_pauses[id(stmt.body)] & self.sel)
                    return 1
                code = self._execute(stmt.body, False, True, scope, statuses, new_sel)
                if code is not None:
                    return code
            if go:
                return self._execute(stmt.body, True, False, scope, statuses, new_sel)
            return None

        if isinstance(stmt, A.Trap):
            self._trap_stack.append(stmt.label)
            try:
                code = self._execute(stmt.body, go, res, scope, statuses, new_sel)
            finally:
                self._trap_stack.pop()
            if code is None:
                return None
            if code == 2:
                # the exit kills the whole body: discard its new selections
                new_sel.difference_update(self._subtree_pauses[id(stmt.body)])
                return 0
            if code > 2:
                return code - 1
            return code

        if isinstance(stmt, A.Local):
            names = self._local_uids[id(stmt)]
            return self._execute(stmt.body, go, res, _Scope(names, scope), statuses, new_sel)

        raise UnsupportedProgram(type(stmt).__name__)

    # ------------------------------------------------------------------
    # reactions
    # ------------------------------------------------------------------

    def react(self, present_inputs: Iterable[str] = ()) -> Set[str]:
        """One reaction; returns the set of present output names."""
        go = not self.booted
        res = self.booted
        self.booted = True

        statuses: Dict[int, Optional[int]] = {uid: BOT for uid in self._signal_names}
        present = set(present_inputs)
        unknown_inputs = present - set(self.inputs)
        if unknown_inputs:
            raise UnsupportedProgram(f"unknown inputs {sorted(unknown_inputs)}")
        for name, uid in self.inputs.items():
            # pure inputs are decided by the environment; inout signals can
            # additionally be emitted, so an absent inout stays unknown
            if name in present:
                statuses[uid] = TRUE
            elif self.module.signal(name).direction == "in":
                statuses[uid] = FALSE

        # constructive fixpoint
        while True:
            changed = False
            self._trap_stack = []
            must = self._analyse(self.body, go, res, self._scope, statuses, True)
            for uid in must.emits:
                if statuses[uid] is not TRUE:
                    statuses[uid] = TRUE
                    changed = True
            self._trap_stack = []
            can = self._analyse(self.body, go, res, self._scope, statuses, False)
            for uid, value in statuses.items():
                if value is BOT and uid not in can.emits and uid in self._maybe_program_signals():
                    statuses[uid] = FALSE
                    changed = True
            if not changed:
                break

        unresolved = [
            self._signal_names[uid]
            for uid, value in statuses.items()
            if value is BOT and uid in self._maybe_program_signals()
        ]
        if unresolved:
            raise CausalityError(
                "interpreter: causality error", unresolved
            )

        new_sel: Set[int] = set()
        self._trap_stack = []
        code = self._execute(self.body, go, res, self._scope, statuses, new_sel)
        self.sel = new_sel
        if code == 0:
            self.terminated = True

        self._pre = {uid for uid, value in statuses.items() if value is TRUE}
        return {
            name for name, uid in self.outputs.items() if statuses[uid] is TRUE
        }

    def _maybe_program_signals(self) -> Set[int]:
        """uids resolved by the program (locals + outputs + inouts)."""
        resolved = set(self._signal_names)
        for name, uid in self.inputs.items():
            if self.module.signal(name).direction == "in":
                resolved.discard(uid)
        return resolved
