"""Reference interpreter (constructive behavioral semantics).

An independent implementation of the language semantics, used to
cross-check the circuit backend: Esterel's Must/Can constructive analysis
resolves signal statuses, then a deterministic execution pass advances the
program state.  See :mod:`repro.interp.interp`.
"""

from repro.interp.interp import Interpreter, UnsupportedProgram

__all__ = ["Interpreter", "UnsupportedProgram"]
