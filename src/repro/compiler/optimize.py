"""Net-level circuit optimizer.

Three cooperating passes, iterated to a fixpoint and followed by a
dead-net sweep:

* **constant folding / aliasing** — OR/AND gates with constant fanins are
  simplified; single-fanin gates become aliases of their source (possibly
  negated);
* **gate deduplication** — structurally identical gates are merged (common
  subexpression elimination at the net level);
* **dead-net sweeping** — nets that no live net, register, action or
  machine-interface table references are removed and ids compacted.

Nets the runtime addresses directly (signal status nets, machine input
nets, exec wires, the root completion wires) are *protected*: they absorb
simplifications of their fanins but are never replaced, so the machine's
tables stay valid.

The optimizer exists both for performance and as an ablation axis
(DESIGN.md experiment A1): the paper's net counts are for its production
compiler, so we report optimized and unoptimized sizes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.compiler.netlist import ACTION, AND, EXPR, OR, Circuit, Literal, Net

_MAX_ROUNDS = 12


def _protected_ids(circuit: Circuit) -> Set[int]:
    protected: Set[int] = set()
    for attr in ("k0_net", "k1_net", "sel_net", "go_net"):
        net = getattr(circuit, attr)
        if net is not None:
            protected.add(net.id)
    for net in getattr(circuit, "extra_protected", ()):
        protected.add(net.id)
    for info in circuit.signals:
        if info.status_net is not None:
            protected.add(info.status_net.id)
        if info.input_net is not None:
            protected.add(info.input_net.id)
    for info in circuit.execs:
        if info.done_net is not None:
            protected.add(info.done_net.id)
        for action in (info.start_action, info.kill_action,
                       info.suspend_action, info.resume_action):
            if action is not None:
                protected.add(action.id)
    return protected


class _Rewriter:
    """Union-find-ish literal replacement map: net id → literal."""

    def __init__(self) -> None:
        self.map: Dict[int, Literal] = {}

    def resolve(self, literal: Literal) -> Literal:
        net_id, neg = literal
        seen = set()
        while net_id in self.map and net_id not in seen:
            seen.add(net_id)
            target, target_neg = self.map[net_id]
            net_id, neg = target, neg ^ target_neg
        return (net_id, neg)

    def alias(self, net_id: int, target: Literal) -> None:
        resolved = self.resolve(target)
        if resolved[0] != net_id:
            self.map[net_id] = resolved

    def __bool__(self) -> bool:
        return bool(self.map)


def _fold_gates(circuit: Circuit, protected: Set[int],
                aliased: Set[int] = frozenset()) -> _Rewriter:
    """One round of constant folding + single-fanin aliasing.

    ``aliased`` holds net ids bypassed in earlier rounds; they stay in
    ``circuit.nets`` until the final sweep but are dead, so re-aliasing
    them would make every round look like progress and the fixpoint loop
    would always run to ``_MAX_ROUNDS``.
    """
    rewriter = _Rewriter()
    const0 = circuit.const0().id
    const1 = circuit.const1().id

    def is_true(literal: Literal) -> bool:
        return (literal[0] == const1 and not literal[1]) or (
            literal[0] == const0 and literal[1]
        )

    def is_false(literal: Literal) -> bool:
        return (literal[0] == const0 and not literal[1]) or (
            literal[0] == const1 and literal[1]
        )

    for net in circuit.nets:
        if net.kind not in (AND, OR) or net.id in aliased:
            continue
        inputs = [rewriter.resolve(li) for li in net.inputs]
        if net.kind == OR:
            if any(is_true(li) for li in inputs):
                inputs = [(const1, False)]
            else:
                inputs = [li for li in inputs if not is_false(li)]
        else:
            if any(is_false(li) for li in inputs):
                inputs = [(const0, False)]
            else:
                inputs = [li for li in inputs if not is_true(li)]
        # dedupe identical fanins; detect x OR !x (leave it: it is not
        # constant under constructive semantics)
        seen: Set[Literal] = set()
        unique: List[Literal] = []
        for li in inputs:
            if li not in seen:
                seen.add(li)
                unique.append(li)
        net.inputs = unique
        if net.id in protected or net.id in (const0, const1):
            continue
        if not unique:
            rewriter.alias(net.id, (const0 if net.kind == OR else const1, False))
        elif len(unique) == 1:
            if is_true(unique[0]):
                rewriter.alias(net.id, (const1, False))
            elif is_false(unique[0]):
                rewriter.alias(net.id, (const0, False))
            else:
                rewriter.alias(net.id, unique[0])
    return rewriter


def _dedup_gates(circuit: Circuit, protected: Set[int],
                 aliased: Set[int] = frozenset()) -> _Rewriter:
    rewriter = _Rewriter()
    table: Dict[Tuple, int] = {}
    for net in circuit.nets:
        if net.kind not in (AND, OR) or net.id in protected or net.id in aliased:
            continue
        key = (net.kind, tuple(sorted(net.inputs)))
        winner = table.get(key)
        if winner is None:
            table[key] = net.id
        else:
            rewriter.alias(net.id, (winner, False))
    return rewriter


def _apply(circuit: Circuit, rewriter: _Rewriter, protected: Set[int]) -> None:
    if not rewriter:
        return
    const0 = circuit.const0().id
    for net in circuit.nets:
        net.inputs = [rewriter.resolve(li) for li in net.inputs]
        if net.kind in (EXPR, ACTION):
            # an action/expr net whose enable folded to constant-false can
            # never fire: rewire it so the sweep can drop it
            enable = net.inputs[0]
            if enable[0] == const0 and not enable[1] and net.id not in protected:
                rewriter.alias(net.id, (const0, False))
        new_deps: List[int] = []
        for dep in net.deps:
            resolved = rewriter.resolve((dep, False))[0]
            if resolved not in new_deps and resolved != net.id:
                new_deps.append(resolved)
        net.deps = new_deps
    for info in circuit.signals:
        info.writers = sorted(
            {rewriter.resolve((w, False))[0] for w in info.writers}
        )
        info.init_writers = sorted(
            {rewriter.resolve((w, False))[0] for w in info.init_writers}
        )


def optimize_circuit(circuit: Circuit) -> Circuit:
    """Optimize ``circuit`` in place (and return it).

    A round counts as progress only when it aliased a net that no
    earlier round had bypassed: already-bypassed gates linger in
    ``circuit.nets`` until the final sweep, and re-deriving the same
    aliases from them every round would defeat the fixpoint test.
    """
    protected = _protected_ids(circuit)
    aliased: Set[int] = set()
    for _ in range(_MAX_ROUNDS):
        changed = False
        for pass_fn in (_fold_gates, _dedup_gates):
            rewriter = pass_fn(circuit, protected, aliased)
            if rewriter:
                _apply(circuit, rewriter, protected)
                fresh = set(rewriter.map) - aliased
                if fresh:
                    aliased |= fresh
                    changed = True
        if not changed:
            break
    _compact(circuit)
    return circuit


def compact_circuit(circuit: Circuit) -> Circuit:
    """Run only the dead-net sweep (drop unreachable nets, renumber ids).

    The sub-circuit link path uses this instead of :func:`optimize_circuit`:
    templates are already optimized once at template build, so the final
    linked circuit only needs the debris (template port copies, constant
    duplicates) swept — keeping link cost O(circuit), not O(rounds ×
    circuit)."""
    _compact(circuit)
    return circuit


def _compact(circuit: Circuit) -> None:
    """Drop dead nets and renumber."""
    const0 = circuit.const0().id
    protected = _protected_ids(circuit)
    live: Set[int] = set(protected)
    live.add(const0)
    live.add(circuit.const1().id)
    for net in circuit.nets:
        if net.kind == ACTION:
            enable = net.inputs[0]
            if enable[0] == const0 and not enable[1]:
                continue
            live.add(net.id)
    stack = list(live)
    while stack:
        net = circuit.nets[stack.pop()]
        for source, _neg in net.inputs:
            if source not in live:
                live.add(source)
                stack.append(source)
        for dep in net.deps:
            if dep not in live:
                live.add(dep)
                stack.append(dep)

    if len(live) == len(circuit.nets):
        return

    remap: Dict[int, int] = {}
    survivors: List[Net] = []
    for net in circuit.nets:
        if net.id in live:
            remap[net.id] = len(survivors)
            survivors.append(net)
    for net in survivors:
        net.inputs = [(remap[src], neg) for src, neg in net.inputs]
        net.deps = [remap[d] for d in net.deps if d in remap]
    for net in survivors:
        net.id = remap[net.id]
    circuit.nets = survivors
    # `_const0`/`_const1`, interface/exec tables and the root wires hold
    # Net *objects*, which survive with their ids updated in place.
    for info in circuit.signals:
        info.writers = [remap[w] for w in info.writers if w in remap]
        info.init_writers = [remap[w] for w in info.init_writers if w in remap]
