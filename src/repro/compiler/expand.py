"""Macro expansion and module linking (lowering to the kernel language).

Surface constructs are rewritten into the kernel subset understood by the
circuit translator:

* ``halt``                 → ``loop { pause }``
* ``sustain S(e)``         → ``loop { emit S(e); pause }``
* ``await d``              → ``abort (d) { halt }``
* ``every (d) { p }``      → ``await d; loop { abort (d') { p; halt } }``
* ``do { p } every (d)``   → ``loop { abort (d') { p; halt } }``
* ``weakabort (d) { p }``  → ``trap T { {p; break T} par {await d; break T} }``
* ``run M(...)``           → inline M's body with signal renaming and
                             alpha-renamed ``var`` parameters

where ``d'`` is ``d`` stripped of its ``immediate`` flag (restarts test
their guard only at instants strictly after the restart, paper section 3).

Counted delays stay attached to the kernel ``abort``/``suspend``; the
translator implements them with counter cells.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import ExpansionError, LinkError
from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.transform import rename_vars_stmt


def _delayed(delay: A.Delay) -> A.Delay:
    """The delay used by restarted iterations: never immediate."""
    if not delay.immediate:
        return delay
    return A.Delay(delay.expr, False, delay.count, delay.loc)


class Expander:
    """Stateful expander: resolves ``run`` against a module table and
    guards against recursive instantiation.

    The fresh-name counters are *per instance* so that two compiles of
    the same program produce byte-identical expansions (and therefore
    byte-identical plan artifacts); they were once module globals, which
    made label/frame names depend on process history.

    With ``link=True``, ``run M(...)`` lowers to an
    :class:`~repro.lang.ast.LinkedRun` node (sub-circuit linking at
    translation time) whenever the callee qualifies; anything that
    defeats linking — ``var`` parameters, free trap labels or signal
    names, frame variables introduced by nested inlining, or a body that
    would fail validation in its own scope — falls back to today's
    inlining so behaviour is identical either way.
    """

    def __init__(self, modules: Optional[A.ModuleTable] = None, link: bool = False):
        self.modules = modules if modules is not None else A.ModuleTable()
        self.link = link
        self._run_stack: List[str] = []
        #: (frame_name, init Expr|None) pairs for alpha-renamed module vars
        self.frame_vars: List[Tuple[str, Optional[E.Expr]]] = []
        self._labels = itertools.count()
        self._frames = itertools.count()
        #: link-facts cache: id(module) -> (module, body, codes, sensitive,
        #: emitted) or (module, None) when the module defeats linking
        self._link_facts: dict = {}

    def _fresh_label(self, prefix: str) -> str:
        return f"${prefix}{next(self._labels)}"

    # ------------------------------------------------------------------

    def expand_module(self, module: A.Module) -> A.Stmt:
        """Expand a module body to kernel form.  Top-level ``var``
        parameters keep their declared names (they are machine-level
        bindings the host can provide at machine construction)."""
        for var in module.variables:
            self.frame_vars.append((var.name, var.init))
        return self.expand(module.body)

    def expand(self, stmt: A.Stmt) -> A.Stmt:
        method = getattr(self, f"_expand_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise ExpansionError(f"cannot expand {type(stmt).__name__}")
        return method(stmt)

    # -- kernel statements: recurse only ---------------------------------

    def _expand_nothing(self, stmt: A.Nothing) -> A.Stmt:
        return stmt

    def _expand_pause(self, stmt: A.Pause) -> A.Stmt:
        return stmt

    def _expand_emit(self, stmt: A.Emit) -> A.Stmt:
        return stmt

    def _expand_atom(self, stmt: A.Atom) -> A.Stmt:
        return stmt

    def _expand_break(self, stmt: A.Break) -> A.Stmt:
        return stmt

    def _expand_exec(self, stmt: A.Exec) -> A.Stmt:
        return stmt

    def _expand_linkedrun(self, stmt: "A.LinkedRun") -> A.Stmt:
        return stmt

    def _expand_seq(self, stmt: A.Seq) -> A.Stmt:
        items = [self.expand(s) for s in stmt.items]
        flat: List[A.Stmt] = []
        for item in items:
            if isinstance(item, A.Seq):
                flat.extend(item.items)
            elif not isinstance(item, A.Nothing):
                flat.append(item)
        if not flat:
            return A.Nothing(stmt.loc)
        if len(flat) == 1:
            return flat[0]
        return A.Seq(flat, stmt.loc)

    def _expand_par(self, stmt: A.Par) -> A.Stmt:
        branches = [self.expand(b) for b in stmt.branches]
        if len(branches) == 1:
            return branches[0]
        return A.Par(branches, stmt.loc)

    def _expand_loop(self, stmt: A.Loop) -> A.Stmt:
        return A.Loop(self.expand(stmt.body), stmt.loc)

    def _expand_if(self, stmt: A.If) -> A.Stmt:
        return A.If(stmt.test, self.expand(stmt.then), self.expand(stmt.orelse), stmt.loc)

    def _expand_suspend(self, stmt: A.Suspend) -> A.Stmt:
        if stmt.delay.immediate:
            raise ExpansionError("suspend does not support the immediate modifier")
        return A.Suspend(stmt.delay, self.expand(stmt.body), stmt.loc)

    def _expand_abort(self, stmt: A.Abort) -> A.Stmt:
        return A.Abort(stmt.delay, self.expand(stmt.body), stmt.loc)

    def _expand_trap(self, stmt: A.Trap) -> A.Stmt:
        return A.Trap(stmt.label, self.expand(stmt.body), stmt.loc)

    def _expand_local(self, stmt: A.Local) -> A.Stmt:
        return A.Local(stmt.decls, self.expand(stmt.body), stmt.loc)

    # -- macros ------------------------------------------------------------

    def _expand_halt(self, stmt: A.Halt) -> A.Stmt:
        return A.Loop(A.Pause(stmt.loc), stmt.loc)

    def _expand_sustain(self, stmt: A.Sustain) -> A.Stmt:
        return A.Loop(
            A.Seq([A.Emit(stmt.signal, stmt.value, stmt.loc), A.Pause(stmt.loc)], stmt.loc),
            stmt.loc,
        )

    def _expand_await(self, stmt: A.Await) -> A.Stmt:
        return A.Abort(stmt.delay, self._expand_halt(A.Halt(stmt.loc)), stmt.loc)

    def _expand_weakabort(self, stmt: A.WeakAbort) -> A.Stmt:
        label = self._fresh_label("weakabort")
        body = self.expand(stmt.body)
        return A.Trap(
            label,
            A.Par(
                [
                    A.Seq([body, A.Break(label, stmt.loc)], stmt.loc),
                    A.Seq(
                        [
                            self._expand_await(A.Await(stmt.delay, stmt.loc)),
                            A.Break(label, stmt.loc),
                        ],
                        stmt.loc,
                    ),
                ],
                stmt.loc,
            ),
            stmt.loc,
        )

    def _loop_each(self, delay: A.Delay, body: A.Stmt, loc) -> A.Stmt:
        """``loop { abort (d') { body; halt } }``"""
        return A.Loop(
            A.Abort(
                _delayed(delay),
                A.Seq([body, self._expand_halt(A.Halt(loc))], loc),
                loc,
            ),
            loc,
        )

    def _expand_doevery(self, stmt: A.DoEvery) -> A.Stmt:
        return self._loop_each(stmt.delay, self.expand(stmt.body), stmt.loc)

    def _expand_every(self, stmt: A.Every) -> A.Stmt:
        body = self.expand(stmt.body)
        return A.Seq(
            [
                self._expand_await(A.Await(stmt.delay, stmt.loc)),
                self._loop_each(stmt.delay, body, stmt.loc),
            ],
            stmt.loc,
        )

    # -- linking --------------------------------------------------------------

    def _resolve_module(self, run: A.Run) -> A.Module:
        if isinstance(run.module, A.Module):
            return run.module
        try:
            return self.modules.get(run.module)
        except KeyError as exc:
            raise LinkError(str(exc)) from exc

    def _resolve_bindings(self, module: A.Module, run: A.Run) -> Dict[str, str]:
        """Interpret ``A as B`` pairs.

        The paper uses both orders (``sig as connected`` binds interface
        ``sig`` to environment ``connected``; ``tmo as time`` binds
        environment ``tmo`` to interface ``time``), so we resolve against
        the callee's interface: whichever of the two names is an interface
        signal is the interface side.
        """
        iface = {d.name for d in module.interface}
        result: Dict[str, str] = {}
        for first, second in run.bindings.items():
            if first in iface:
                result[first] = second
            elif second in iface:
                result[second] = first
            else:
                raise LinkError(
                    f"run {module.name}: neither {first!r} nor {second!r} "
                    f"is an interface signal of {module.name}"
                )
        return result

    def _expand_run(self, run: A.Run) -> A.Stmt:
        module = self._resolve_module(run)
        if module.name in self._run_stack:
            chain = " -> ".join(self._run_stack + [module.name])
            raise LinkError(f"recursive module instantiation: {chain}")

        bindings = self._resolve_bindings(module, run)
        # Unbound interface signals bind to the caller signal of the same
        # name (the `...` form); an explicit identity map keeps renaming
        # deterministic under further renamings.
        mapping = {d.name: bindings.get(d.name, d.name) for d in module.interface}

        # var parameters: alpha-rename to a fresh frame slot per instance.
        var_names = {v.name for v in module.variables}
        unknown = set(run.var_args) - var_names
        if unknown:
            raise LinkError(
                f"run {module.name}: unknown var parameter(s) {sorted(unknown)}"
            )

        if self.link and not module.variables and not run.var_args:
            facts = self._linkable_facts(module)
            if facts is not None:
                body, codes, sensitive, emitted = facts
                return A.LinkedRun(
                    module, mapping, body, codes, sensitive, emitted, run.loc
                )

        instance = next(self._frames)
        var_map = {v.name: f"{v.name}@{module.name}#{instance}" for v in module.variables}

        body = module.body.rename_signals(mapping)
        body = rename_vars_stmt(body, var_map)

        assigns: List[A.HostStmt] = []
        for var in module.variables:
            frame_name = var_map[var.name]
            init = run.var_args.get(var.name, var.init)
            self.frame_vars.append((frame_name, None))
            if init is not None:
                assigns.append(A.Assign(frame_name, init, run.loc))

        self._run_stack.append(module.name)
        try:
            expanded = self.expand(body)
        finally:
            self._run_stack.pop()

        if assigns:
            return A.Seq([A.Atom(assigns, run.loc), expanded], run.loc)
        return expanded

    # -- linkability ---------------------------------------------------------

    def _linkable_facts(self, module: A.Module):
        """Expand ``module``'s body once (callee-side names) and decide
        whether it qualifies for sub-circuit linking.

        Returns ``(body, instant_codes, sensitive, emitted)`` or ``None``
        when the module defeats linking; in the latter case the caller
        falls back to inlining, where validation reports any problem with
        its canonical message.  Cached per module object.
        """
        cached = self._link_facts.get(id(module))
        if cached is not None and cached[0] is module:
            return cached[1]

        frame_mark = len(self.frame_vars)
        self._run_stack.append(module.name)
        try:
            body = self.expand(module.body)
        except LinkError:
            raise
        finally:
            self._run_stack.pop()

        facts = None
        if len(self.frame_vars) == frame_mark:
            # no nested inlining introduced per-instance frame slots the
            # template would otherwise share across instantiations
            facts = _analyze_linked_body(module, body)
        else:
            del self.frame_vars[frame_mark:]
        self._link_facts[id(module)] = (module, facts)
        return facts


def _analyze_linked_body(module: A.Module, body: A.Stmt):
    """Scope-aware walk of an expanded callee body.

    Computes the facts a :class:`~repro.lang.ast.LinkedRun` carries —
    instant completion codes, incarnation sensitivity, emitted interface
    names — and rejects (returns ``None``) anything whose behaviour under
    linking could differ from inlining or whose validation needs the
    caller's scope: free signal names, free trap labels, or emission of a
    locally-declared pure input.
    """
    from repro.lang.validate import TERMINATE, instant_codes
    from repro.lang.signals import IN

    iface = {d.name for d in module.interface}
    emitted: set = set()
    state = {"sensitive": False, "ok": True}

    def refer(name: str, locals_: dict) -> None:
        if name not in locals_ and name not in iface:
            state["ok"] = False

    def refer_expr(expr, locals_: dict) -> None:
        for name, _kind in expr.signal_deps():
            refer(name, locals_)

    def emit(name: str, locals_: dict) -> None:
        decl = locals_.get(name)
        if decl is not None:
            if decl.direction == IN:
                state["ok"] = False  # inlining would reject this too
            return
        if name in iface:
            emitted.add(name)
        else:
            state["ok"] = False

    def walk(stmt: A.Stmt, locals_: dict, traps: tuple) -> None:
        if not state["ok"]:
            return
        if isinstance(stmt, (A.Nothing, A.Pause)):
            return
        if isinstance(stmt, A.Emit):
            emit(stmt.signal, locals_)
            if stmt.value is not None:
                refer_expr(stmt.value, locals_)
            return
        if isinstance(stmt, A.Atom):
            for host in stmt.body:
                for expr in host.exprs():
                    refer_expr(expr, locals_)
            return
        if isinstance(stmt, A.Seq):
            for item in stmt.items:
                walk(item, locals_, traps)
            return
        if isinstance(stmt, A.Par):
            for branch in stmt.branches:
                walk(branch, locals_, traps)
            return
        if isinstance(stmt, A.Loop):
            if TERMINATE in instant_codes(stmt.body):
                state["ok"] = False  # let inlining raise the canonical error
                return
            walk(stmt.body, locals_, traps)
            return
        if isinstance(stmt, A.If):
            refer_expr(stmt.test, locals_)
            walk(stmt.then, locals_, traps)
            walk(stmt.orelse, locals_, traps)
            return
        if isinstance(stmt, (A.Abort, A.Suspend)):
            refer_expr(stmt.delay.expr, locals_)
            if stmt.delay.count is not None:
                refer_expr(stmt.delay.count, locals_)
                state["sensitive"] = True
            walk(stmt.body, locals_, traps)
            return
        if isinstance(stmt, A.Trap):
            walk(stmt.body, locals_, traps + (stmt.label,))
            return
        if isinstance(stmt, A.Break):
            if stmt.label not in traps:
                state["ok"] = False  # free label would capture a caller trap
            return
        if isinstance(stmt, A.Local):
            state["sensitive"] = True
            for decl in stmt.decls:
                if decl.init is not None:
                    refer_expr(decl.init, locals_)
            inner = dict(locals_)
            for decl in stmt.decls:
                inner[decl.name] = decl
            walk(stmt.body, inner, traps)
            return
        if isinstance(stmt, A.Exec):
            state["sensitive"] = True
            if stmt.signal is not None:
                emit(stmt.signal, locals_)
            for expr in stmt.exprs():
                refer_expr(expr, locals_)
            return
        if isinstance(stmt, A.LinkedRun):
            if stmt.sensitive:
                state["sensitive"] = True
            for n_iface, bound in stmt.bindings.items():
                if n_iface in stmt.emitted:
                    emit(bound, locals_)
                else:
                    refer(bound, locals_)
            return
        # anything unrecognized: be safe, fall back to inlining
        state["ok"] = False

    walk(body, {}, ())
    if not state["ok"]:
        return None
    codes = instant_codes(body)
    if any(code != TERMINATE for code in codes):
        return None  # free trap escape survived (defensive; Break check covers it)
    return (body, codes, state["sensitive"], frozenset(emitted))


def expand_module(
    module: A.Module,
    modules: Optional[A.ModuleTable] = None,
    link: bool = False,
) -> Tuple[A.Stmt, List[Tuple[str, Optional[E.Expr]]]]:
    """Expand ``module`` to kernel form.

    Returns the kernel body and the list of frame variables (name, init)
    accumulated from ``var`` declarations of the module and all inlined
    instances.  With ``link=True``, eligible ``run`` statements lower to
    :class:`~repro.lang.ast.LinkedRun` nodes for sub-circuit linking.
    """
    expander = Expander(modules, link=link)
    body = expander.expand_module(module)
    return body, expander.frame_vars


def expand_statement(stmt: A.Stmt, modules: Optional[A.ModuleTable] = None) -> A.Stmt:
    """Expand a bare statement (used by tests and the interpreter)."""
    return Expander(modules).expand(stmt)
