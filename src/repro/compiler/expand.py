"""Macro expansion and module linking (lowering to the kernel language).

Surface constructs are rewritten into the kernel subset understood by the
circuit translator:

* ``halt``                 → ``loop { pause }``
* ``sustain S(e)``         → ``loop { emit S(e); pause }``
* ``await d``              → ``abort (d) { halt }``
* ``every (d) { p }``      → ``await d; loop { abort (d') { p; halt } }``
* ``do { p } every (d)``   → ``loop { abort (d') { p; halt } }``
* ``weakabort (d) { p }``  → ``trap T { {p; break T} par {await d; break T} }``
* ``run M(...)``           → inline M's body with signal renaming and
                             alpha-renamed ``var`` parameters

where ``d'`` is ``d`` stripped of its ``immediate`` flag (restarts test
their guard only at instants strictly after the restart, paper section 3).

Counted delays stay attached to the kernel ``abort``/``suspend``; the
translator implements them with counter cells.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import ExpansionError, LinkError
from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.transform import rename_vars_stmt

_fresh_labels = itertools.count()
_fresh_frames = itertools.count()


def _fresh_label(prefix: str) -> str:
    return f"${prefix}{next(_fresh_labels)}"


def _delayed(delay: A.Delay) -> A.Delay:
    """The delay used by restarted iterations: never immediate."""
    if not delay.immediate:
        return delay
    return A.Delay(delay.expr, False, delay.count, delay.loc)


class Expander:
    """Stateful expander: resolves ``run`` against a module table and
    guards against recursive instantiation."""

    def __init__(self, modules: Optional[A.ModuleTable] = None):
        self.modules = modules if modules is not None else A.ModuleTable()
        self._run_stack: List[str] = []
        #: (frame_name, init Expr|None) pairs for alpha-renamed module vars
        self.frame_vars: List[Tuple[str, Optional[E.Expr]]] = []

    # ------------------------------------------------------------------

    def expand_module(self, module: A.Module) -> A.Stmt:
        """Expand a module body to kernel form.  Top-level ``var``
        parameters keep their declared names (they are machine-level
        bindings the host can provide at machine construction)."""
        for var in module.variables:
            self.frame_vars.append((var.name, var.init))
        return self.expand(module.body)

    def expand(self, stmt: A.Stmt) -> A.Stmt:
        method = getattr(self, f"_expand_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise ExpansionError(f"cannot expand {type(stmt).__name__}")
        return method(stmt)

    # -- kernel statements: recurse only ---------------------------------

    def _expand_nothing(self, stmt: A.Nothing) -> A.Stmt:
        return stmt

    def _expand_pause(self, stmt: A.Pause) -> A.Stmt:
        return stmt

    def _expand_emit(self, stmt: A.Emit) -> A.Stmt:
        return stmt

    def _expand_atom(self, stmt: A.Atom) -> A.Stmt:
        return stmt

    def _expand_break(self, stmt: A.Break) -> A.Stmt:
        return stmt

    def _expand_exec(self, stmt: A.Exec) -> A.Stmt:
        return stmt

    def _expand_seq(self, stmt: A.Seq) -> A.Stmt:
        items = [self.expand(s) for s in stmt.items]
        flat: List[A.Stmt] = []
        for item in items:
            if isinstance(item, A.Seq):
                flat.extend(item.items)
            elif not isinstance(item, A.Nothing):
                flat.append(item)
        if not flat:
            return A.Nothing(stmt.loc)
        if len(flat) == 1:
            return flat[0]
        return A.Seq(flat, stmt.loc)

    def _expand_par(self, stmt: A.Par) -> A.Stmt:
        branches = [self.expand(b) for b in stmt.branches]
        if len(branches) == 1:
            return branches[0]
        return A.Par(branches, stmt.loc)

    def _expand_loop(self, stmt: A.Loop) -> A.Stmt:
        return A.Loop(self.expand(stmt.body), stmt.loc)

    def _expand_if(self, stmt: A.If) -> A.Stmt:
        return A.If(stmt.test, self.expand(stmt.then), self.expand(stmt.orelse), stmt.loc)

    def _expand_suspend(self, stmt: A.Suspend) -> A.Stmt:
        if stmt.delay.immediate:
            raise ExpansionError("suspend does not support the immediate modifier")
        return A.Suspend(stmt.delay, self.expand(stmt.body), stmt.loc)

    def _expand_abort(self, stmt: A.Abort) -> A.Stmt:
        return A.Abort(stmt.delay, self.expand(stmt.body), stmt.loc)

    def _expand_trap(self, stmt: A.Trap) -> A.Stmt:
        return A.Trap(stmt.label, self.expand(stmt.body), stmt.loc)

    def _expand_local(self, stmt: A.Local) -> A.Stmt:
        return A.Local(stmt.decls, self.expand(stmt.body), stmt.loc)

    # -- macros ------------------------------------------------------------

    def _expand_halt(self, stmt: A.Halt) -> A.Stmt:
        return A.Loop(A.Pause(stmt.loc), stmt.loc)

    def _expand_sustain(self, stmt: A.Sustain) -> A.Stmt:
        return A.Loop(
            A.Seq([A.Emit(stmt.signal, stmt.value, stmt.loc), A.Pause(stmt.loc)], stmt.loc),
            stmt.loc,
        )

    def _expand_await(self, stmt: A.Await) -> A.Stmt:
        return A.Abort(stmt.delay, self._expand_halt(A.Halt(stmt.loc)), stmt.loc)

    def _expand_weakabort(self, stmt: A.WeakAbort) -> A.Stmt:
        label = _fresh_label("weakabort")
        body = self.expand(stmt.body)
        return A.Trap(
            label,
            A.Par(
                [
                    A.Seq([body, A.Break(label, stmt.loc)], stmt.loc),
                    A.Seq(
                        [
                            self._expand_await(A.Await(stmt.delay, stmt.loc)),
                            A.Break(label, stmt.loc),
                        ],
                        stmt.loc,
                    ),
                ],
                stmt.loc,
            ),
            stmt.loc,
        )

    def _loop_each(self, delay: A.Delay, body: A.Stmt, loc) -> A.Stmt:
        """``loop { abort (d') { body; halt } }``"""
        return A.Loop(
            A.Abort(
                _delayed(delay),
                A.Seq([body, self._expand_halt(A.Halt(loc))], loc),
                loc,
            ),
            loc,
        )

    def _expand_doevery(self, stmt: A.DoEvery) -> A.Stmt:
        return self._loop_each(stmt.delay, self.expand(stmt.body), stmt.loc)

    def _expand_every(self, stmt: A.Every) -> A.Stmt:
        body = self.expand(stmt.body)
        return A.Seq(
            [
                self._expand_await(A.Await(stmt.delay, stmt.loc)),
                self._loop_each(stmt.delay, body, stmt.loc),
            ],
            stmt.loc,
        )

    # -- linking --------------------------------------------------------------

    def _resolve_module(self, run: A.Run) -> A.Module:
        if isinstance(run.module, A.Module):
            return run.module
        try:
            return self.modules.get(run.module)
        except KeyError as exc:
            raise LinkError(str(exc)) from exc

    def _resolve_bindings(self, module: A.Module, run: A.Run) -> Dict[str, str]:
        """Interpret ``A as B`` pairs.

        The paper uses both orders (``sig as connected`` binds interface
        ``sig`` to environment ``connected``; ``tmo as time`` binds
        environment ``tmo`` to interface ``time``), so we resolve against
        the callee's interface: whichever of the two names is an interface
        signal is the interface side.
        """
        iface = {d.name for d in module.interface}
        result: Dict[str, str] = {}
        for first, second in run.bindings.items():
            if first in iface:
                result[first] = second
            elif second in iface:
                result[second] = first
            else:
                raise LinkError(
                    f"run {module.name}: neither {first!r} nor {second!r} "
                    f"is an interface signal of {module.name}"
                )
        return result

    def _expand_run(self, run: A.Run) -> A.Stmt:
        module = self._resolve_module(run)
        if module.name in self._run_stack:
            chain = " -> ".join(self._run_stack + [module.name])
            raise LinkError(f"recursive module instantiation: {chain}")

        bindings = self._resolve_bindings(module, run)
        # Unbound interface signals bind to the caller signal of the same
        # name (the `...` form); an explicit identity map keeps renaming
        # deterministic under further renamings.
        mapping = {d.name: bindings.get(d.name, d.name) for d in module.interface}

        # var parameters: alpha-rename to a fresh frame slot per instance.
        var_names = {v.name for v in module.variables}
        unknown = set(run.var_args) - var_names
        if unknown:
            raise LinkError(
                f"run {module.name}: unknown var parameter(s) {sorted(unknown)}"
            )
        instance = next(_fresh_frames)
        var_map = {v.name: f"{v.name}@{module.name}#{instance}" for v in module.variables}

        body = module.body.rename_signals(mapping)
        body = rename_vars_stmt(body, var_map)

        assigns: List[A.HostStmt] = []
        for var in module.variables:
            frame_name = var_map[var.name]
            init = run.var_args.get(var.name, var.init)
            self.frame_vars.append((frame_name, None))
            if init is not None:
                assigns.append(A.Assign(frame_name, init, run.loc))

        self._run_stack.append(module.name)
        try:
            expanded = self.expand(body)
        finally:
            self._run_stack.pop()

        if assigns:
            return A.Seq([A.Atom(assigns, run.loc), expanded], run.loc)
        return expanded


def expand_module(module: A.Module, modules: Optional[A.ModuleTable] = None) -> Tuple[A.Stmt, List[Tuple[str, Optional[E.Expr]]]]:
    """Expand ``module`` to kernel form.

    Returns the kernel body and the list of frame variables (name, init)
    accumulated from ``var`` declarations of the module and all inlined
    instances.
    """
    expander = Expander(modules)
    body = expander.expand_module(module)
    return body, expander.frame_vars


def expand_statement(stmt: A.Stmt, modules: Optional[A.ModuleTable] = None) -> A.Stmt:
    """Expand a bare statement (used by tests and the interpreter)."""
    return Expander(modules).expand(stmt)
