"""GraphViz export of augmented boolean circuits.

Renders the compiled net graph for inspection — gates, registers, the
augmented expression/action nets with their data-dependency edges (drawn
dashed), and the machine interface.  Handy for understanding how a
statement compiles and for debugging causality cycles (pass the nets of a
:class:`~repro.errors.CausalityError` as ``highlight``).

::

    from repro.compiler.dotgraph import circuit_to_dot
    print(circuit_to_dot(machine.compiled.circuit))
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.compiler.netlist import ACTION, AND, EXPR, INPUT, OR, REG, Circuit

_SHAPES = {
    AND: ("box", "#dbeafe"),
    OR: ("ellipse", "#dcfce7"),
    REG: ("box3d", "#fef9c3"),
    INPUT: ("invhouse", "#fae8ff"),
    EXPR: ("diamond", "#ffedd5"),
    ACTION: ("component", "#fee2e2"),
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def circuit_to_dot(
    circuit: Circuit,
    highlight: Iterable[int] = (),
    include_labels: bool = True,
    max_nets: Optional[int] = None,
) -> str:
    """Render ``circuit`` as a GraphViz ``digraph`` source string.

    :param highlight: net ids drawn with a red border (e.g. an unresolved
        causality cycle).
    :param max_nets: truncate very large circuits (None = no limit).
    """
    hot: Set[int] = set(highlight)
    lines = [
        f'digraph "{_escape(circuit.name)}" {{',
        "  rankdir=LR;",
        '  node [fontname="monospace", fontsize=9, style=filled];',
    ]
    nets = circuit.nets if max_nets is None else circuit.nets[:max_nets]
    shown = {net.id for net in nets}

    for net in nets:
        shape, fill = _SHAPES.get(net.kind, ("ellipse", "#eeeeee"))
        label = f"#{net.id} {net.kind}"
        if include_labels and net.label:
            label += f"\\n{_escape(net.label)}"
        extra = ', color="red", penwidth=2' if net.id in hot else ""
        lines.append(f'  n{net.id} [shape={shape}, fillcolor="{fill}", label="{label}"{extra}];')

    for net in nets:
        for src, negated in net.inputs:
            if src not in shown:
                continue
            style = ' [arrowhead=odot, color="#7f1d1d"]' if negated else ""
            lines.append(f"  n{src} -> n{net.id}{style};")
        for dep in net.deps:
            if dep in shown:
                lines.append(f'  n{dep} -> n{net.id} [style=dashed, color="#64748b"];')

    if max_nets is not None and len(circuit.nets) > max_nets:
        lines.append(
            f'  truncated [shape=note, label="... {len(circuit.nets) - max_nets} more nets"];'
        )
    lines.append("}")
    return "\n".join(lines)


def statement_to_dot(source: str) -> str:
    """Compile a one-module source string and render its circuit."""
    from repro.compiler.compile import compile_module
    from repro.syntax import parse_module

    compiled = compile_module(parse_module(source))
    return circuit_to_dot(compiled.circuit)
