"""The augmented boolean circuit intermediate representation (paper §5.1).

A circuit is a list of *nets*:

* **gates** — combinational AND/OR equations over literals (a literal is a
  net with an optional negation, so explicit NOT nets are not needed);
* **registers** — unit delays: their output at reaction *n+1* is their
  input at reaction *n* (the hardware ``pre``);
* **inputs** — set by the environment before each reaction (the boot wire,
  input signal statuses, async completion wires);
* **expression nets** — boolean nets whose value is computed by a host
  data expression ("augmented by a data expression", §5.1), guarded by an
  *enable* literal and ordered by data dependencies;
* **action nets** — like expression nets but executed for effect (signal
  emission, host atoms, exec start/kill hooks).

Data dependencies (``deps`` on expression/action nets) order every emitter
of a signal before every reader of its value within the instant, which is
exactly the microscheduling constraint of the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CompileError, SourceLocation

# Net kinds
AND = "and"
OR = "or"
REG = "reg"
INPUT = "input"
EXPR = "expr"
ACTION = "action"

#: A literal: (net_id, negated)
Literal = Tuple[int, bool]


def lit(net: "Net", negated: bool = False) -> Literal:
    return (net.id, negated)


class Net:
    """One net of the circuit."""

    __slots__ = (
        "id",
        "kind",
        "inputs",
        "label",
        "loc",
        "payload",
        "deps",
        "init",
        "expr_info",
        "spec",
    )

    def __init__(
        self,
        net_id: int,
        kind: str,
        inputs: Sequence[Literal] = (),
        label: str = "",
        loc: Optional[SourceLocation] = None,
    ):
        self.id = net_id
        self.kind = kind
        self.inputs: List[Literal] = list(inputs)
        self.label = label
        self.loc = loc
        #: for EXPR/ACTION nets: the payload callable (see :class:`Circuit`)
        self.payload: Optional[Callable[..., Any]] = None
        #: for EXPR/ACTION nets: ids of nets that must be *resolved* before
        #: the payload may run (signal status nets and writer action nets)
        self.deps: List[int] = []
        #: for REG nets: the boot value
        self.init: bool = False
        #: for EXPR nets built from a plain host expression: the
        #: ``(expr, scope)`` pair behind ``payload``, kept so the word
        #: plan (:mod:`repro.compiler.wordplan`) can lower pure-status
        #: tests to bitwise column operations instead of per-member
        #: payload calls; ``None`` for custom closures (counted delays,
        #: emit/atom/exec actions)
        self.expr_info: Optional[tuple] = None
        #: for EXPR/ACTION nets: the *relink spec* behind ``payload`` — a
        #: plain data tuple (kind, exprs/host statements, scope snapshot,
        #: slot numbers) from which :func:`repro.compiler.translate.build_payload`
        #: rebuilds the closure.  Specs make payload nets relocatable
        #: (sub-circuit linking remaps the slots and rebuilds the closure)
        #: and make circuits picklable (plan artifacts drop the closure
        #: and rebuild it on hydration).  ``None`` for non-payload nets.
        self.spec: Optional[tuple] = None

    def __getstate__(self) -> tuple:
        # Payload closures cannot cross a process boundary; they are
        # rebuilt from ``spec`` on the far side (see hydrate_plan_artifact).
        return (
            self.id, self.kind, self.inputs, self.label, self.loc,
            self.deps, self.init, self.expr_info, self.spec,
        )

    def __setstate__(self, state: tuple) -> None:
        (self.id, self.kind, self.inputs, self.label, self.loc,
         self.deps, self.init, self.expr_info, self.spec) = state
        self.payload = None

    @property
    def enable(self) -> Literal:
        """EXPR/ACTION nets have exactly one boolean input: the enable."""
        return self.inputs[0]

    def describe(self) -> str:
        where = f" @{self.loc}" if self.loc else ""
        return f"#{self.id} {self.kind} {self.label}{where}"

    def __repr__(self) -> str:
        return f"Net({self.describe()})"


class SignalInfo:
    """Compile-time record of one signal instance.

    Several signal *instances* can share a source-level name (locals in
    reincarnated loop copies, locals of repeatedly-instantiated modules);
    each instance owns a runtime slot identified by ``slot``.
    """

    __slots__ = (
        "slot",
        "name",
        "direction",
        "init",
        "combine",
        "status_net",
        "input_net",
        "writers",
        "init_writers",
        "bound_name",
    )

    def __init__(self, slot: int, name: str, direction: str, init: Any, combine: Any):
        self.slot = slot
        self.name = name
        self.direction = direction
        self.init = init  # an Expr or None
        self.combine = combine
        self.status_net: Optional[Net] = None
        self.input_net: Optional[Net] = None
        #: ids of action nets that may write the value this instant
        self.writers: List[int] = []
        #: subset of writers that (re-)initialize the value on scope entry;
        #: ordered before all other writers of the same signal
        self.init_writers: List[int] = []
        #: the machine-interface name (for `S.signame`); locals keep their own
        self.bound_name: str = name

    def __repr__(self) -> str:
        return f"SignalInfo({self.name}@{self.slot})"


class ExecInfo:
    """Compile-time record of one ``async`` statement occurrence."""

    __slots__ = (
        "slot",
        "name",
        "signal",
        "done_net",
        "start_action",
        "kill_action",
        "suspend_action",
        "resume_action",
        "stmt",
        "loc",
    )

    def __init__(self, slot: int, name: str, signal: Optional[SignalInfo], loc=None):
        self.slot = slot
        self.name = name
        self.signal = signal
        self.done_net: Optional[Net] = None
        self.start_action = None
        self.kill_action = None
        self.suspend_action = None
        self.resume_action = None
        #: the Exec AST node (holds the start/kill/suspend/resume actions)
        self.stmt = None
        self.loc = loc


class CounterInfo:
    """Compile-time record of a counted delay's counter cell."""

    __slots__ = ("slot", "loc", "arity")

    def __init__(self, slot: int, loc=None, arity: str = ""):
        self.slot = slot
        self.loc = loc
        #: rendered source of the count expression — part of the shape
        #: fingerprint so counted-delay edits can't alias (see
        #: ``compile._shape_fingerprint``)
        self.arity = arity


class StateSegment:
    """One linked module instance's share of a circuit's sequential state.

    ``path`` is the instance path (``/M#0``, nested ``/M#0/N#1``); the
    spine (state owned by the top-level module body) is the implicit
    remainder.  Registers are recorded as Net *objects* (ids may be
    renumbered by the final sweep); signals/counters/execs as slot
    numbers.  Versioned state migration keys state by
    ``(segment path, stable label, occurrence)`` so program edits inside
    one module do not shift every other module's keys.
    """

    __slots__ = ("path", "module", "registers", "signal_slots",
                 "counter_slots", "exec_slots")

    def __init__(self, path: str, module: str):
        self.path = path
        self.module = module
        self.registers: List[Net] = []
        self.signal_slots: List[int] = []
        self.counter_slots: List[int] = []
        self.exec_slots: List[int] = []

    def __repr__(self) -> str:
        return (f"StateSegment({self.path}, {len(self.registers)} regs, "
                f"{len(self.signal_slots)} sigs)")


class Circuit:
    """A complete augmented boolean circuit plus its interface tables."""

    def __init__(self, name: str = "<circuit>"):
        self.name = name
        self.nets: List[Net] = []
        #: boot wire: 1 at the first reaction only (via the boot register)
        self.go_net: Optional[Net] = None
        self.res_net: Optional[Net] = None
        #: root completion wires
        self.k0_net: Optional[Net] = None
        self.k1_net: Optional[Net] = None
        self.sel_net: Optional[Net] = None
        #: all signal instances, indexed by slot
        self.signals: List[SignalInfo] = []
        #: machine interface: name -> SignalInfo (inputs and outputs)
        self.interface: Dict[str, SignalInfo] = {}
        #: exec slots
        self.execs: List[ExecInfo] = []
        #: counter slots
        self.counters: List[CounterInfo] = []
        #: module `var` parameters and `let` variables with initializers:
        #: list of (frame_name, init Expr or None)
        self.frame_vars: List[Tuple[str, Any]] = []
        #: nets the optimizer must neither alias nor sweep beyond the
        #: always-protected tables (template ports and root wires of
        #: sub-circuit templates; see :mod:`repro.compiler.link`)
        self.extra_protected: List[Net] = []
        #: state segments recorded at sub-circuit link sites: each entry
        #: maps a linked module instance (path like ``/M#0``) to the
        #: registers / signal / counter / exec slots it owns, giving
        #: versioned state migration stable per-module keys (see
        #: :mod:`repro.runtime.migrate`)
        self.segments: List[Any] = []
        #: causality warnings aggregated from linked sub-circuit templates
        self.link_warnings: List[str] = []
        self._const0: Optional[Net] = None
        self._const1: Optional[Net] = None

    # -- construction -------------------------------------------------------

    def _new(self, kind: str, inputs: Sequence[Literal], label: str, loc=None) -> Net:
        net = Net(len(self.nets), kind, inputs, label, loc)
        self.nets.append(net)
        return net

    def input_net(self, label: str, loc=None) -> Net:
        return self._new(INPUT, (), label, loc)

    def gate_or(self, inputs: Sequence[Literal], label: str = "or", loc=None) -> Net:
        return self._new(OR, inputs, label, loc)

    def gate_and(self, inputs: Sequence[Literal], label: str = "and", loc=None) -> Net:
        return self._new(AND, inputs, label, loc)

    def const0(self) -> Net:
        if self._const0 is None:
            self._const0 = self.gate_or((), "const0")
        return self._const0

    def const1(self) -> Net:
        if self._const1 is None:
            self._const1 = self.gate_and((), "const1")
        return self._const1

    def register(self, label: str = "reg", init: bool = False, loc=None) -> Net:
        net = self._new(REG, (), label, loc)
        net.init = init
        return net

    def set_register_input(self, reg: Net, source: Literal) -> None:
        if reg.kind != REG:
            raise CompileError(f"not a register: {reg.describe()}")
        reg.inputs = [source]

    def expr_net(
        self,
        enable: Literal,
        payload: Callable[..., Any],
        deps: Iterable[Net] = (),
        label: str = "expr",
        loc=None,
    ) -> Net:
        net = self._new(EXPR, (enable,), label, loc)
        net.payload = payload
        net.deps = [d.id for d in deps]
        return net

    def action_net(
        self,
        enable: Literal,
        payload: Callable[..., Any],
        deps: Iterable[Net] = (),
        label: str = "action",
        loc=None,
    ) -> Net:
        net = self._new(ACTION, (enable,), label, loc)
        net.payload = payload
        net.deps = [d.id for d in deps]
        return net

    def add_dep(self, net: Net, dep: Net) -> None:
        if dep.id not in net.deps:
            net.deps.append(dep.id)

    def or_into(self, target: Net, source: Literal) -> None:
        """Append a fanin to an OR gate built incrementally (signal nets,
        completion collectors)."""
        if target.kind != OR:
            raise CompileError(f"cannot extend non-OR net {target.describe()}")
        target.inputs.append(source)

    # -- signals / execs / counters -----------------------------------------

    def new_signal(self, name: str, direction: str, init: Any, combine: Any) -> SignalInfo:
        info = SignalInfo(len(self.signals), name, direction, init, combine)
        self.signals.append(info)
        return info

    def new_exec(self, name: str, signal: Optional[SignalInfo], loc=None) -> ExecInfo:
        info = ExecInfo(len(self.execs), name, signal, loc)
        self.execs.append(info)
        return info

    def new_counter(self, loc=None, arity: str = "") -> CounterInfo:
        info = CounterInfo(len(self.counters), loc, arity)
        self.counters.append(info)
        return info

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Net-count statistics (the paper's §5.3 size metric)."""
        by_kind: Dict[str, int] = {}
        connections = 0
        for net in self.nets:
            by_kind[net.kind] = by_kind.get(net.kind, 0) + 1
            connections += len(net.inputs) + len(net.deps)
        return {
            "nets": len(self.nets),
            "gates": by_kind.get(AND, 0) + by_kind.get(OR, 0),
            "registers": by_kind.get(REG, 0),
            "inputs": by_kind.get(INPUT, 0),
            "exprs": by_kind.get(EXPR, 0),
            "actions": by_kind.get(ACTION, 0),
            "connections": connections,
            "signals": len(self.signals),
            "execs": len(self.execs),
            "counters": len(self.counters),
        }

    def memory_estimate(self) -> int:
        """Rough deep size in bytes of the net graph (for the §5.3
        memory-footprint experiment)."""
        import sys

        total = sys.getsizeof(self.nets)
        for net in self.nets:
            total += sys.getsizeof(net)
            total += sys.getsizeof(net.inputs)
            total += sum(sys.getsizeof(i) for i in net.inputs)
            total += sys.getsizeof(net.deps)
            total += sum(sys.getsizeof(d) for d in net.deps)
            if net.kind == REG:
                # one boolean of sequential state per register
                total += sys.getsizeof(net.init)
        return total

    def per_machine_state_estimate(self) -> int:
        """Rough size in bytes of the state one *additional* machine
        running this circuit must allocate — the net-values buffer,
        register state, and per-signal/exec/counter runtime slots.  The
        net graph itself (:meth:`memory_estimate`) and the compiled
        evaluation plan are shared across every machine built from one
        compiled module (see :mod:`repro.runtime.fleet`), so fleet
        footprint ≈ shared + members × this."""
        import sys

        pointer = 8
        registers = sum(1 for net in self.nets if net.kind == REG)
        # net values buffer + register state list
        total = sys.getsizeof([]) + pointer * len(self.nets)
        total += sys.getsizeof([]) + pointer * registers
        # RuntimeSignal slot objects (9 __slots__ fields + object header)
        total += (56 + 9 * pointer) * len(self.signals)
        # counters (small ints, list cells) and ExecState objects
        total += pointer * len(self.counters)
        total += (56 + 8 * pointer) * len(self.execs)
        return total

    def __repr__(self) -> str:
        return f"Circuit({self.name}, {len(self.nets)} nets)"


#: how many unresolved nets a :class:`~repro.errors.CausalityError`
#: message names before eliding the rest
CAUSALITY_REPORT_LIMIT = 12


def causality_error(circuit: "Circuit", values: List[Optional[bool]]):
    """Build the one normalized :class:`~repro.errors.CausalityError` every
    reaction backend raises for a synchronous deadlock.

    The unresolved set is collected in *net-id order* (never in scheduler
    iteration order) and the elision past ``CAUSALITY_REPORT_LIMIT`` is
    marked explicitly, so the message — and the ``nets`` attribute — is
    byte-identical whichever backend (worklist, levelized, sparse, or the
    lockstep word engine's scalar fallback) detected the deadlock.
    """
    from repro.errors import CausalityError

    unresolved = sorted(
        (net for net in circuit.nets if values[net.id] is None),
        key=lambda net: net.id,
    )
    nets = [net.describe() for net in unresolved[:CAUSALITY_REPORT_LIMIT]]
    if len(unresolved) > CAUSALITY_REPORT_LIMIT:
        nets.append(f"... and {len(unresolved) - CAUSALITY_REPORT_LIMIT} more")
    return CausalityError(
        f"synchronous deadlock in {circuit.name}: the reaction "
        f"left {len(unresolved)} net(s) undefined (causality cycle)",
        nets,
    )
