"""Kernel statement → augmented boolean circuit translation (phase 2).

Each statement is compiled to a sub-circuit with the standard Esterel
interface (see *Compiling Esterel*, Potop-Butucaru, Edwards & Berry):

* inputs: ``GO`` (start now), ``RES`` (resume selected state), ``SUSP``
  (freeze selected state), ``KILL`` (clear selected state);
* outputs: ``SEL`` (has selected registers) and completion wires ``K0``
  (terminate), ``K1`` (pause) and ``K(2+d)`` for trap exits at depth *d*.

Signals become OR nets collecting their emitters (plus the machine input
wire for interface inputs); host expressions and actions become augmented
nets carrying data dependencies so that every potential writer of a signal
value is microscheduled before every reader (paper section 5.1).

Loop *reincarnation* is handled by duplicating loop bodies whose surface
contains incarnation-sensitive state (local signals, counters, execs):
``loop p`` becomes the unrolled ``loop {p ; p'}`` so every instantaneous
loop-back crosses from one body copy to the other.  This is the paper's
"quadratic expansion in special cases" (section 5.3); the policy can be
forced to ``always``/``never`` for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CompileError
from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.signals import SignalDecl
from repro.compiler.netlist import Circuit, Literal, Net, SignalInfo, lit

AUTO = "auto"
ALWAYS = "always"
NEVER = "never"


@dataclass
class Ctx:
    """Control wires feeding a statement's sub-circuit."""

    go: Literal
    res: Literal
    susp: Literal
    kill: Literal


@dataclass
class Ifc:
    """Wires produced by a statement's sub-circuit."""

    sel: Literal
    ks: Dict[int, Literal] = field(default_factory=dict)

    def k(self, code: int, default: Literal) -> Literal:
        return self.ks.get(code, default)


def _neg(literal: Literal) -> Literal:
    return (literal[0], not literal[1])


# ---------------------------------------------------------------------------
# relink specs → payload closures
# ---------------------------------------------------------------------------
#
# Every EXPR/ACTION net's payload closure is described by a plain data
# *spec* tuple stored on ``net.spec``: (kind, exprs/host statements, scope
# snapshot {name: slot}, slot numbers).  The closure is always built from
# the spec by :func:`build_payload`, so that
#
# * sub-circuit linking (:mod:`repro.compiler.link`) can relocate a
#   template net by remapping the slots in the spec and rebuilding;
# * plan artifacts can pickle circuits closure-free and rebuild payloads
#   on hydration (:func:`repro.compiler.compile.hydrate_plan_artifact`).


def build_payload(spec: tuple) -> Callable[[Any], Any]:
    """Build the runtime payload closure described by ``spec``."""
    kind = spec[0]
    if kind == "expr":
        _, expr, scope = spec

        def payload(rt: Any) -> bool:
            return E.truthy(expr.eval(rt.env_for(scope)))

        return payload
    if kind == "arm":
        _, count_expr, scope, counter_slot = spec

        def payload(rt: Any) -> None:
            value = count_expr.eval(rt.env_for(scope))
            rt.arm_counter(counter_slot, int(value))

        return payload
    if kind == "ctest":
        _, guard_expr, scope, counter_slot = spec

        def payload(rt: Any) -> bool:
            if E.truthy(guard_expr.eval(rt.env_for(scope))):
                return rt.tick_counter(counter_slot)
            return False

        return payload
    if kind == "emitval":
        _, value_expr, scope, sig_slot = spec

        def payload(rt: Any) -> None:
            rt.emit_value(sig_slot, value_expr.eval(rt.env_for(scope)))

        return payload
    if kind == "atom":
        _, body, scope = spec

        def payload(rt: Any) -> None:
            env = rt.env_for(scope)
            for host in body:
                host.execute(env)

        return payload
    if kind == "siginit":
        _, init_expr, scope, sig_slot = spec

        def payload(rt: Any) -> None:
            rt.init_signal(sig_slot, init_expr.eval(rt.env_for(scope)))

        return payload
    if kind == "exec_start":
        _, exec_slot, scope = spec

        def payload(rt: Any) -> None:
            rt.start_exec(exec_slot, scope)

        return payload
    if kind in ("exec_finish", "exec_kill", "exec_susp", "exec_resume"):
        _, exec_slot = spec
        method = {
            "exec_finish": "finish_exec",
            "exec_kill": "kill_exec",
            "exec_susp": "suspend_exec",
            "exec_resume": "resume_exec",
        }[kind]

        def payload(rt: Any) -> None:
            getattr(rt, method)(exec_slot)

        return payload
    raise CompileError(f"unknown payload spec kind {kind!r}")


def _render_arity(count_expr: Any) -> str:
    """Stable rendering of a counted delay's count expression — recorded on
    the counter so the shape fingerprint distinguishes counted-delay
    edits."""
    try:
        from repro.lang.pretty import pretty_expr

        return pretty_expr(count_expr)
    except Exception:
        return type(count_expr).__name__


def rebuild_payloads(circuit: Circuit) -> Circuit:
    """Rebuild every payload closure of ``circuit`` from its net specs
    (after unpickling a circuit from a plan artifact)."""
    for net in circuit.nets:
        if net.spec is not None and net.payload is None:
            net.payload = build_payload(net.spec)
    return circuit


class Translator:
    """Builds the circuit for one expanded module body."""

    def __init__(self, circuit: Circuit, loop_duplication: str = AUTO,
                 template_options: Optional[tuple] = None):
        if loop_duplication not in (AUTO, ALWAYS, NEVER):
            raise ValueError(f"bad loop duplication policy {loop_duplication!r}")
        self.circ = circuit
        self.loop_duplication = loop_duplication
        #: (optimize, check_cycles) flags for sub-circuit template builds
        #: triggered by ``LinkedRun`` nodes; ``None`` means default (True,
        #: True)
        self.template_options = template_options
        #: lexical signal scope: source name -> SignalInfo
        self.sigmap: Dict[str, SignalInfo] = {}
        #: enclosing trap labels, outermost first
        self.traps: List[str] = []
        #: reader nets awaiting data-dependency patching:
        #: (net, SignalInfo, wants_value)
        self._pending_reads: List[Tuple[Net, SignalInfo, bool]] = []
        #: exec incarnations per AST node uid: (start_action, kill_action)
        self._exec_incarnations: Dict[int, List[Tuple[Net, Optional[Net]]]] = {}
        #: per-module-name sequence numbers for linked instance paths
        self._link_seq: Dict[str, int] = {}
        #: templates whose warnings were already aggregated into this circuit
        self._warned_templates: set = set()
        self.FALSE = lit(self.circ.const0())
        self.TRUE = lit(self.circ.const1())

    # ------------------------------------------------------------------
    # gate helpers with local constant folding
    # ------------------------------------------------------------------

    def _or(self, lits: Sequence[Literal], label: str = "or", loc=None) -> Literal:
        out: List[Literal] = []
        for li in lits:
            if li == self.TRUE or li == _neg(self.FALSE):
                return self.TRUE
            if li == self.FALSE or li == _neg(self.TRUE):
                continue
            out.append(li)
        if not out:
            return self.FALSE
        if len(out) == 1:
            return out[0]
        return lit(self.circ.gate_or(out, label, loc))

    def _and(self, lits: Sequence[Literal], label: str = "and", loc=None) -> Literal:
        out: List[Literal] = []
        for li in lits:
            if li == self.FALSE or li == _neg(self.TRUE):
                return self.FALSE
            if li == self.TRUE or li == _neg(self.FALSE):
                continue
            out.append(li)
        if not out:
            return self.TRUE
        if len(out) == 1:
            return out[0]
        return lit(self.circ.gate_and(out, label, loc))

    # ------------------------------------------------------------------
    # payload factories (closures over signal-scope snapshots)
    # ------------------------------------------------------------------

    def _snapshot(self) -> Dict[str, int]:
        return {name: info.slot for name, info in self.sigmap.items()}

    def _spec_expr_net(self, enable: Literal, spec: tuple, label: str, loc=None) -> Net:
        net = self.circ.expr_net(enable, build_payload(spec), (), label, loc)
        net.spec = spec
        return net

    def _spec_action_net(self, enable: Literal, spec: tuple, label: str, loc=None) -> Net:
        net = self.circ.action_net(enable, build_payload(spec), (), label, loc)
        net.spec = spec
        return net

    def _register_reads(self, net: Net, expr: E.Expr) -> None:
        for name, kind in expr.signal_deps():
            if kind not in E.CURRENT_INSTANT_KINDS:
                continue
            info = self.sigmap.get(name)
            if info is None:
                raise CompileError(f"unknown signal {name!r} (validation gap)")
            self._pending_reads.append((net, info, kind == E.NOWVAL))

    def _expr_net(self, enable: Literal, expr: E.Expr, label: str, loc=None) -> Net:
        net = self._spec_expr_net(enable, ("expr", expr, self._snapshot()), label, loc)
        # Keep the expression and its scope snapshot next to the payload:
        # the word plan lowers pure-status tests (now/pre/!/&&/||) to
        # bitwise column operations, which needs the source expression.
        net.expr_info = (net.spec[1], net.spec[2])
        self._register_reads(net, expr)
        return net

    # ------------------------------------------------------------------
    # delay guards (with counters)
    # ------------------------------------------------------------------

    def _delay_test(self, delay: A.Delay, enable: Literal, go: Literal, label: str) -> Net:
        """Build the guard net for a delay, arming a counter when counted.

        ``enable`` is the instant set at which the guard is evaluated;
        ``go`` is the statement's start wire (arms the counter).
        """
        loc = delay.loc
        if delay.count is None:
            return self._expr_net(enable, delay.expr, f"{label}.test", loc)

        counter = self.circ.new_counter(loc, _render_arity(delay.count))
        scope = self._snapshot()
        count_expr = delay.count
        guard_expr = delay.expr

        arm_net = self._spec_action_net(
            go, ("arm", count_expr, scope, counter.slot), f"{label}.arm", loc
        )
        self._register_reads(arm_net, count_expr)

        test_net = self._spec_expr_net(
            enable, ("ctest", guard_expr, scope, counter.slot), f"{label}.test", loc
        )
        self._register_reads(test_net, guard_expr)
        self.circ.add_dep(test_net, arm_net)
        return test_net

    # ------------------------------------------------------------------
    # signal declaration helpers
    # ------------------------------------------------------------------

    def declare_signal(self, decl: SignalDecl, bound_name: Optional[str] = None) -> SignalInfo:
        info = self.circ.new_signal(decl.name, decl.direction, decl.init, decl.combine)
        info.status_net = self.circ.gate_or([], f"sig.{decl.name}.status", decl.loc)
        if bound_name is not None:
            info.bound_name = bound_name
        return info

    # ------------------------------------------------------------------
    # statement translation
    # ------------------------------------------------------------------

    def translate(self, stmt: A.Stmt, ctx: Ctx) -> Ifc:
        method = getattr(self, f"_tr_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise CompileError(f"cannot translate {type(stmt).__name__} (not kernel)")
        return method(stmt, ctx)

    def _tr_nothing(self, stmt: A.Nothing, ctx: Ctx) -> Ifc:
        return Ifc(self.FALSE, {0: ctx.go})

    def _tr_pause(self, stmt: A.Pause, ctx: Ctx) -> Ifc:
        reg = self.circ.register("pause", False, stmt.loc)
        sel = lit(reg)
        holding = self._or([ctx.go, self._and([ctx.susp, sel], "pause.hold")], "pause.set")
        self.circ.set_register_input(
            reg, self._and([holding, _neg(ctx.kill)], "pause.in", stmt.loc)
        )
        k0 = self._and([sel, ctx.res], "pause.k0", stmt.loc)
        return Ifc(sel, {0: k0, 1: ctx.go})

    def _tr_emit(self, stmt: A.Emit, ctx: Ctx) -> Ifc:
        info = self.sigmap.get(stmt.signal)
        if info is None:
            raise CompileError(f"unknown signal {stmt.signal!r}")
        self.circ.or_into(info.status_net, ctx.go)
        if stmt.value is not None:
            action = self._spec_action_net(
                ctx.go,
                ("emitval", stmt.value, self._snapshot(), info.slot),
                f"emit.{stmt.signal}",
                stmt.loc,
            )
            self._register_reads(action, stmt.value)
            info.writers.append(action.id)
        return Ifc(self.FALSE, {0: ctx.go})

    def _tr_atom(self, stmt: A.Atom, ctx: Ctx) -> Ifc:
        body = tuple(stmt.body)
        action = self._spec_action_net(
            ctx.go, ("atom", body, self._snapshot()), "atom", stmt.loc
        )
        for host in body:
            for expr in host.exprs():
                self._register_reads(action, expr)
        return Ifc(self.FALSE, {0: ctx.go})

    def _tr_seq(self, stmt: A.Seq, ctx: Ctx) -> Ifc:
        sels: List[Literal] = []
        ks: Dict[int, List[Literal]] = {}
        go = ctx.go
        for item in stmt.items:
            ifc = self.translate(item, Ctx(go, ctx.res, ctx.susp, ctx.kill))
            sels.append(ifc.sel)
            for code, wire in ifc.ks.items():
                if code != 0:
                    ks.setdefault(code, []).append(wire)
            go = ifc.ks.get(0, self.FALSE)
        result = {code: self._or(wires, f"seq.k{code}") for code, wires in ks.items()}
        result[0] = go
        return Ifc(self._or(sels, "seq.sel"), result)

    def _tr_par(self, stmt: A.Par, ctx: Ctx) -> Ifc:
        children = [self.translate(b, ctx) for b in stmt.branches]
        codes = sorted({code for c in children for code in c.ks})
        sel = self._or([c.sel for c in children], "par.sel")
        if not codes:
            return Ifc(sel, {})
        ks: Dict[int, Literal] = {}
        cumulative: List[Literal] = []
        for child in children:
            active = self._or(
                [ctx.go, self._and([child.sel, ctx.res], "par.act")], "par.active"
            )
            cumulative.append(_neg(active))  # DEAD_i
        for code in codes:
            fired = self._or(
                [c.ks.get(code, self.FALSE) for c in children], f"par.any.k{code}"
            )
            cumulative = [
                self._or([cumulative[i], children[i].ks.get(code, self.FALSE)],
                         f"par.w{code}")
                for i in range(len(children))
            ]
            ks[code] = self._and([fired] + cumulative, f"par.k{code}", stmt.loc)
        return Ifc(sel, ks)

    def _loop_needs_duplication(self, body: A.Stmt) -> bool:
        if self.loop_duplication == ALWAYS:
            return True
        if self.loop_duplication == NEVER:
            return False
        for node in body.walk():
            if isinstance(node, (A.Local, A.Exec)):
                return True
            if isinstance(node, (A.Abort, A.Suspend)) and node.delay.count is not None:
                return True
            if isinstance(node, A.LinkedRun) and node.sensitive:
                # the linked body holds incarnation-sensitive state
                # (locals/counters/execs) even though it is opaque here
                return True
        return False

    def _tr_loop(self, stmt: A.Loop, ctx: Ctx) -> Ifc:
        if self._loop_needs_duplication(stmt.body):
            return self._tr_loop_duplicated(stmt, ctx)
        go_fwd = self.circ.gate_or([], "loop.go", stmt.loc)
        body = self.translate(stmt.body, Ctx(lit(go_fwd), ctx.res, ctx.susp, ctx.kill))
        self.circ.or_into(go_fwd, ctx.go)
        self.circ.or_into(go_fwd, body.ks.get(0, self.FALSE))
        ks = {code: wire for code, wire in body.ks.items() if code != 0}
        return Ifc(body.sel, ks)

    def _tr_loop_duplicated(self, stmt: A.Loop, ctx: Ctx) -> Ifc:
        """``loop p`` as the unrolled ``loop {p ; p'}``: each instantaneous
        loop-back crosses copies, giving fresh incarnations of local
        signals, counters and execs."""
        go1_fwd = self.circ.gate_or([], "loop.go1", stmt.loc)
        first = self.translate(stmt.body, Ctx(lit(go1_fwd), ctx.res, ctx.susp, ctx.kill))
        go2 = first.ks.get(0, self.FALSE)
        second = self.translate(stmt.body, Ctx(go2, ctx.res, ctx.susp, ctx.kill))
        self.circ.or_into(go1_fwd, ctx.go)
        self.circ.or_into(go1_fwd, second.ks.get(0, self.FALSE))
        ks: Dict[int, Literal] = {}
        for code in set(first.ks) | set(second.ks):
            if code == 0:
                continue
            ks[code] = self._or(
                [first.ks.get(code, self.FALSE), second.ks.get(code, self.FALSE)],
                f"loop.k{code}",
            )
        return Ifc(self._or([first.sel, second.sel], "loop.sel"), ks)

    def _tr_if(self, stmt: A.If, ctx: Ctx) -> Ifc:
        test = self._expr_net(ctx.go, stmt.test, "if.test", stmt.loc)
        then_go = self._and([ctx.go, lit(test)], "if.then")
        else_go = self._and([ctx.go, _neg(lit(test))], "if.else")
        then = self.translate(stmt.then, Ctx(then_go, ctx.res, ctx.susp, ctx.kill))
        orelse = self.translate(stmt.orelse, Ctx(else_go, ctx.res, ctx.susp, ctx.kill))
        ks: Dict[int, Literal] = {}
        for code in set(then.ks) | set(orelse.ks):
            ks[code] = self._or(
                [then.ks.get(code, self.FALSE), orelse.ks.get(code, self.FALSE)],
                f"if.k{code}",
            )
        return Ifc(self._or([then.sel, orelse.sel], "if.sel"), ks)

    def _tr_abort(self, stmt: A.Abort, ctx: Ctx) -> Ifc:
        sel_fwd = self.circ.gate_or([], "abort.sel", stmt.loc)
        enable_terms = [self._and([ctx.res, lit(sel_fwd)], "abort.resumed")]
        if stmt.delay.immediate:
            enable_terms.append(ctx.go)
        enable = self._or(enable_terms, "abort.enable")
        fire = lit(self._delay_test(stmt.delay, enable, ctx.go, "abort"))
        body_go = ctx.go if not stmt.delay.immediate else self._and(
            [ctx.go, _neg(fire)], "abort.go"
        )
        # Strong abortion does not KILL the body: simply withholding RES
        # makes its registers decay (they only hold under GO, SUSP or a
        # resumed wait).  Asserting KILL here would also destroy a same-
        # instant reincarnation when a loop restarts the abort.  KILL is
        # reserved for trap exits, which are weak and need the explicit
        # clear.  Exec cleanup on abortion is handled inside _tr_exec.
        body = self.translate(
            stmt.body,
            Ctx(
                body_go,
                self._and([ctx.res, _neg(fire)], "abort.res"),
                ctx.susp,
                ctx.kill,
            ),
        )
        self.circ.or_into(sel_fwd, body.sel)
        ks = dict(body.ks)
        ks[0] = self._or([body.ks.get(0, self.FALSE), fire], "abort.k0")
        return Ifc(body.sel, ks)

    def _tr_suspend(self, stmt: A.Suspend, ctx: Ctx) -> Ifc:
        sel_fwd = self.circ.gate_or([], "suspend.sel", stmt.loc)
        enable = self._and([ctx.res, lit(sel_fwd)], "suspend.resumed")
        fire = lit(self._delay_test(stmt.delay, enable, ctx.go, "suspend"))
        body = self.translate(
            stmt.body,
            Ctx(
                ctx.go,
                self._and([ctx.res, _neg(fire)], "suspend.res"),
                self._or([ctx.susp, fire], "suspend.susp"),
                ctx.kill,
            ),
        )
        self.circ.or_into(sel_fwd, body.sel)
        ks = dict(body.ks)
        ks[1] = self._or([body.ks.get(1, self.FALSE), fire], "suspend.k1")
        return Ifc(body.sel, ks)

    def _tr_trap(self, stmt: A.Trap, ctx: Ctx) -> Ifc:
        kill_fwd = self.circ.gate_or([], f"trap.{stmt.label}.kill", stmt.loc)
        self.circ.or_into(kill_fwd, ctx.kill)
        self.traps.append(stmt.label)
        try:
            body = self.translate(
                stmt.body, Ctx(ctx.go, ctx.res, ctx.susp, lit(kill_fwd))
            )
        finally:
            self.traps.pop()
        caught = body.ks.get(2, self.FALSE)
        self.circ.or_into(kill_fwd, caught)
        ks: Dict[int, Literal] = {}
        ks[0] = self._or([body.ks.get(0, self.FALSE), caught], f"trap.{stmt.label}.k0")
        if 1 in body.ks:
            ks[1] = body.ks[1]
        for code, wire in body.ks.items():
            if code >= 3:
                ks[code - 1] = wire
        return Ifc(body.sel, ks)

    def _tr_break(self, stmt: A.Break, ctx: Ctx) -> Ifc:
        try:
            index = len(self.traps) - 1 - self.traps[::-1].index(stmt.label)
        except ValueError:
            raise CompileError(f"break to unknown label {stmt.label!r}") from None
        code = 2 + (len(self.traps) - 1 - index)
        return Ifc(self.FALSE, {code: ctx.go})

    def _tr_local(self, stmt: A.Local, ctx: Ctx) -> Ifc:
        saved = dict(self.sigmap)
        infos: List[SignalInfo] = []
        for decl in stmt.decls:
            info = self.declare_signal(decl)
            infos.append(info)
            if decl.init is not None:
                init_expr = decl.init
                action = self._spec_action_net(
                    ctx.go,
                    ("siginit", init_expr, self._snapshot(), info.slot),
                    f"siginit.{decl.name}",
                    decl.loc,
                )
                self._register_reads(action, init_expr)
                info.writers.append(action.id)
                info.init_writers.append(action.id)
        for decl, info in zip(stmt.decls, infos):
            self.sigmap[decl.name] = info
        try:
            body = self.translate(stmt.body, ctx)
        finally:
            self.sigmap = saved
        return body

    def _tr_exec(self, stmt: A.Exec, ctx: Ctx) -> Ifc:
        signal_info = None
        if stmt.signal is not None:
            signal_info = self.sigmap.get(stmt.signal)
            if signal_info is None:
                raise CompileError(f"async completion signal {stmt.signal!r} unknown")
        info = self.circ.new_exec(stmt.name, signal_info, stmt.loc)
        info.stmt = stmt
        done = self.circ.input_net(f"exec{info.slot}.done", stmt.loc)
        info.done_net = done

        reg = self.circ.register(f"exec{info.slot}.sel", False, stmt.loc)
        sel = lit(reg)
        done_fire = self._and([sel, ctx.res, lit(done)], "exec.done", stmt.loc)
        hold_old = self._and(
            [
                _neg(ctx.kill),
                self._or(
                    [
                        self._and([ctx.susp, sel], "exec.hold"),
                        self._and([sel, ctx.res, _neg(lit(done))], "exec.wait"),
                    ],
                    "exec.keep",
                ),
            ],
            "exec.holdold",
        )
        holding = self._or([ctx.go, hold_old], "exec.set")
        self.circ.set_register_input(
            reg, self._and([holding, _neg(ctx.kill)], "exec.in", stmt.loc)
        )

        scope = self._snapshot()

        finish_action = self._spec_action_net(
            done_fire, ("exec_finish", info.slot), f"exec{info.slot}.finish", stmt.loc
        )
        if signal_info is not None:
            self.circ.or_into(signal_info.status_net, done_fire)
            signal_info.writers.append(finish_action.id)

        # The running invocation dies this instant when it is neither held
        # (resumed-and-waiting or suspended, and not trap-killed) nor
        # completing: this covers trap exits AND strong abortion, which
        # kills by withholding RES.  A simultaneous GO starts a *new*
        # invocation and must not keep the old one alive.
        kill_action = None
        kill_fire = self._and(
            [sel, _neg(done_fire), _neg(hold_old)], "exec.killfire", stmt.loc
        )
        if kill_fire != self.FALSE:
            kill_action = self._spec_action_net(
                kill_fire, ("exec_kill", info.slot), f"exec{info.slot}.kill", stmt.loc
            )
            info.kill_action = kill_action
            # a completing invocation must finish before a (vacuous) kill
            self.circ.add_dep(kill_action, finish_action)

        start_action = self._spec_action_net(
            ctx.go, ("exec_start", info.slot, scope), f"exec{info.slot}.start", stmt.loc
        )
        info.start_action = start_action
        if kill_action is not None:
            self.circ.add_dep(start_action, kill_action)
        if isinstance(stmt.start, list):
            for host in stmt.start:
                for expr in host.exprs():
                    self._register_reads(start_action, expr)
        self._exec_incarnations.setdefault(stmt.uid, []).append(
            (start_action, kill_action)
        )

        if stmt.on_suspend is not None or stmt.on_resume is not None:
            susp_fire = self._and([ctx.susp, sel], "exec.suspfire", stmt.loc)
            info.suspend_action = self._spec_action_net(
                susp_fire, ("exec_susp", info.slot), f"exec{info.slot}.susp", stmt.loc
            )
            susp_reg = self.circ.register(f"exec{info.slot}.suspended", False, stmt.loc)
            self.circ.set_register_input(susp_reg, susp_fire)
            res_fire = self._and([lit(susp_reg), ctx.res, sel], "exec.resfire", stmt.loc)
            info.resume_action = self._spec_action_net(
                res_fire, ("exec_resume", info.slot), f"exec{info.slot}.resume", stmt.loc
            )

        k1 = self._or(
            [ctx.go, self._and([sel, ctx.res, _neg(lit(done))], "exec.k1w")],
            "exec.k1",
        )
        return Ifc(sel, {0: done_fire, 1: k1})

    def _tr_linkedrun(self, stmt: "A.LinkedRun", ctx: Ctx) -> Ifc:
        from repro.compiler.link import link_instance

        return link_instance(self, stmt, ctx)

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Patch pending data dependencies (emit-before-read ordering, and
        init-before-emit ordering for re-initialized local signals)."""
        for net, info, wants_value in self._pending_reads:
            assert info.status_net is not None
            if info.status_net.id not in net.deps and net.id != info.status_net.id:
                net.deps.append(info.status_net.id)
            if wants_value:
                for writer in info.writers:
                    if writer != net.id and writer not in net.deps:
                        net.deps.append(writer)
        # Reincarnated execs (duplicated loop bodies): the starting copy's
        # invocation must begin after the dying copy's cleanup, whichever
        # copy is which this instant.
        for incarnations in self._exec_incarnations.values():
            if len(incarnations) < 2:
                continue
            for i, (start_i, _kill_i) in enumerate(incarnations):
                for j, (_start_j, kill_j) in enumerate(incarnations):
                    if i != j and kill_j is not None:
                        self.circ.add_dep(start_i, kill_j)
        for info in self.circ.signals:
            if not info.init_writers:
                continue
            for writer in info.writers:
                if writer in info.init_writers:
                    continue
                net = self.circ.nets[writer]
                for init_writer in info.init_writers:
                    if init_writer not in net.deps and init_writer != net.id:
                        net.deps.append(init_writer)


def translate_module(
    module: A.Module,
    body: A.Stmt,
    loop_duplication: str = AUTO,
    template_options: Optional[tuple] = None,
) -> Circuit:
    """Translate an expanded module body into a reactive-machine circuit.

    ``template_options`` — (optimize, check_cycles) flags forwarded to
    sub-circuit template builds when the body contains ``LinkedRun``
    nodes."""
    circ = Circuit(module.name)
    tr = Translator(circ, loop_duplication, template_options)

    # Boot wiring: GO is 1 at the first reaction only; RES afterwards.
    boot_reg = circ.register("boot", False)
    circ.set_register_input(boot_reg, lit(circ.const1()))
    go = _neg(lit(boot_reg))
    res = lit(boot_reg)

    # Interface signals.
    for decl in module.interface:
        info = tr.declare_signal(decl, bound_name=decl.name)
        if decl.is_input:
            info.input_net = circ.input_net(f"input.{decl.name}", decl.loc)
            circ.or_into(info.status_net, lit(info.input_net))
        circ.interface[decl.name] = info
        tr.sigmap[decl.name] = info

    ifc = tr.translate(body, Ctx(go, res, tr.FALSE, tr.FALSE))
    unresolved = [code for code in ifc.ks if code >= 2]
    if unresolved:
        raise CompileError(f"unbound trap exit codes {unresolved} at top level")
    tr.finalize()

    circ.go_net = boot_reg  # exported for introspection (boot register)
    k0 = ifc.ks.get(0, tr.FALSE)
    k1 = ifc.ks.get(1, tr.FALSE)
    # Materialize completion/selection wires as real nets so the machine
    # can read them after propagation.
    circ.k0_net = circ.gate_or([k0], "root.k0")
    circ.k1_net = circ.gate_or([k1], "root.k1")
    circ.sel_net = circ.gate_or([ifc.sel], "root.sel")
    return circ
