"""Compiled evaluation plans: the levelized straight-line reaction backend.

The worklist scheduler (:mod:`repro.runtime.scheduler`) runs every
reaction as a ternary-propagation fixpoint: queue, per-net fanout lists,
unknown counters.  That generality is only needed where the circuit is
*cyclic*.  A statically acyclic region — no cycle through boolean fanins
or EXPR/ACTION data dependencies — has a fixed evaluation order valid for
every instant, so it can be run as straight-line code that computes each
net exactly once, with no queue, no ternary ⊥ state and no per-reaction
allocation (sorted-equation evaluation, as in Gaffé/Ressouche/Roy's
modular Esterel compilation).

:func:`build_plan` levelizes the augmented graph (see
:func:`repro.compiler.analysis.levelize`), lowers the acyclic components
to a generated-and-``compile()``d Python function (one assignment per
net, grouped by level), and keeps every cyclic component as a *block*:
a small set of nets the runtime relaxes to its local fixpoint in place
of the straight-line statement.  Fully acyclic circuits — the common
case, including the login and Skini paper apps — get pure straight-line
plans; constructive-but-cyclic ones (the pillbox) get straight-line code
for the acyclic bulk with embedded relaxation blocks.

The plan also carries CSR-style flat adjacency arrays (fanin offsets /
sources / negations, and data-dependency offsets / ids) so the runtime's
relaxation and divergence paths never chase per-net Python lists.

A plan is immutable and machine-independent: per-machine state (net
values, register state, the host object) is passed into the compiled
function on every call, so one plan is shared by every
:class:`~repro.runtime.machine.ReactiveMachine` built from the same
compiled module.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.compiler.analysis import (
    Levelization,
    combinational_edges,
    levelize,
    source_cones,
)
from repro.compiler.netlist import ACTION, AND, EXPR, INPUT, OR, REG, Circuit, Net

#: `backend="auto"` picks the levelized plan only while straight-line
#: statements dominate: once more than a quarter of the nets live inside
#: relaxation blocks, the compiled plan degenerates toward a slow
#: re-implementation of the worklist and the machine falls back to it.
AUTO_MAX_CYCLIC_FRACTION = 0.25

#: small-int net-kind codes for the sparse evaluator's dispatch
KIND_OR, KIND_AND, KIND_EXPR, KIND_ACTION, KIND_REG, KIND_INPUT = range(6)

_KIND_CODE = {
    OR: KIND_OR,
    AND: KIND_AND,
    EXPR: KIND_EXPR,
    ACTION: KIND_ACTION,
    REG: KIND_REG,
    INPUT: KIND_INPUT,
}


class EvalPlan:
    """A per-circuit compiled evaluation plan (see module docstring)."""

    __slots__ = (
        "circuit",
        "levelization",
        "registers",
        "inputs",
        "payloads",
        "blocks",
        "block_riders",
        "fanin_index",
        "fanin_src",
        "fanin_neg",
        "dep_index",
        "dep_ids",
        "source",
        "fn",
        "kind_code",
        "rank",
        "rank_order",
        "fanout_index",
        "fanout_ids",
        "payload_ids",
        "reg_slot",
        "latch_of_wire",
        "cones",
        "cone_sizes",
    )

    def __init__(
        self,
        circuit: Circuit,
        levelization: Levelization,
        registers: List[Net],
        inputs: List[Net],
        payloads: Tuple[Optional[Callable[..., Any]], ...],
        blocks: Tuple[Tuple[int, ...], ...],
        block_riders: Tuple[Tuple[int, ...], ...],
        fanin_index: array,
        fanin_src: array,
        fanin_neg: array,
        dep_index: array,
        dep_ids: array,
        source: str,
        fn: Callable[..., bool],
        kind_code: array,
        rank: array,
        rank_order: array,
        fanout_index: array,
        fanout_ids: array,
        payload_ids: Tuple[int, ...],
        reg_slot: Dict[int, int],
        latch_of_wire: Dict[int, Tuple[Tuple[int, bool, int], ...]],
        cones: Optional[Dict[int, int]],
        cone_sizes: Optional[Dict[int, int]],
    ):
        self.circuit = circuit
        self.levelization = levelization
        self.registers = registers
        self.inputs = inputs
        self.payloads = payloads
        self.blocks = blocks
        self.block_riders = block_riders
        self.fanin_index = fanin_index
        self.fanin_src = fanin_src
        self.fanin_neg = fanin_neg
        self.dep_index = dep_index
        self.dep_ids = dep_ids
        self.source = source
        self.fn = fn
        #: per-net small-int kind (KIND_OR..KIND_INPUT), for sparse dispatch
        self.kind_code = kind_code
        #: per-net position in the straight-line evaluation order
        self.rank = rank
        #: net ids in straight-line order (the inverse permutation of
        #: ``rank``), for the sparse evaluator's tail-scan bailout
        self.rank_order = rank_order
        #: CSR forward adjacency (fanins + data deps), for dirty propagation
        self.fanout_index = fanout_index
        self.fanout_ids = fanout_ids
        #: ids of every EXPR/ACTION net (the payload-bearing nets)
        self.payload_ids = payload_ids
        #: REG net id -> register state slot
        self.reg_slot = reg_slot
        #: register input wire -> ((slot, negated, reg_net_id), ...)
        self.latch_of_wire = latch_of_wire
        #: per-source (INPUT/REG) forward cone bitsets; None when the plan
        #: has relaxation blocks (sparse mode disabled)
        self.cones = cones
        #: per-source cone sizes, for the sparse/full threshold decision
        self.cone_sizes = cone_sizes

    # -- serialization ------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Closure-free state for plan artifacts.

        ``payloads`` (closures over host scopes) and ``fn`` (an exec'd
        function object) cannot be pickled; ``fn`` is rebuilt on restore
        — from the marshalled code object when the reading interpreter
        matches (the fast path; re-``compile()``-ing a multi-thousand
        line straight-line source dominates cold-start otherwise), from
        ``source`` when it does not — and ``payloads`` by :meth:`rebind`
        once the carrying circuit's payload closures have been rebuilt
        from their relink specs."""
        import marshal

        state = {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in ("payloads", "fn")
        }
        try:
            state["__code__"] = marshal.dumps(self.fn.__code__)
        except Exception:
            pass
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        code_bytes = state.pop("__code__", None)
        for name, value in state.items():
            setattr(self, name, value)
        self.payloads = ()
        self.fn = None
        if code_bytes is not None:
            import marshal
            import types

            try:
                self.fn = types.FunctionType(
                    marshal.loads(code_bytes), {}, "__plan_react__"
                )
            except Exception:
                self.fn = None
        if self.fn is None:
            namespace: Dict[str, Any] = {}
            compiled = compile(self.source, f"<plan:{self.circuit.name}>", "exec")
            exec(compiled, namespace)
            self.fn = namespace["__plan_react__"]

    def rebind(self, circuit: Circuit) -> "EvalPlan":
        """Re-attach the plan to ``circuit`` (the same netlist, typically
        the unpickled copy whose payloads were just rebuilt) and refresh
        the payload table from it."""
        self.circuit = circuit
        self.payloads = tuple(net.payload for net in circuit.nets)
        return self

    # -- selection ----------------------------------------------------------

    @property
    def net_count(self) -> int:
        """Total nets one full sweep evaluates — the natural unit for
        reaction-deadline budgets (``ReactiveMachine``'s ``"auto"``
        budget is a multiple of this, so a budget always admits the
        plan's own full sweep and trips only on genuinely runaway
        instants: unbounded deferred-reaction chains or pathological
        relaxation)."""
        return len(self.circuit.nets)

    @property
    def is_pure(self) -> bool:
        """True when the whole reaction is straight-line (no blocks)."""
        return not self.blocks

    @property
    def cyclic_net_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    @property
    def auto_eligible(self) -> bool:
        """Should ``backend="auto"`` pick this plan over the worklist?"""
        return self.cyclic_net_count <= AUTO_MAX_CYCLIC_FRACTION * len(
            self.circuit.nets
        )

    @property
    def sparse_eligible(self) -> bool:
        """Can the sparse dirty-cone mode run this plan?  Requires a pure
        (fully straight-line) plan: relaxation blocks always take the full
        sweep, so non-pure plans gain nothing from change tracking."""
        return self.is_pure and self.cones is not None

    # -- introspection ------------------------------------------------------

    def describe(self) -> Dict[str, int]:
        return {
            "nets": len(self.circuit.nets),
            "levels": self.levelization.depth,
            "straightline_nets": len(self.circuit.nets) - self.cyclic_net_count,
            "cyclic_nets": self.cyclic_net_count,
            "blocks": len(self.blocks),
        }

    def cone_stats(self) -> Dict[str, float]:
        """Dirty-cone statistics over the reaction sources (INPUT/REG
        nets): how much of the circuit one changed source can dirty.
        Used by ``docs/performance.md`` and the benchmark reports."""
        if not self.cone_sizes:
            return {"sources": 0, "mean_cone": 0.0, "max_cone": 0.0,
                    "mean_cone_fraction": 0.0, "max_cone_fraction": 0.0}
        sizes = list(self.cone_sizes.values())
        n = len(self.circuit.nets)
        return {
            "sources": len(sizes),
            "mean_cone": sum(sizes) / len(sizes),
            "max_cone": float(max(sizes)),
            "mean_cone_fraction": sum(sizes) / len(sizes) / n,
            "max_cone_fraction": max(sizes) / n,
        }

    def memory_estimate(self) -> int:
        """Rough size in bytes of the shared plan data (CSR arrays, rank
        and kind tables, cone sizes, the generated source).  This is paid
        once per compiled module, however many machines share the plan."""
        import sys

        total = 0
        for name in ("fanin_index", "fanin_src", "fanin_neg", "dep_index",
                     "dep_ids", "kind_code", "rank", "rank_order",
                     "fanout_index", "fanout_ids"):
            total += sys.getsizeof(getattr(self, name))
        total += sys.getsizeof(self.source)
        total += sys.getsizeof(self.payload_ids)
        total += sys.getsizeof(self.reg_slot)
        if self.cone_sizes is not None:
            total += sys.getsizeof(self.cone_sizes)
        if self.cones is not None:
            total += sys.getsizeof(self.cones)
            total += sum(sys.getsizeof(bits) for bits in self.cones.values())
        return total

    def __repr__(self) -> str:
        d = self.describe()
        return (
            f"EvalPlan({self.circuit.name}, {d['nets']} nets, "
            f"{d['levels']} levels, {d['blocks']} cyclic blocks)"
        )


def _fanin_csr(circuit: Circuit) -> Tuple[array, array, array, array, array]:
    """Flatten per-net ``inputs``/``deps`` lists into CSR arrays."""
    fanin_index = array("l", [0])
    fanin_src = array("l")
    fanin_neg = array("b")
    dep_index = array("l", [0])
    dep_ids = array("l")
    for net in circuit.nets:
        for src, neg in net.inputs:
            fanin_src.append(src)
            fanin_neg.append(1 if neg else 0)
        fanin_index.append(len(fanin_src))
        for dep in net.deps:
            dep_ids.append(dep)
        dep_index.append(len(dep_ids))
    return fanin_index, fanin_src, fanin_neg, dep_index, dep_ids


def _literal(src: int, neg: bool) -> str:
    return f"not V[{src}]" if neg else f"V[{src}]"


def _emit_statement(
    net: Net, reg_slot: Dict[int, int], out: List[str], guarded: bool = False
) -> None:
    """One straight-line statement computing ``net`` exactly once.

    ``guarded`` nets are *riders* of a relaxation block (see
    :func:`build_plan`): the block may already have fired them, so their
    statement re-runs only while the value is still unknown — payloads
    are stateful and must not fire twice.
    """
    i = net.id
    kind = net.kind
    body: List[str] = []
    if kind == REG:
        body.append(f"    V[{i}] = S[{reg_slot[i]}]")
    elif kind == INPUT:
        body.append(f"    V[{i}] = G({i}, False)")
    elif kind == OR:
        if net.inputs:
            body.append(f"    V[{i}] = " + " or ".join(_literal(s, n) for s, n in net.inputs))
        else:
            body.append(f"    V[{i}] = False")
    elif kind == AND:
        if net.inputs:
            body.append(f"    V[{i}] = " + " and ".join(_literal(s, n) for s, n in net.inputs))
        else:
            body.append(f"    V[{i}] = True")
    elif kind == EXPR:
        enable = _literal(*net.inputs[0])
        body.append(f"    V[{i}] = bool(P[{i}](host)) if {enable} else False")
    elif kind == ACTION:
        enable = _literal(*net.inputs[0])
        body.append(f"    if {enable}:")
        body.append(f"        P[{i}](host)")
        body.append(f"        V[{i}] = True")
        body.append("    else:")
        body.append(f"        V[{i}] = False")
    else:  # pragma: no cover - exhaustive over net kinds
        raise AssertionError(f"unknown net kind {kind!r}")
    if guarded:
        out.append(f"    if V[{i}] is None:")
        out.extend("    " + line for line in body)
    else:
        out.extend(body)


def _generate_source(
    circuit: Circuit,
    lev: Levelization,
    blocks: Tuple[Tuple[int, ...], ...],
    block_riders: Tuple[Tuple[int, ...], ...],
    reg_slot: Dict[int, int],
) -> str:
    """The straight-line reaction function, one assignment per net.

    Signature: ``f(V, S, P, host, G, B) -> bool`` with ``V`` the values
    list, ``S`` the register state, ``P`` the payload table, ``G``
    ``input_values.get`` and ``B`` the per-machine block runners.
    Returns False when a block failed to converge (the runtime then
    finishes the least fixpoint and reports the causality error).
    """
    block_at: Dict[int, int] = {members[0]: k for k, members in enumerate(blocks)}
    block_members = {net_id for members in blocks for net_id in members}
    riders = {net_id for members in block_riders for net_id in members}
    lines: List[str] = ["def __plan_react__(V, S, P, host, G, B):"]
    current_level = -1
    # Levels strictly increase along augmented edges, so components on the
    # same level are independent and any within-level order is valid.  Use
    # net-id (creation) order: the worklist fires simultaneously-enabled
    # actions in fanout (creation) order, and host-side effects that are
    # ordered only by that convention — e.g. the frame-var Assign an
    # inlined `run` prepends ahead of readers of the bound var — must
    # observe the same order here.
    for component in sorted(
        lev.order, key=lambda comp: (lev.levels[comp[0]], comp[0])
    ):
        head = component[0]
        if head in block_members:
            if head in block_at:
                lines.append(f"    # -- cyclic block {block_at[head]} "
                             f"({len(component)} nets, level {lev.levels[head]}) --")
                lines.append(f"    if not B[{block_at[head]}]():")
                lines.append("        return False")
            continue
        level = lev.levels[head]
        if level != current_level:
            lines.append(f"    # -- level {level} --")
            current_level = level
        _emit_statement(circuit.nets[head], reg_slot, lines, guarded=head in riders)
    lines.append("    # -- latch registers --")
    for net_id, slot in reg_slot.items():
        src, neg = circuit.nets[net_id].inputs[0]
        lines.append(f"    S[{slot}] = {_literal(src, neg)}")
    lines.append("    return True")
    return "\n".join(lines) + "\n"


def build_plan(circuit: Circuit) -> EvalPlan:
    """Levelize ``circuit`` and compile its evaluation plan.

    Always succeeds: cyclic components become relaxation blocks rather
    than failures.  Check :attr:`EvalPlan.is_pure` /
    :attr:`EvalPlan.auto_eligible` for backend policy.
    """
    lev = levelize(circuit)
    registers = [net for net in circuit.nets if net.kind == REG]
    inputs = [net for net in circuit.nets if net.kind == INPUT]
    reg_slot = {net.id: slot for slot, net in enumerate(registers)}
    payloads = tuple(net.payload for net in circuit.nets)
    blocks: Tuple[Tuple[int, ...], ...] = tuple(
        tuple(members) for members in lev.cyclic
    )
    # Riders: acyclic EXPR/ACTION nets whose enable wire lives inside a
    # cyclic block.  The worklist fires payloads the moment their enable
    # settles, walking the wire's fanout in creation order — so a payload
    # enabled from *inside* a block can be interleaved with (and ordered
    # before, by net id) the block's own payloads.  Host-side effects
    # ordered only by that convention (frame-var assignment atoms vs.
    # their readers) need the same interleaving here: riders join the
    # block's relaxation sweep, and their straight-line statement becomes
    # a no-op when the block already fired them (``guarded`` emission).
    block_of: Dict[int, int] = {}
    for k, members in enumerate(blocks):
        for net_id in members:
            block_of[net_id] = k
    rider_lists: List[List[int]] = [[] for _ in blocks]
    for net in circuit.nets:
        if (
            (net.kind == EXPR or net.kind == ACTION)
            and net.id not in block_of
            and net.inputs[0][0] in block_of
        ):
            rider_lists[block_of[net.inputs[0][0]]].append(net.id)
    block_riders: Tuple[Tuple[int, ...], ...] = tuple(
        tuple(ids) for ids in rider_lists
    )
    fanin_index, fanin_src, fanin_neg, dep_index, dep_ids = _fanin_csr(circuit)
    source = _generate_source(circuit, lev, blocks, block_riders, reg_slot)
    namespace: Dict[str, Any] = {}
    code = compile(source, f"<plan:{circuit.name}>", "exec")
    exec(code, namespace)

    # -- sparse-mode tables -------------------------------------------------
    kind_code = array("b", (_KIND_CODE[net.kind] for net in circuit.nets))
    rank = array("l", [0]) * len(circuit.nets)
    rank_order = array("l", [0]) * len(circuit.nets)
    position = 0
    for component in sorted(
        lev.order, key=lambda comp: (lev.levels[comp[0]], comp[0])
    ):
        for net_id in component:
            rank[net_id] = position
            rank_order[position] = net_id
            position += 1
    edges = combinational_edges(circuit)
    fanout_index = array("l", [0])
    fanout_ids = array("l")
    for net in circuit.nets:
        fanout_ids.extend(edges[net.id])
        fanout_index.append(len(fanout_ids))
    payload_ids = tuple(
        net.id for net in circuit.nets if net.kind == EXPR or net.kind == ACTION
    )
    latch_lists: Dict[int, List[Tuple[int, bool, int]]] = {}
    for slot, reg in enumerate(registers):
        src, neg = reg.inputs[0]
        latch_lists.setdefault(src, []).append((slot, neg, reg.id))
    latch_of_wire = {wire: tuple(items) for wire, items in latch_lists.items()}
    cones: Optional[Dict[int, int]] = None
    cone_sizes: Optional[Dict[int, int]] = None
    if not blocks:
        cones = source_cones(circuit)
        cone_sizes = {src: bits.bit_count() for src, bits in cones.items()}

    return EvalPlan(
        circuit,
        lev,
        registers,
        inputs,
        payloads,
        blocks,
        block_riders,
        fanin_index,
        fanin_src,
        fanin_neg,
        dep_index,
        dep_ids,
        source,
        namespace["__plan_react__"],
        kind_code,
        rank,
        rank_order,
        fanout_index,
        fanout_ids,
        payload_ids,
        reg_slot,
        latch_of_wire,
        cones,
        cone_sizes,
    )
