"""Static circuit analyses.

The main one is combinational-cycle detection: the paper notes (section
2.2.2) that the compiler emits *a warning if a dynamic deadlock is
possible*.  A synchronous deadlock can only arise from a cycle through
combinational nets (gates, expression and action nets); registers break
cycles.  Some cycles are harmless (they stabilize for every input — the
constructive programs of section 5.2), so a cycle is a warning, not an
error; actual deadlocks are detected at run time by the scheduler.

The second analysis is *levelization* (:func:`levelize`): a topological
sort of the augmented graph — boolean fanin edges *and* the EXPR/ACTION
data-dependency edges together — into the condensation of its strongly
connected components, with a longest-path level per net.  Statically
acyclic regions need no fixpoint iteration at all: they can be evaluated
as straight-line code, one net per statement, in level order (sorted-
equation evaluation in the sense of Gaffé/Ressouche/Roy's modular
Esterel compilation).  The levelization feeds the compiled evaluation
plans of :mod:`repro.compiler.plan`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compiler.netlist import INPUT, REG, Circuit, Net


def combinational_edges(circuit: Circuit) -> Dict[int, List[int]]:
    """Adjacency: edges source → consumer through combinational nets."""
    edges: Dict[int, List[int]] = {net.id: [] for net in circuit.nets}
    for net in circuit.nets:
        if net.kind in (REG, INPUT):
            continue  # outputs known at reaction start; no incoming edges
        for source, _neg in net.inputs:
            edges[source].append(net.id)
        for dep in net.deps:
            edges[dep].append(net.id)
    return edges


def strongly_connected_components(circuit: Circuit) -> List[List[int]]:
    """Iterative Tarjan over the combinational graph."""
    edges = combinational_edges(circuit)
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    for root in edges:
        if root in index_of:
            continue
        work = [(root, iter(edges[root]))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def find_cycles(circuit: Circuit) -> List[List[Net]]:
    """Return combinational cycles (SCCs of size > 1, or self-loops)."""
    cycles: List[List[Net]] = []
    for component in strongly_connected_components(circuit):
        if len(component) > 1:
            cycles.append([circuit.nets[i] for i in component])
        else:
            net = circuit.nets[component[0]]
            if any(src == net.id for src, _ in net.inputs) or net.id in net.deps:
                cycles.append([net])
    return cycles


class Levelization:
    """The condensation of the augmented graph in evaluation order.

    ``order``
        SCCs (member-id lists, ids ascending within an SCC) in a
        topological order of the condensation: every boolean fanin and
        every data dependency of a component lies in an earlier one.
    ``levels``
        per-net longest-path depth; all members of an SCC share their
        component's level.  Registers, inputs and source gates sit at
        level 0.
    ``cyclic``
        the subset of ``order`` that is *not* straight-line evaluable:
        components of size > 1, plus self-loops.
    """

    __slots__ = ("order", "levels", "cyclic")

    def __init__(self, order: List[List[int]], levels: List[int], cyclic: List[List[int]]):
        self.order = order
        self.levels = levels
        self.cyclic = cyclic

    @property
    def acyclic(self) -> bool:
        return not self.cyclic

    @property
    def cyclic_net_count(self) -> int:
        return sum(len(c) for c in self.cyclic)

    @property
    def depth(self) -> int:
        return 1 + max(self.levels) if self.levels else 0


def levelize(circuit: Circuit) -> Levelization:
    """Topologically sort the augmented circuit into SCC components with
    longest-path levels (proof of static acyclicity when ``.acyclic``)."""
    edges = combinational_edges(circuit)
    # Tarjan emits components sinks-first; reversed() is a topological
    # order of the condensation (sources before their consumers).
    components = list(reversed(strongly_connected_components(circuit)))
    comp_of: Dict[int, int] = {}
    for index, component in enumerate(components):
        component.sort()
        for net_id in component:
            comp_of[net_id] = index

    levels: List[int] = [0] * len(circuit.nets)
    comp_level = [0] * len(components)
    cyclic: List[List[int]] = []
    for index, component in enumerate(components):
        level = comp_level[index]
        for net_id in component:
            levels[net_id] = level
            for succ in edges[net_id]:
                succ_comp = comp_of[succ]
                if succ_comp != index and comp_level[succ_comp] <= level:
                    comp_level[succ_comp] = level + 1
        if len(component) > 1:
            cyclic.append(component)
        else:
            net = circuit.nets[component[0]]
            if any(src == net.id for src, _ in net.inputs) or net.id in net.deps:
                cyclic.append(component)
    return Levelization(components, levels, cyclic)


def source_cones(circuit: Circuit) -> Dict[int, int]:
    """Forward fanout cones of the reaction *sources* (INPUT and REG nets).

    The cone of a source is the set of nets reachable from it through
    combinational edges (boolean fanins and EXPR/ACTION data
    dependencies), including the source itself: exactly the nets whose
    value can differ between two reactions that differ only in that
    source.  The sparse reaction mode (:mod:`repro.runtime.fastsched`)
    re-evaluates the union cone of the sources that actually changed.

    Cones are represented as Python-int bitsets (bit *i* set ⇔ net *i*
    in the cone) and computed by a single reverse-topological sweep with
    word-parallel ORs, so plan construction stays cheap even for
    ~10k-net scores.  Only valid for statically acyclic circuits — the
    caller must check :attr:`Levelization.acyclic` first.
    """
    edges = combinational_edges(circuit)
    reach: List[int] = [0] * len(circuit.nets)
    # Tarjan emits sinks first, so the *unreversed* SCC order is already
    # reverse-topological; on an acyclic graph every component is a
    # singleton.
    for component in strongly_connected_components(circuit):
        net_id = component[0]
        bits = 1 << net_id
        for succ in edges[net_id]:
            bits |= reach[succ]
        reach[net_id] = bits
    return {
        net.id: reach[net.id]
        for net in circuit.nets
        if net.kind in (REG, INPUT)
    }


def cycle_warnings(circuit: Circuit) -> List[str]:
    """Human-readable warnings, one per potential causality cycle."""
    warnings = []
    for cycle in find_cycles(circuit):
        members = ", ".join(net.describe() for net in cycle[:6])
        suffix = ", ..." if len(cycle) > 6 else ""
        warnings.append(
            f"possible causality cycle through {len(cycle)} nets: {members}{suffix}"
        )
    return warnings
