"""Static circuit analyses.

The main one is combinational-cycle detection: the paper notes (section
2.2.2) that the compiler emits *a warning if a dynamic deadlock is
possible*.  A synchronous deadlock can only arise from a cycle through
combinational nets (gates, expression and action nets); registers break
cycles.  Some cycles are harmless (they stabilize for every input — the
constructive programs of section 5.2), so a cycle is a warning, not an
error; actual deadlocks are detected at run time by the scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compiler.netlist import INPUT, REG, Circuit, Net


def combinational_edges(circuit: Circuit) -> Dict[int, List[int]]:
    """Adjacency: edges source → consumer through combinational nets."""
    edges: Dict[int, List[int]] = {net.id: [] for net in circuit.nets}
    for net in circuit.nets:
        if net.kind in (REG, INPUT):
            continue  # outputs known at reaction start; no incoming edges
        for source, _neg in net.inputs:
            edges[source].append(net.id)
        for dep in net.deps:
            edges[dep].append(net.id)
    return edges


def strongly_connected_components(circuit: Circuit) -> List[List[int]]:
    """Iterative Tarjan over the combinational graph."""
    edges = combinational_edges(circuit)
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    for root in edges:
        if root in index_of:
            continue
        work = [(root, iter(edges[root]))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def find_cycles(circuit: Circuit) -> List[List[Net]]:
    """Return combinational cycles (SCCs of size > 1, or self-loops)."""
    cycles: List[List[Net]] = []
    for component in strongly_connected_components(circuit):
        if len(component) > 1:
            cycles.append([circuit.nets[i] for i in component])
        else:
            net = circuit.nets[component[0]]
            if any(src == net.id for src, _ in net.inputs) or net.id in net.deps:
                cycles.append([net])
    return cycles


def cycle_warnings(circuit: Circuit) -> List[str]:
    """Human-readable warnings, one per potential causality cycle."""
    warnings = []
    for cycle in find_cycles(circuit):
        members = ", ".join(net.describe() for net in cycle[:6])
        suffix = ", ..." if len(cycle) > 6 else ""
        warnings.append(
            f"possible causality cycle through {len(cycle)} nets: {members}{suffix}"
        )
    return warnings
