"""Compiler: macro expansion, circuit translation, optimization, analysis."""

from repro.compiler.compile import (
    CompileOptions,
    clear_compile_cache,
    compile_cache_stats,
    compile_cached,
    compile_module,
    hydrate_plan_artifact,
    plan_artifact,
)

__all__ = [
    "compile_module",
    "compile_cached",
    "compile_cache_stats",
    "clear_compile_cache",
    "CompileOptions",
    "plan_artifact",
    "hydrate_plan_artifact",
]
