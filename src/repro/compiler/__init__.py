"""Compiler: macro expansion, circuit translation, optimization, analysis."""

from repro.compiler.compile import compile_module, CompileOptions

__all__ = ["compile_module", "CompileOptions"]
