"""End-to-end compilation driver: expand → validate → translate → optimize.

This is phase 2 and the front half of phase 3 of the paper's compiler; the
back half (the reactive machine wrapping the circuit simulator) lives in
:mod:`repro.runtime.machine`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.validate import validate_module
from repro.compiler.analysis import cycle_warnings
from repro.compiler.expand import expand_module
from repro.compiler.netlist import Circuit
from repro.compiler.translate import AUTO, translate_module


@dataclass
class CompileOptions:
    """Compilation knobs.

    :param optimize: run the net-level optimizer (constant folding, gate
        deduplication, dead-net sweeping).
    :param loop_duplication: reincarnation policy — ``auto`` duplicates
        loop bodies containing local signals/counters/execs, ``always`` and
        ``never`` force the choice (ablation A2 of DESIGN.md).
    :param check_cycles: run the static combinational-cycle analysis and
        collect warnings (the paper's compile-time deadlock warning).
    :param link: compile ``run M(...)`` sites by sub-circuit linking
        (:mod:`repro.compiler.link`): each linkable module body is
        translated, optimized and cycle-checked *once* into a cached
        template, and every instantiation stamps a relocated copy —
        O(interface + net copy) per site instead of a full re-translate.
        Modules that defeat linking (recursion, ``var`` parameters, free
        names, instance frame vars) fall back to inlining.  When linking
        actually happened, the final circuit gets only a dead-net sweep
        and cycle warnings come from the templates, not a whole-program
        re-analysis.
    """

    optimize: bool = True
    loop_duplication: str = AUTO
    check_cycles: bool = True
    link: bool = False


@dataclass
class CompiledModule:
    """The output of compilation, consumed by the reactive machine."""

    module: A.Module
    circuit: Circuit
    #: frame variables (module/instance vars) with optional initializers
    frame_vars: List[Tuple[str, Optional[E.Expr]]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    #: the expanded kernel body (useful for debugging and the interpreter)
    kernel: Optional[A.Stmt] = None
    #: lazily-built levelized evaluation plan (shared by every machine
    #: constructed from this compiled module)
    _plan: Optional[object] = field(default=None, repr=False, compare=False)
    #: lazily-built signal lookup tables (status-net → slot etc.), shared
    #: by every machine; see ``ReactiveMachine._signal_maps``
    _signal_maps: Optional[tuple] = field(default=None, repr=False, compare=False)
    #: lazily-built word-parallel plan (see ``repro.compiler.wordplan``),
    #: shared by every lockstep fleet constructed from this compiled
    #: module
    _word_plan: Optional[object] = field(default=None, repr=False, compare=False)
    #: backing store for :attr:`fingerprint`, computed on first access
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)
    #: ``(modules, options)`` needed for the deferred fingerprint
    _fingerprint_inputs: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    @property
    def fingerprint(self) -> str:
        """Structural compile fingerprint (the compile-cache key: sha256
        of the pretty-printed sources + embedded callable ids + options),
        used to stamp machine snapshots so they refuse to restore onto a
        structurally different program.  Unrenderable modules fall back to
        a circuit-shape digest.  Rendering the whole module table costs a
        nontrivial slice of a fast (linked) compile, so the digest is
        deferred until someone actually snapshots, persists, or caches."""
        if self._fingerprint is None:
            modules, options = self._fingerprint_inputs or (None, None)
            self._fingerprint = (
                _structural_key(self.module, modules, options)
                or _shape_fingerprint(self.circuit)
            )
        return self._fingerprint

    @fingerprint.setter
    def fingerprint(self, value: Optional[str]) -> None:
        self._fingerprint = value

    def stats(self):
        return self.circuit.stats()

    def evaluation_plan(self):
        """The circuit's compiled :class:`~repro.compiler.plan.EvalPlan`,
        built on first use and cached.  The circuit must not be mutated
        after the first call (compilation, including the optimizer, is
        already complete by construction)."""
        if self._plan is None:
            from repro.compiler.plan import build_plan

            self._plan = build_plan(self.circuit)
        return self._plan

    def word_plan(self):
        """The compiled word-parallel plan
        (:class:`~repro.compiler.wordplan.WordPlan`) over
        :meth:`evaluation_plan`, built on first use and cached; raises
        ``ValueError`` on impure (cyclic) plans, which are not
        word-eligible."""
        if self._word_plan is None:
            from repro.compiler.wordplan import build_word_plan

            self._word_plan = build_word_plan(self.evaluation_plan())
        return self._word_plan


def compile_module(
    module: A.Module,
    modules: Optional[A.ModuleTable] = None,
    options: Optional[CompileOptions] = None,
) -> CompiledModule:
    """Compile ``module`` to an augmented boolean circuit.

    ``modules`` resolves ``run`` statements by name.  Raises
    :class:`~repro.errors.ValidationError` /
    :class:`~repro.errors.LinkError` on bad programs; potential causality
    cycles are reported as warnings on the result.
    """
    options = options or CompileOptions()
    link = getattr(options, "link", False)
    kernel, frame_vars = expand_module(module, modules, link=link)
    validate_module(module, kernel)
    circuit = translate_module(
        module,
        kernel,
        options.loop_duplication,
        template_options=(options.optimize, options.check_cycles),
    )
    circuit.frame_vars = list(frame_vars)
    warnings: List[str] = []
    if link and circuit.segments:
        # Linked instances arrive pre-optimized and pre-cycle-checked from
        # their templates, and linking remaps template port/constant wires
        # in place of copying them, so the circuit is already debris-free.
        # Re-running the global passes here would make every instantiation
        # O(|whole circuit|) again.
        warnings = list(circuit.link_warnings)
    else:
        if options.optimize:
            from repro.compiler.optimize import optimize_circuit

            circuit = optimize_circuit(circuit)
        if options.check_cycles:
            warnings = cycle_warnings(circuit)
        warnings.extend(circuit.link_warnings)
    compiled = CompiledModule(module, circuit, list(frame_vars), warnings, kernel)
    compiled._fingerprint_inputs = (modules, options)
    return compiled


def _shape_fingerprint(circuit: Circuit) -> str:
    """Fallback snapshot fingerprint for unrenderable modules: a digest of
    the circuit shape (net kinds and fanin arities, interface, state
    slots).  Weaker than the structural key — it cannot see host callables
    — but still rejects restores across structurally different circuits."""
    digest = hashlib.sha256(b"circuit-shape\x00")
    digest.update(circuit.name.encode())
    for net in circuit.nets:
        digest.update(
            f"{getattr(net, 'kind', '?')}:{len(getattr(net, 'inputs', ()))};".encode()
        )
    for name, info in sorted(circuit.interface.items()):
        digest.update(f"\x00{name}:{info.direction}".encode())
    digest.update(
        f"\x00{len(circuit.signals)}\x00{len(circuit.execs)}"
        f"\x00{len(circuit.counters)}".encode()
    )
    for counter in circuit.counters:
        # counted-delay edits (await count change) alter runtime arming
        # semantics without changing net arities; the rendered count
        # expression keeps them from aliasing
        digest.update(b"\x00counter\x00")
        digest.update(counter.arity.encode())
    return "shape:" + digest.hexdigest()


# ---------------------------------------------------------------------------
# structural compile cache
# ---------------------------------------------------------------------------

#: cache capacity; beyond it the least-recently-used entry is evicted.
COMPILE_CACHE_SIZE = 256

_cache: "OrderedDict[str, CompiledModule]" = OrderedDict()
_cache_stats: Dict[str, int] = {"hits": 0, "misses": 0, "uncacheable": 0}


def _embedded_callables(module: A.Module) -> List[int]:
    """Identities of every host callable reachable from the module AST.

    Pretty-printing renders atoms, lambdas and ``async`` bodies opaquely
    (``/* python callable */``), so two modules that differ *only* in
    their host callables would otherwise hash alike — and the cache would
    hand one module's compiled payloads to the other.  The walk stays
    inside ``repro.lang`` node types (statements, expressions, the module
    itself) plus plain containers; everything else that is callable is
    recorded by ``id()``.  The cache holds strong references to its keys'
    modules — and therefore to these callables — so an id can not be
    recycled while its entry is alive.
    """
    out: List[int] = []
    seen = set()
    stack: List[Any] = [module]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, (str, bytes, int, float, bool, type(None))):
            continue
        if isinstance(obj, (list, tuple)):
            stack.extend(reversed(obj))
        elif isinstance(obj, dict):
            for key, value in obj.items():
                stack.append(key)
                stack.append(value)
        elif type(obj).__module__.startswith("repro.lang"):
            if hasattr(obj, "__dict__"):
                stack.extend(reversed(list(vars(obj).values())))
            else:
                for cls in type(obj).__mro__:
                    for name in getattr(cls, "__slots__", ()):
                        if hasattr(obj, name):
                            stack.append(getattr(obj, name))
        elif callable(obj):
            out.append(id(obj))
    return out


def _structural_key(
    module: A.Module,
    modules: Optional[A.ModuleTable],
    options: Optional[CompileOptions],
) -> Optional[str]:
    """A content hash of everything compilation depends on.

    The key is the pretty-printed source of the module and of every
    module in the resolution table (``run`` targets), plus the identities
    of the embedded host callables (see :func:`_embedded_callables`) and
    the option knobs.  Returns None when the module can not be rendered
    (treated as uncacheable).
    """
    from repro.lang.pretty import pretty_module

    digest = hashlib.sha256()
    try:
        digest.update(pretty_module(module).encode())
        for ident in _embedded_callables(module):
            digest.update(ident.to_bytes(8, "little", signed=True))
        if modules is not None:
            for name in modules.names():
                digest.update(b"\x00module\x00")
                digest.update(pretty_module(modules.get(name)).encode())
                for ident in _embedded_callables(modules.get(name)):
                    digest.update(ident.to_bytes(8, "little", signed=True))
    except Exception:
        return None
    options = options or CompileOptions()
    digest.update(
        f"\x00{options.optimize}\x00{options.loop_duplication}"
        f"\x00{options.check_cycles}\x00{getattr(options, 'link', False)}".encode()
    )
    return digest.hexdigest()


def compile_cached(
    module: A.Module,
    modules: Optional[A.ModuleTable] = None,
    options: Optional[CompileOptions] = None,
) -> CompiledModule:
    """:func:`compile_module` through a structural-hash keyed LRU cache.

    N machines built from the same module share a single
    :class:`CompiledModule` — and therefore a single circuit and a single
    lazily-built :class:`~repro.compiler.plan.EvalPlan` — so constructing
    another machine costs O(per-machine state), not O(compile).  This is
    the module-level sharing behind :class:`~repro.runtime.fleet.MachineFleet`
    and the route every app builder and raw-module
    ``ReactiveMachine(...)`` construction takes.
    """
    key = _structural_key(module, modules, options)
    if key is None:
        _cache_stats["uncacheable"] += 1
        return compile_module(module, modules, options)
    cached = _cache.get(key)
    if cached is not None:
        _cache.move_to_end(key)
        _cache_stats["hits"] += 1
        return cached
    _cache_stats["misses"] += 1
    compiled = compile_module(module, modules, options)
    # the cache key IS the structural fingerprint; seed the lazy field so
    # snapshotting this module doesn't re-render the sources
    compiled.fingerprint = key
    _cache[key] = compiled
    if len(_cache) > COMPILE_CACHE_SIZE:
        _cache.popitem(last=False)
    return compiled


def clear_compile_cache() -> None:
    """Drop every cached compilation and zero the statistics."""
    _cache.clear()
    _cache_stats.update(hits=0, misses=0, uncacheable=0)


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss/uncacheable counters plus the current entry count."""
    return {**_cache_stats, "entries": len(_cache)}


# ---------------------------------------------------------------------------
# plan artifacts (worker cold start)
# ---------------------------------------------------------------------------

#: version tag of the :func:`plan_artifact` payload layout.  Format 2
#: embeds the compiled circuit (closure-free; payload closures rebuilt
#: from relink specs on hydration) and the serialized evaluation plan, so
#: a worker cold-starts without ever touching the expander/translator.
#: Format-1 payloads (recompile-on-hydrate) are still readable.
PLAN_ARTIFACT_FORMAT = 2


def plan_artifact(
    module: A.Module,
    modules: Optional[A.ModuleTable] = None,
    options: Optional[CompileOptions] = None,
) -> bytes:
    """Serialize everything a worker process needs to rebuild this
    compiled module — the module AST, its resolution table, and the
    compile options — plus the structural fingerprint the rebuild must
    land on.

    A compiled :class:`CompiledModule` itself cannot cross a process
    boundary (its circuit embeds closures), but compilation is a pure
    function of the sources, so shipping the AST and recompiling through
    :func:`compile_cached` on the far side reproduces the *same*
    fingerprint — which is what makes snapshots, journals, and live
    machine migration portable between shard workers.

    Only *portable* modules qualify: the AST must be renderable (the
    structural key exists) and must embed no host callables, because a
    callable's identity cannot survive pickling into another process —
    two workers would compute different fingerprints and refuse each
    other's snapshots.  Host callables passed by *name* through
    ``host_globals`` are fine (they are resolved per machine, not hashed
    into the fingerprint).  Raises
    :class:`~repro.errors.ShardError` for non-portable modules.
    """
    from repro.errors import ShardError

    embedded = _embedded_callables(module)
    if modules is not None:
        for name in modules.names():
            embedded.extend(_embedded_callables(modules.get(name)))
    if embedded:
        raise ShardError(
            f"module {module.name!r} embeds {len(embedded)} host "
            "callable(s) in its AST; its compile fingerprint cannot be "
            "reproduced in another process.  Pass host functions by name "
            "via host_globals, or hand the ShardManager a factory spec "
            "instead of an artifact."
        )
    fingerprint = _structural_key(module, modules, options)
    if fingerprint is None:
        raise ShardError(
            f"module {module.name!r} is not renderable; cannot build a "
            "portable plan artifact for it"
        )
    payload = {
        "format": PLAN_ARTIFACT_FORMAT,
        "module": module,
        "modules": modules,
        "options": options,
        "fingerprint": fingerprint,
        "compiled": None,
    }
    # Embed the compiled circuit and evaluation plan so hydration is pure
    # deserialization (cold start).  Pickling them in the same payload as
    # the module shares the Net/AST objects through the pickle memo.  If
    # anything in the compiled form resists pickling, fall back to the
    # recompile-on-hydrate payload rather than failing: hydration handles
    # both.
    compiled = compile_cached(module, modules, options)
    if compiled.fingerprint == fingerprint:
        try:
            payload["compiled"] = {
                "circuit": compiled.circuit,
                "frame_vars": compiled.frame_vars,
                "warnings": compiled.warnings,
                "plan": compiled.evaluation_plan(),
            }
            return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            payload["compiled"] = None
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as err:
        raise ShardError(
            f"module {module.name!r} could not be pickled into a plan "
            f"artifact: {err}"
        ) from err


#: per-process cache of hydrated artifacts, keyed by fingerprint: every
#: machine a worker hosts shares one compiled circuit and eval plan, and
#: repeated hydrations of the same artifact are O(dict lookup)
_hydrate_cache: Dict[str, CompiledModule] = {}


def clear_hydrate_cache() -> None:
    _hydrate_cache.clear()


def hydrate_plan_artifact(data: bytes) -> CompiledModule:
    """Rebuild a :class:`CompiledModule` from a :func:`plan_artifact`
    payload.

    Format-2 payloads carry the compiled circuit and evaluation plan:
    hydration deserializes, rebuilds the payload closures from their
    relink specs and re-attaches the plan — the expander/translator/
    optimizer never run (the artifact cold-start path).  Format-1 (and
    format-2 payloads whose compiled form could not be pickled) recompile
    from the shipped AST through the structural compile cache and verify
    the recompiled fingerprint matches the one recorded at artifact
    creation — a mismatch means the two processes would disagree about
    snapshot compatibility, which must fail loudly here rather than
    corrupt a restore later.
    """
    from repro.errors import ShardError

    try:
        payload = pickle.loads(data)
    except Exception as err:
        raise ShardError(f"plan artifact could not be unpickled: {err}") from err
    if not isinstance(payload, dict) or payload.get("format") not in (1, 2):
        raise ShardError(
            f"unsupported plan artifact format "
            f"{payload.get('format') if isinstance(payload, dict) else payload!r} "
            f"(this runtime reads formats 1..{PLAN_ARTIFACT_FORMAT})"
        )
    expected = payload["fingerprint"]
    cached = _hydrate_cache.get(expected)
    if cached is not None:
        return cached

    embedded = payload.get("compiled") if payload["format"] >= 2 else None
    if embedded is not None:
        from repro.compiler.translate import rebuild_payloads

        circuit = rebuild_payloads(embedded["circuit"])
        compiled = CompiledModule(
            payload["module"],
            circuit,
            list(embedded["frame_vars"]),
            list(embedded["warnings"]),
            None,
        )
        compiled.fingerprint = expected
        plan = embedded.get("plan")
        if plan is not None:
            compiled._plan = plan.rebind(circuit)
    else:
        compiled = compile_cached(
            payload["module"], payload["modules"], payload["options"]
        )
        if compiled.fingerprint != expected:
            raise ShardError(
                f"plan artifact fingerprint mismatch: artifact recorded "
                f"{expected!r}, hydration produced {compiled.fingerprint!r} — "
                "the module did not survive the process boundary structurally "
                "intact"
            )
    _hydrate_cache[expected] = compiled
    return compiled


class ArtifactStore:
    """Fingerprint-keyed on-disk store of plan artifacts.

    One entry per compiled program variant (module + resolution table +
    options), written atomically (temp file + ``os.replace``) so
    concurrent workers can share a store directory.  ``load`` goes
    through the per-process hydrate cache, so a worker hosting many
    machines deserializes each artifact at most once.
    """

    SUFFIX = ".plan"

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint + self.SUFFIX)

    def put(
        self,
        module: A.Module,
        modules: Optional[A.ModuleTable] = None,
        options: Optional[CompileOptions] = None,
    ) -> str:
        """Compile (through the caches) and persist; returns the
        fingerprint key.  Idempotent: an existing entry is kept."""
        fingerprint = _structural_key(module, modules, options)
        if fingerprint is not None and os.path.exists(self._path(fingerprint)):
            return fingerprint
        data = plan_artifact(module, modules, options)  # raises for non-portable
        path = self._path(fingerprint)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        return fingerprint

    def get(self, fingerprint: str) -> bytes:
        from repro.errors import ShardError

        try:
            with open(self._path(fingerprint), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise ShardError(
                f"artifact store {self.root!r} has no entry {fingerprint!r}"
            ) from None

    def load(self, fingerprint: str) -> CompiledModule:
        """Hydrate the stored artifact (cached per process)."""
        cached = _hydrate_cache.get(fingerprint)
        if cached is not None:
            return cached
        return hydrate_plan_artifact(self.get(fingerprint))

    def __contains__(self, fingerprint: str) -> bool:
        return os.path.exists(self._path(fingerprint))

    def fingerprints(self) -> List[str]:
        return sorted(
            name[: -len(self.SUFFIX)]
            for name in os.listdir(self.root)
            if name.endswith(self.SUFFIX)
        )
