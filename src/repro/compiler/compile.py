"""End-to-end compilation driver: expand → validate → translate → optimize.

This is phase 2 and the front half of phase 3 of the paper's compiler; the
back half (the reactive machine wrapping the circuit simulator) lives in
:mod:`repro.runtime.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.validate import validate_module
from repro.compiler.analysis import cycle_warnings
from repro.compiler.expand import expand_module
from repro.compiler.netlist import Circuit
from repro.compiler.translate import AUTO, translate_module


@dataclass
class CompileOptions:
    """Compilation knobs.

    :param optimize: run the net-level optimizer (constant folding, gate
        deduplication, dead-net sweeping).
    :param loop_duplication: reincarnation policy — ``auto`` duplicates
        loop bodies containing local signals/counters/execs, ``always`` and
        ``never`` force the choice (ablation A2 of DESIGN.md).
    :param check_cycles: run the static combinational-cycle analysis and
        collect warnings (the paper's compile-time deadlock warning).
    """

    optimize: bool = True
    loop_duplication: str = AUTO
    check_cycles: bool = True


@dataclass
class CompiledModule:
    """The output of compilation, consumed by the reactive machine."""

    module: A.Module
    circuit: Circuit
    #: frame variables (module/instance vars) with optional initializers
    frame_vars: List[Tuple[str, Optional[E.Expr]]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    #: the expanded kernel body (useful for debugging and the interpreter)
    kernel: Optional[A.Stmt] = None
    #: lazily-built levelized evaluation plan (shared by every machine
    #: constructed from this compiled module)
    _plan: Optional[object] = field(default=None, repr=False, compare=False)

    def stats(self):
        return self.circuit.stats()

    def evaluation_plan(self):
        """The circuit's compiled :class:`~repro.compiler.plan.EvalPlan`,
        built on first use and cached.  The circuit must not be mutated
        after the first call (compilation, including the optimizer, is
        already complete by construction)."""
        if self._plan is None:
            from repro.compiler.plan import build_plan

            self._plan = build_plan(self.circuit)
        return self._plan


def compile_module(
    module: A.Module,
    modules: Optional[A.ModuleTable] = None,
    options: Optional[CompileOptions] = None,
) -> CompiledModule:
    """Compile ``module`` to an augmented boolean circuit.

    ``modules`` resolves ``run`` statements by name.  Raises
    :class:`~repro.errors.ValidationError` /
    :class:`~repro.errors.LinkError` on bad programs; potential causality
    cycles are reported as warnings on the result.
    """
    options = options or CompileOptions()
    kernel, frame_vars = expand_module(module, modules)
    validate_module(module, kernel)
    circuit = translate_module(module, kernel, options.loop_duplication)
    circuit.frame_vars = list(frame_vars)
    if options.optimize:
        from repro.compiler.optimize import optimize_circuit

        circuit = optimize_circuit(circuit)
    warnings: List[str] = []
    if options.check_cycles:
        warnings = cycle_warnings(circuit)
    return CompiledModule(module, circuit, list(frame_vars), warnings, kernel)
