"""Sub-circuit compilation and linked instantiation.

Classic Esterel compilers (and HipHop's) re-translate a module's body at
every ``run`` site, so a program with N instantiations of M pays
O(N·|M|) compile time.  This module compiles each linkable module body
*once* into a relocatable **template** — a circuit with four port inputs
standing for the instantiation site's GO/RES/SUSP/KILL wires and the
interface signals left unwired — then stamps copies of the template into
caller circuits by net-index offsetting.  A ``run M(...)`` becomes
O(interface + |M| net copies) instead of a full re-translation,
re-optimization and re-analysis of M's body.

Relocation relies on two properties of the netlist IR:

* every EXPR/ACTION payload is described by a plain-data *relink spec*
  (``net.spec``) whose slot numbers can be remapped before the closure is
  rebuilt with :func:`repro.compiler.translate.build_payload`;
* signal status nets are never gate fanins — readers reach them through
  ``deps`` and slot-based runtime lookup only — so splicing an instance's
  emitters into the caller's status net is a pure ``or_into``.

Templates are optimized and cycle-checked once at build time; the final
linked circuit needs only a dead-net sweep
(:func:`repro.compiler.optimize.compact_circuit`).  Pending data
dependencies (emit-before-read microscheduling) are deliberately *not*
finalized inside the template: they are carried as metadata and resolved
in the caller, whose writer sets are only complete after all instances
are linked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.lang import ast as A
from repro.compiler.netlist import (
    REG,
    Circuit,
    ExecInfo,
    Literal,
    Net,
    SignalInfo,
    StateSegment,
    lit,
)
from repro.compiler.translate import Ctx, Ifc, Translator, build_payload

__all__ = [
    "ModuleTemplate",
    "get_template",
    "link_instance",
    "link_cache_stats",
    "clear_link_cache",
]


class ModuleTemplate:
    """One module body compiled to a relocatable sub-circuit."""

    __slots__ = (
        "module",
        "circuit",
        "ports",
        "sel_root",
        "k_roots",
        "n_iface",
        "registers",
        "pending_reads",
        "exec_incarnations",
        "warnings",
        "const0_id",
        "const1_id",
        "rank",
        "copy_plan",
    )

    def __init__(self, module: A.Module, circuit: Circuit):
        self.module = module
        self.circuit = circuit
        #: (go, res, susp, kill) port INPUT nets
        self.ports: Tuple[Net, Net, Net, Net] = None  # type: ignore[assignment]
        self.sel_root: Net = None  # type: ignore[assignment]
        self.k_roots: Dict[int, Net] = {}
        self.n_iface = len(module.interface)
        #: REG nets in post-optimization circuit order (state layout)
        self.registers: List[Net] = []
        #: unresolved (net, template SignalInfo, wants_value) reads
        self.pending_reads: List[Tuple[Net, SignalInfo, bool]] = []
        #: exec AST uid -> [(start_action, kill_action or None)]
        self.exec_incarnations: Dict[int, List[Tuple[Net, Optional[Net]]]] = {}
        #: causality warnings, already prefixed with the module name
        self.warnings: List[str] = []
        self.const0_id = -1
        self.const1_id = -1
        #: template id -> dense copy index, or -1-k for the k-th special
        #: wire (go, res, susp, kill, const0, const1)
        self.rank: List[int] = []
        #: (plan_pure, plan_rest, flat_pin, flat_pdeps, n_copied) — see
        #: _build_copy_plan
        self.copy_plan: tuple = ([], [], [], [], 0)


def _build_template(
    module: A.Module,
    body: A.Stmt,
    loop_duplication: str,
    optimize: bool,
    check_cycles: bool,
) -> ModuleTemplate:
    circ = Circuit(f"{module.name}<template>")
    tr = Translator(circ, loop_duplication,
                    template_options=(optimize, check_cycles))

    go = circ.input_net("port.go")
    res = circ.input_net("port.res")
    susp = circ.input_net("port.susp")
    kill = circ.input_net("port.kill")

    # Interface signals get a status OR collecting template-side emitters
    # but no machine input net: at link time the status is spliced into
    # the caller's signal and readers are re-pointed through the slot map.
    for decl in module.interface:
        info = tr.declare_signal(decl, bound_name=decl.name)
        circ.interface[decl.name] = info
        tr.sigmap[decl.name] = info

    ifc = tr.translate(body, Ctx(lit(go), lit(res), lit(susp), lit(kill)))
    bad = [code for code in ifc.ks if code >= 2]
    if bad:
        # _linkable_facts guarantees a closed body; defensive only
        raise CompileError(
            f"module {module.name}: free trap codes {bad} in linked body"
        )

    # Materialize the instance's selection/completion wires as real,
    # protected nets so the optimizer neither aliases nor sweeps them.
    sel_root = circ.gate_or([ifc.sel], "link.sel")
    k_roots = {
        code: circ.gate_or([wire], f"link.k{code}")
        for code, wire in ifc.ks.items()
    }
    circ.extra_protected = [go, res, susp, kill, sel_root, *k_roots.values()]

    # NOTE: no tr.finalize() — pending reads and exec-incarnation deps are
    # resolved in the caller, where the bound signals' writer sets live.
    if optimize:
        from repro.compiler.optimize import optimize_circuit

        optimize_circuit(circ)

    warnings: List[str] = []
    if check_cycles:
        from repro.compiler.analysis import cycle_warnings

        warnings = [f"{module.name}: {w}" for w in cycle_warnings(circ)]
        # nested templates' warnings were aggregated during translation;
        # keep them too (they carry the inner module prefix)
        warnings.extend(circ.link_warnings)
    else:
        warnings = list(circ.link_warnings)

    # The optimizer can sweep reader nets whose enable folded to constant
    # false; drop their pending reads.  Surviving Net objects keep their
    # (renumbered) ids, so later base-offsetting stays valid.
    survivors = {id(net) for net in circ.nets}
    template = ModuleTemplate(module, circ)
    template.ports = (go, res, susp, kill)
    template.sel_root = sel_root
    template.k_roots = k_roots
    template.registers = [net for net in circ.nets if net.kind == REG]
    template.pending_reads = [
        entry for entry in tr._pending_reads if id(entry[0]) in survivors
    ]
    for uid, incarnations in tr._exec_incarnations.items():
        kept = [
            (start, kill_act if (kill_act is not None
                                 and id(kill_act) in survivors) else None)
            for start, kill_act in incarnations
            if id(start) in survivors
        ]
        if kept:
            template.exec_incarnations[uid] = kept
    template.warnings = warnings
    template.const0_id = circ.const0().id
    template.const1_id = circ.const1().id
    _build_copy_plan(template)
    return template


def _build_copy_plan(template: ModuleTemplate) -> None:
    """Precompute everything about a stamp that does not depend on the
    instantiation site.

    Copied-net ids are ``base + rank``; only ``base`` and the six special
    wires (the four ctx ports and the two constants) vary per instance.
    Every literal is pre-ranked here (negative ranks mark specials), and
    the nets split into two loops: the overwhelming majority — pure fanin,
    no payload spec — take a branch-free fast path where the per-instance
    work is one base addition per literal; the rest (nets reading a ctx
    wire or carrying a relink spec) go through the general path.
    """
    circ = template.circuit
    ports = template.ports
    special_ix = {
        ports[0].id: 0,
        ports[1].id: 1,
        ports[2].id: 2,
        ports[3].id: 3,
        template.const0_id: 4,
        template.const1_id: 5,
    }
    rank = [0] * len(circ.nets)
    nxt = 0
    for net in circ.nets:
        ix = special_ix.get(net.id)
        if ix is not None:
            rank[net.id] = -1 - ix
        else:
            rank[net.id] = nxt
            nxt += 1

    # pure nets don't carry their literal lists: all pure literals are
    # concatenated into two flat arrays, shifted once per instance in a
    # single comprehension, and handed out by slicing
    flat_pin: List[Tuple[int, bool]] = []
    flat_pdeps: List[int] = []
    plan_pure: List[tuple] = []
    plan_rest: List[tuple] = []
    for net in circ.nets:
        if net.id in special_ix:
            continue
        pin = tuple((rank[s], n) for s, n in net.inputs)
        pdeps = tuple(rank[d] for d in net.deps)
        pure = (
            net.spec is None
            and all(r >= 0 for r, _ in pin)
            and all(r >= 0 for r in pdeps)
        )
        if pure:
            i0, j0 = len(flat_pin), len(flat_pdeps)
            flat_pin.extend(pin)
            flat_pdeps.extend(pdeps)
            plan_pure.append((
                rank[net.id], net.kind, net.label, net.loc, net.init,
                i0, len(flat_pin), j0, len(flat_pdeps),
            ))
        else:
            plan_rest.append((
                rank[net.id], net.kind, net.label, net.loc, net.init,
                pin, pdeps, net.spec,
            ))
    template.rank = rank
    template.copy_plan = (plan_pure, plan_rest, flat_pin, flat_pdeps, nxt)


# ---------------------------------------------------------------------------
# template cache
# ---------------------------------------------------------------------------

#: (id(module), loop_duplication, optimize, check_cycles) -> ModuleTemplate.
#: The template pins the module object, so id() cannot be recycled while
#: the entry lives; in-place mutation of a module body after compiling is
#: not detected (call clear_link_cache() after editing module objects).
_TEMPLATE_CACHE: Dict[tuple, ModuleTemplate] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def get_template(
    module: A.Module,
    body: A.Stmt,
    loop_duplication: str,
    optimize: bool = True,
    check_cycles: bool = True,
) -> ModuleTemplate:
    """The compiled sub-circuit template for ``module``, built on first use.

    ``body`` is the expanded callee-side kernel body (from
    ``Expander._linkable_facts``); bodies from different expander
    instances are alpha-equivalent, so the first one seen wins.
    """
    key = (id(module), loop_duplication, bool(optimize), bool(check_cycles))
    entry = _TEMPLATE_CACHE.get(key)
    if entry is not None and entry.module is module:
        _CACHE_STATS["hits"] += 1
        return entry
    _CACHE_STATS["misses"] += 1
    entry = _build_template(module, body, loop_duplication, optimize, check_cycles)
    _TEMPLATE_CACHE[key] = entry
    return entry


def link_cache_stats() -> Dict[str, int]:
    return dict(_CACHE_STATS, entries=len(_TEMPLATE_CACHE))


def clear_link_cache() -> None:
    _TEMPLATE_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


# ---------------------------------------------------------------------------
# linking
# ---------------------------------------------------------------------------


def _remap_scope(scope: Dict[str, int], sigslot: Dict[int, int]) -> Dict[str, int]:
    return {name: sigslot[slot] for name, slot in scope.items()}


def remap_spec(
    spec: tuple,
    sigslot: Dict[int, int],
    counters: Dict[int, int],
    execs: Dict[int, int],
) -> tuple:
    """Relocate a relink spec's slot numbers into the caller's tables."""
    kind = spec[0]
    if kind == "expr":
        return ("expr", spec[1], _remap_scope(spec[2], sigslot))
    if kind in ("arm", "ctest"):
        return (kind, spec[1], _remap_scope(spec[2], sigslot), counters[spec[3]])
    if kind in ("emitval", "siginit"):
        return (kind, spec[1], _remap_scope(spec[2], sigslot), sigslot[spec[3]])
    if kind == "atom":
        return ("atom", spec[1], _remap_scope(spec[2], sigslot))
    if kind == "exec_start":
        return ("exec_start", execs[spec[1]], _remap_scope(spec[2], sigslot))
    if kind in ("exec_finish", "exec_kill", "exec_susp", "exec_resume"):
        return (kind, execs[spec[1]])
    raise CompileError(f"cannot relocate payload spec kind {kind!r}")


def link_instance(tr: Translator, stmt: "A.LinkedRun", ctx: Ctx) -> Ifc:
    """Stamp one instance of ``stmt.module``'s template into ``tr.circ``.

    Returns the instance's statement interface (SEL and completion wires)
    exactly as if the body had been translated inline.
    """
    module = stmt.module
    if tr.template_options is not None:
        optimize, check_cycles = tr.template_options
    else:
        optimize, check_cycles = True, True
    template = get_template(module, stmt.body, tr.loop_duplication,
                            optimize, check_cycles)
    caller = tr.circ
    tmpl_circ = template.circuit
    base = len(caller.nets)

    # -- slot allocation ----------------------------------------------------
    # Template signal slots 0..n_iface-1 are the interface in declaration
    # order; they map onto the caller's bound signals.  Locals, counters
    # and execs get fresh caller slots in template order, preserving the
    # relative creation order inlining would have produced.
    sigslot: Dict[int, int] = {}
    local_infos: List[Tuple[SignalInfo, SignalInfo]] = []  # (template, caller)
    for idx, t_info in enumerate(tmpl_circ.signals):
        if idx < template.n_iface:
            caller_name = stmt.bindings[module.interface[idx].name]
            c_info = tr.sigmap.get(caller_name)
            if c_info is None:
                raise CompileError(
                    f"run {module.name}: unknown signal {caller_name!r}"
                )
            sigslot[idx] = c_info.slot
        else:
            c_info = caller.new_signal(
                t_info.name, t_info.direction, t_info.init, t_info.combine
            )
            c_info.bound_name = t_info.bound_name
            sigslot[idx] = c_info.slot
            local_infos.append((t_info, c_info))

    counter_map: Dict[int, int] = {}
    for t_cnt in tmpl_circ.counters:
        counter_map[t_cnt.slot] = caller.new_counter(t_cnt.loc, t_cnt.arity).slot

    exec_map: Dict[int, int] = {}
    new_execs: List[Tuple[ExecInfo, ExecInfo]] = []  # (template, caller)
    for t_exec in tmpl_circ.execs:
        sig = None
        if t_exec.signal is not None:
            sig = caller.signals[sigslot[t_exec.signal.slot]]
        c_exec = caller.new_exec(t_exec.name, sig, t_exec.loc)
        c_exec.stmt = t_exec.stmt
        exec_map[t_exec.slot] = c_exec.slot
        new_execs.append((t_exec, c_exec))

    # -- net copying --------------------------------------------------------
    # The four ports and the two constants are not copied at all: every
    # literal or dep through them is remapped onto the instantiation
    # site's wires (with the port literal's own negation XOR'd in), so
    # the linked circuit carries no per-instance debris and needs no
    # final sweep.  The template's precomputed copy plan ranks every
    # site-invariant literal ahead of time, so the per-net work here is
    # one base addition per literal — this loop IS the cost of an
    # instantiation.
    t_const0, t_const1 = template.const0_id, template.const1_id
    spec_lits = (ctx.go, ctx.res, ctx.susp, ctx.kill, tr.FALSE, tr.TRUE)
    rank = template.rank
    plan_pure, plan_rest, flat_pin, flat_pdeps, n_copied = template.copy_plan

    # the two loops below fill out of id order, so preallocate and
    # index-assign to keep the nets[i].id == i invariant
    caller_nets = caller.nets
    caller_nets.extend([None] * n_copied)
    new_net = Net.__new__
    shifted_in = [(base + s, n) for s, n in flat_pin]
    shifted_dep = [base + d for d in flat_pdeps]
    for r, kind, label, loc, init, i0, i1, j0, j1 in plan_pure:
        net = new_net(Net)
        net.id = r = base + r
        net.kind = kind
        net.label = label
        net.loc = loc
        net.init = init
        net.payload = None
        net.expr_info = None
        net.spec = None
        net.inputs = shifted_in[i0:i1]
        net.deps = shifted_dep[j0:j1]
        caller_nets[r] = net

    for r, kind, label, loc, init, pin, pdeps, spec in plan_rest:
        net = new_net(Net)
        net.id = r = base + r
        net.kind = kind
        net.label = label
        net.loc = loc
        net.init = init
        net.payload = None
        net.expr_info = None
        ins = []
        for rs, n in pin:
            if rs >= 0:
                ins.append((base + rs, n))
            else:
                cid, cneg = spec_lits[-1 - rs]
                ins.append((cid, cneg ^ n))
        net.inputs = ins
        net.deps = [
            base + rd if rd >= 0 else spec_lits[-1 - rd][0] for rd in pdeps
        ]
        if spec is not None:
            spec = remap_spec(spec, sigslot, counter_map, exec_map)
            net.payload = build_payload(spec)
            if spec[0] == "expr":
                net.expr_info = (spec[1], spec[2])
        net.spec = spec
        caller_nets[r] = net

    def copy_of(t_net: Net) -> Net:
        # only ever called for copied nets (status/action/root nets are
        # never ports or constants), so rank is non-negative here
        return caller_nets[base + rank[t_net.id]]

    def remap_writers(writers: List[int]) -> List[int]:
        # the optimizer resolves folded-away writer actions to the
        # constant-0 net; those entries never fire and are dropped here
        return [base + rank[w] for w in writers
                if w not in (t_const0, t_const1)]

    # -- interface splicing -------------------------------------------------
    for idx in range(template.n_iface):
        t_info = tmpl_circ.signals[idx]
        c_info = caller.signals[sigslot[idx]]
        status_copy = copy_of(t_info.status_net)
        if status_copy.inputs:
            # instance-side emitters feed the caller's status wire
            caller.or_into(c_info.status_net, lit(status_copy))
        c_info.writers.extend(remap_writers(t_info.writers))
        c_info.init_writers.extend(remap_writers(t_info.init_writers))

    for t_info, c_info in local_infos:
        c_info.status_net = copy_of(t_info.status_net)
        c_info.writers = remap_writers(t_info.writers)
        c_info.init_writers = remap_writers(t_info.init_writers)

    for t_exec, c_exec in new_execs:
        c_exec.done_net = copy_of(t_exec.done_net)
        for attr in ("start_action", "kill_action",
                     "suspend_action", "resume_action"):
            t_action = getattr(t_exec, attr)
            if t_action is not None:
                setattr(c_exec, attr, copy_of(t_action))

    # -- deferred microscheduling ------------------------------------------
    # Reader deps resolve against caller writer sets in the caller's
    # finalize(); incarnation entries are keyed by the exec AST node uid,
    # which rename_signals preserves, so instances of one module interact
    # exactly as their inlined copies would.
    for t_net, t_info, wants_value in template.pending_reads:
        c_info = caller.signals[sigslot[t_info.slot]]
        tr._pending_reads.append((copy_of(t_net), c_info, wants_value))
    for uid, incarnations in template.exec_incarnations.items():
        entries = tr._exec_incarnations.setdefault(uid, [])
        for start, kill_action in incarnations:
            entries.append((
                copy_of(start),
                None if kill_action is None else copy_of(kill_action),
            ))

    # -- state segments -----------------------------------------------------
    seq = tr._link_seq.get(module.name, 0)
    tr._link_seq[module.name] = seq + 1
    path = f"/{module.name}#{seq}"

    inner_regs = set()
    inner_sigs = set()
    inner_counters = set()
    inner_execs = set()
    inner_segments: List[StateSegment] = []
    for t_seg in tmpl_circ.segments:
        seg = StateSegment(path + t_seg.path, t_seg.module)
        seg.registers = [copy_of(reg) for reg in t_seg.registers]
        seg.signal_slots = [sigslot[s] for s in t_seg.signal_slots]
        seg.counter_slots = [counter_map[s] for s in t_seg.counter_slots]
        seg.exec_slots = [exec_map[s] for s in t_seg.exec_slots]
        inner_regs.update(id(reg) for reg in t_seg.registers)
        inner_sigs.update(t_seg.signal_slots)
        inner_counters.update(t_seg.counter_slots)
        inner_execs.update(t_seg.exec_slots)
        inner_segments.append(seg)

    root = StateSegment(path, module.name)
    root.registers = [
        copy_of(reg) for reg in template.registers if id(reg) not in inner_regs
    ]
    root.signal_slots = [
        sigslot[idx] for idx in range(template.n_iface, len(tmpl_circ.signals))
        if idx not in inner_sigs
    ]
    root.counter_slots = [
        counter_map[t_cnt.slot] for t_cnt in tmpl_circ.counters
        if t_cnt.slot not in inner_counters
    ]
    root.exec_slots = [
        exec_map[t_exec.slot] for t_exec in tmpl_circ.execs
        if t_exec.slot not in inner_execs
    ]
    caller.segments.append(root)
    caller.segments.extend(inner_segments)

    # -- warnings -----------------------------------------------------------
    cache_key = id(template)
    if template.warnings and cache_key not in tr._warned_templates:
        tr._warned_templates.add(cache_key)
        caller.link_warnings.extend(template.warnings)

    sel = (base + rank[template.sel_root.id], False)
    ks = {code: (base + rank[net.id], False)
          for code, net in template.k_roots.items()}
    return Ifc(sel, ks)
