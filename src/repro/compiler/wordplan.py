"""Word-parallel evaluation plans: one gate evaluation per *word* of machines.

A :class:`~repro.runtime.fleet.MachineFleet` holds N instances of one
circuit.  The scalar backends evaluate the shared
:class:`~repro.compiler.plan.EvalPlan` once per member per instant; for a
Skini audience that is thousands of structurally identical sweeps over
mostly identical values.  This module applies the classic bit-parallel
circuit-simulation trick: net ``i`` across all resident members becomes a
single arbitrary-precision Python int (*column*) whose bit ``b`` is the
value of net ``i`` in member ``b``, and each gate is evaluated once per
instant with a bitwise operation over whole columns — ``O(nets)`` word
operations for the entire fleet instead of ``O(nets * members)`` scalar
ones.

:func:`build_word_plan` lowers a *pure* (fully straight-line, no cyclic
relaxation blocks) plan to a generated-and-``compile()``d word function
mirroring the scalar plan statement for statement, in the identical
``(level, net id)`` order:

* OR/AND gates become ``|``/``&`` over column literals (negation is
  ``FM ^ col`` against the instant's member mask);
* REG nets read packed register bitplanes, INPUT nets read per-net input
  masks;
* EXPR nets whose source expression is in the **pure-status fragment**
  (``sig.now`` / ``sig.pre`` / ``!`` / ``&&`` / ``||`` / literals — the
  shape of every plain ``await``/``abort``/``if`` test) are lowered to
  bitwise column expressions: ``sig.now`` reads the signal's status-net
  column (already evaluated, by the plan's data-dependency ordering) and
  ``sig.pre`` reads the fleet's packed previous-instant bitplane.  These
  nets cost zero payload calls however many members await on them.
* remaining EXPR/ACTION nets (valued emissions, atoms, counted delays,
  exec actions) keep their per-member host payloads: the word function
  hands the enable column to a ``FIRE(net_id, mask)`` callback which
  fires the scalar payload for each set bit — in the same straight-line
  net order as every scalar backend, so host-effect interleavings per
  member are byte-identical.

Because the plan is pure, no net is ever ⊥ mid-sweep (every column is
fully defined by the time it is read), so a single value bitplane per net
suffices — the defined-plane of a two-plane ternary encoding would be
identically ``FM`` everywhere.  Constructive-but-cyclic circuits are not
word-eligible and stay on the scalar backends.

Aborts are per-member: when a member's payload raises, ``FIRE`` records
the member in the aborted-mask cell ``AB`` and excludes it from every
later payload; the final register latch masks aborted members out, so a
failed member keeps its pre-instant registers exactly like a failed
scalar reaction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.lang import expr as E
from repro.compiler.netlist import ACTION, AND, EXPR, INPUT, OR, REG, Circuit, Net
from repro.compiler.plan import EvalPlan


class WordPlan:
    """A compiled word-evaluation function plus its lowering metadata."""

    __slots__ = (
        "plan",
        "source",
        "fn",
        "lowered_ids",
        "fired_ids",
        "pre_slots",
        "status_net_of_slot",
    )

    def __init__(
        self,
        plan: EvalPlan,
        source: str,
        fn: Callable[..., None],
        lowered_ids: Tuple[int, ...],
        fired_ids: Tuple[int, ...],
        pre_slots: Tuple[int, ...],
        status_net_of_slot: Tuple[Tuple[int, int], ...],
    ):
        self.plan = plan
        self.source = source
        self.fn = fn
        #: EXPR net ids lowered to pure bitwise column expressions
        self.lowered_ids = lowered_ids
        #: EXPR/ACTION net ids still firing scalar payloads per member
        self.fired_ids = fired_ids
        #: signal slots whose *previous-instant* status the word function
        #: reads (the fleet must maintain a PRE bitplane for these; it
        #: keeps planes for every slot anyway, this is introspection)
        self.pre_slots = pre_slots
        #: (signal slot, status net id) pairs, for post-sweep status reads
        self.status_net_of_slot = status_net_of_slot

    def describe(self) -> Dict[str, int]:
        return {
            "nets": len(self.plan.circuit.nets),
            "lowered_exprs": len(self.lowered_ids),
            "fired_payload_nets": len(self.fired_ids),
            "pre_plane_slots": len(self.pre_slots),
        }

    def memory_estimate(self) -> int:
        import sys

        return sys.getsizeof(self.source) + sys.getsizeof(self.lowered_ids)

    def __repr__(self) -> str:
        d = self.describe()
        return (
            f"WordPlan({self.plan.circuit.name}, {d['nets']} nets, "
            f"{d['lowered_exprs']} lowered, {d['fired_payload_nets']} fired)"
        )


def _lower_status_expr(
    expr: E.Expr,
    scope: Dict[str, int],
    circuit: Circuit,
    pre_slots: Set[int],
) -> Optional[str]:
    """Lower ``expr`` to a bitwise column expression, or ``None`` when it
    leaves the pure-status fragment.

    Soundness: for every subexpression in the fragment the lowered column
    equals the per-member column of ``truthy(sub.eval(env))``.  The JS
    short-circuit operators return an *operand*, not a coerced boolean,
    but the scalar EXPR statement wraps the payload in ``bool(...)`` —
    and ``truthy(a && b) == truthy(a) and truthy(b)`` (dually ``||``), so
    ``&``/``|`` over truthiness columns is exact, whatever the operand
    values were.
    """
    if isinstance(expr, E.SigRef):
        slot = scope.get(expr.signal)
        if slot is None:
            return None
        if expr.kind == E.NOW:
            status = circuit.signals[slot].status_net
            if status is None:
                return None
            return f"W[{status.id}]"
        if expr.kind == E.PRE:
            pre_slots.add(slot)
            return f"PRE[{slot}]"
        return None  # nowval/preval/signame: host values, not statuses
    if isinstance(expr, E.Lit):
        try:
            return "FM" if E.truthy(expr.value) else "0"
        except Exception:
            return None
    if isinstance(expr, E.UnOp) and expr.op == "!":
        sub = _lower_status_expr(expr.operand, scope, circuit, pre_slots)
        return None if sub is None else f"(FM ^ {sub})"
    if isinstance(expr, E.BinOp) and expr.op in ("&&", "||"):
        left = _lower_status_expr(expr.left, scope, circuit, pre_slots)
        if left is None:
            return None
        right = _lower_status_expr(expr.right, scope, circuit, pre_slots)
        if right is None:
            return None
        op = "&" if expr.op == "&&" else "|"
        return f"({left} {op} {right})"
    return None


def _column(net_id: int, neg: bool) -> str:
    return f"(FM ^ W[{net_id}])" if neg else f"W[{net_id}]"


def build_word_plan(plan: EvalPlan) -> WordPlan:
    """Compile the word function for a pure plan (raises on impure ones:
    cyclic blocks relax through ⊥, which the single-bitplane encoding
    cannot represent — such circuits stay scalar)."""
    if not plan.is_pure:
        raise ValueError(
            f"word plans require a pure straight-line plan; "
            f"{plan.circuit.name!r} has {len(plan.blocks)} cyclic block(s)"
        )
    circuit = plan.circuit
    lev = plan.levelization
    reg_slot = plan.reg_slot
    lowered: List[int] = []
    fired: List[int] = []
    pre_slots: Set[int] = set()

    lines: List[str] = [
        "def __word_react__(W, R, IM, PRE, FM, FIRE, AB):",
        "    G = IM.get",
    ]
    # Identical component order to the scalar plan (see _generate_source):
    # levels strictly increase along augmented edges and ties break by net
    # id, so per-member payload firing order matches every scalar backend.
    for component in sorted(
        lev.order, key=lambda comp: (lev.levels[comp[0]], comp[0])
    ):
        net = circuit.nets[component[0]]
        i = net.id
        kind = net.kind
        if kind == INPUT:
            lines.append(f"    W[{i}] = G({i}, 0)")
        elif kind == REG:
            lines.append(f"    W[{i}] = R[{reg_slot[i]}]")
        elif kind == OR:
            if net.inputs:
                expr = " | ".join(_column(s, n) for s, n in net.inputs)
            else:
                expr = "0"
            lines.append(f"    W[{i}] = {expr}")
        elif kind == AND:
            if net.inputs:
                expr = " & ".join(_column(s, n) for s, n in net.inputs)
            else:
                expr = "FM"
            lines.append(f"    W[{i}] = {expr}")
        elif kind == EXPR or kind == ACTION:
            enable = _column(*net.inputs[0])
            low = None
            if kind == EXPR and net.expr_info is not None:
                low = _lower_status_expr(
                    net.expr_info[0], net.expr_info[1], circuit, pre_slots
                )
            if low is not None:
                lowered.append(i)
                lines.append(f"    W[{i}] = {enable} & {low}")
            else:
                fired.append(i)
                lines.append(f"    _m = {enable}")
                lines.append(f"    W[{i}] = FIRE({i}, _m) if _m else 0")
        else:  # pragma: no cover - exhaustive over net kinds
            raise AssertionError(f"unknown net kind {kind!r}")
    # Latch registers for every non-aborted member; aborted members keep
    # their pre-instant state (a failed scalar reaction never latches).
    lines.append("    _ok = FM ^ AB[0]")
    lines.append("    _nok = ~_ok")
    for net_id, slot in reg_slot.items():
        src, neg = circuit.nets[net_id].inputs[0]
        lines.append(f"    R[{slot}] = (R[{slot}] & _nok) | ({_column(src, neg)} & _ok)")
    source = "\n".join(lines) + "\n"
    namespace: Dict[str, Any] = {}
    exec(compile(source, f"<wordplan:{circuit.name}>", "exec"), namespace)

    status_net_of_slot = tuple(
        (info.slot, info.status_net.id)
        for info in circuit.signals
        if info.status_net is not None
    )
    return WordPlan(
        plan,
        source,
        namespace["__word_react__"],
        tuple(lowered),
        tuple(fired),
        tuple(sorted(pre_slots)),
        status_net_of_slot,
    )
