"""Surface syntax: lexer and recursive-descent parser (compiler phase 1)."""

from repro.syntax.parser import (
    parse_expression,
    parse_interface_fragment,
    parse_module,
    parse_program,
    parse_statement,
)

__all__ = [
    "parse_expression",
    "parse_interface_fragment",
    "parse_module",
    "parse_program",
    "parse_statement",
]
