"""Hand-written lexer for the HipHop surface syntax.

Supports ``//`` line comments, ``/* ... */`` block comments, single- and
double-quoted strings with the usual escapes, decimal and float numbers,
identifiers and the punctuation set of :mod:`repro.syntax.tokens`.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParseError, SourceLocation
from repro.syntax.tokens import EOF, NAME, NUMBER, PUNCT, PUNCTUATIONS, STRING, Token

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "0": "\0",
    "b": "\b",
    "f": "\f",
}


class Lexer:
    def __init__(self, source: str, filename: str = "<hiphop>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level helpers ---------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos : self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += n
        return text

    # -- scanning -------------------------------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                loc = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise ParseError("unterminated block comment", loc)
                    self._advance()
                self._advance(2)
            else:
                return

    def _scan_string(self) -> Token:
        loc = self._loc()
        quote = self._advance()
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise ParseError("unterminated string literal", loc)
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\n":
                raise ParseError("newline in string literal", loc)
            if ch == "\\":
                esc = self._advance()
                chars.append(_ESCAPES.get(esc, esc))
            else:
                chars.append(ch)
        return Token(STRING, "".join(chars), loc)

    def _scan_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        return Token(NUMBER, float(text) if is_float else int(text), loc)

    def _scan_name(self) -> Token:
        loc = self._loc()
        start = self.pos
        while True:
            ch = self._peek()
            if not ch or not (ch.isalnum() or ch in "_$"):
                break
            self._advance()
        return Token(NAME, self.source[start : self.pos], loc)

    def next_token(self) -> Token:
        self._skip_trivia()
        loc = self._loc()
        if self.pos >= len(self.source):
            return Token(EOF, None, loc)
        ch = self._peek()
        if ch in "'\"":
            return self._scan_string()
        if ch.isdigit():
            return self._scan_number()
        if ch.isalpha() or ch in "_$":
            return self._scan_name()
        for punct in PUNCTUATIONS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(PUNCT, punct, loc)
        raise ParseError(f"unexpected character {ch!r}", loc)


def tokenize(source: str, filename: str = "<hiphop>") -> List[Token]:
    """Tokenize ``source`` fully, appending a terminating EOF token."""
    lexer = Lexer(source, filename)
    tokens: List[Token] = []
    while True:
        token = lexer.next_token()
        tokens.append(token)
        if token.kind == EOF:
            return tokens
