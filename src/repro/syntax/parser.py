"""Recursive-descent parser for the HipHop surface syntax (phase 1).

The grammar follows the paper's examples closely::

    module Main(in name="", in passwd="", in login, in logout,
                out enableLogin, out connState="disconn",
                inout time=0, inout connected) {
      fork {
        run Identity(...)
      } par {
        every (login.now) {
          run Authenticate(...);
          if (connected.nowval) { run Session(...) }
          else { emit connState("error") }
        }
      }
    }

Statement syntax: ``emit S(e)``, ``sustain S(e)``, ``await [immediate]
[count(n, e)] e``, ``abort/weakabort/suspend [immediate] (e) { ... }``,
``every (e) { ... }``, ``do { ... } every (e)``, ``fork {} par {}``,
``loop {}``, ``if (e) {} else {}``, ``signal S1, S2=0;`` (scoped to the end
of the enclosing block), labels ``L: stmt`` with ``break L``, ``run M(...)``
with ``as`` renamings and ``var=value`` parameters, ``async [S] { host }
kill { host }``, ``atom/hop { host }``, ``let x = e``, ``nothing``,
``pause``/``yield``, ``halt``.

Embedded host expressions are JavaScript-flavoured, with signal accesses
``S.now``, ``S.pre``, ``S.nowval``, ``S.preval``, ``S.signame``, arrow
functions, computed object keys and prefix ``++``/``--``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.lang import ast as A
from repro.lang import expr as E
from repro.lang.signals import IN, INOUT, LOCAL, OUT, SignalDecl, VarDecl
from repro.syntax.lexer import tokenize
from repro.syntax.tokens import EOF, NAME, NUMBER, PUNCT, STRING, STATEMENT_KEYWORDS, Token

#: Signal access properties recognized after an identifier.
_SIGNAL_ACCESSORS = frozenset(E.ACCESS_KINDS)

#: Identifiers that are never implicit signal bases (``this.now`` is an
#: attribute access on the exec context, not a signal named ``this``).
_NON_SIGNAL_BASES = frozenset({"this"})


class Parser:
    """Token-stream parser.  One instance per parse; not reusable."""

    def __init__(self, tokens: List[Token], modules: Optional[A.ModuleTable] = None):
        self.tokens = tokens
        self.index = 0
        self.modules = modules if modules is not None else A.ModuleTable()

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def at_punct(self, value: str, offset: int = 0) -> bool:
        return self.peek(offset).is_punct(value)

    def at_name(self, value: Optional[str] = None, offset: int = 0) -> bool:
        return self.peek(offset).is_name(value)

    def expect_punct(self, value: str) -> Token:
        token = self.peek()
        if not token.is_punct(value):
            raise ParseError(f"expected {value!r}, found {token.value!r}", token.loc)
        return self.advance()

    def expect_name(self, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != NAME or (value is not None and token.value != value):
            what = value or "an identifier"
            raise ParseError(f"expected {what}, found {token.value!r}", token.loc)
        return self.advance()

    def accept_punct(self, value: str) -> bool:
        if self.at_punct(value):
            self.advance()
            return True
        return False

    def accept_name(self, value: str) -> bool:
        if self.at_name(value):
            self.advance()
            return True
        return False

    def _skip_semis(self) -> None:
        while self.accept_punct(";"):
            pass

    # ------------------------------------------------------------------
    # programs and modules
    # ------------------------------------------------------------------

    def parse_program(self) -> A.ModuleTable:
        while not self.peek().kind == EOF:
            self._skip_semis()
            if self.peek().kind == EOF:
                break
            self.modules.add(self.parse_module())
        return self.modules

    def parse_module(self) -> A.Module:
        loc = self.expect_name("module").loc
        name = self.expect_name().value
        interface: List[SignalDecl] = []
        variables: List[VarDecl] = []
        self.expect_punct("(")
        if not self.at_punct(")"):
            while True:
                self._parse_interface_entry(interface, variables)
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        if self.accept_name("implements"):
            base_name = self.expect_name().value
            base = self.modules.get(base_name)
            have = {d.name for d in interface}
            interface = [d for d in base.interface if d.name not in have] + interface
            names = {v.name for v in variables}
            variables = [v for v in base.variables if v.name not in names] + variables
        body = self.parse_block()
        return A.Module(name, interface, body, variables, loc)

    def _parse_interface_entry(
        self, interface: List[SignalDecl], variables: List[VarDecl]
    ) -> None:
        token = self.peek()
        if token.is_name("var"):
            self.advance()
            name = self.expect_name().value
            init = self.parse_expression() if self.accept_punct("=") else None
            variables.append(VarDecl(name, init, token.loc))
            return
        direction = INOUT
        if token.kind == NAME and token.value in (IN, OUT, INOUT):
            direction = token.value
            self.advance()
        name = self.expect_name().value
        init = self.parse_expression() if self.accept_punct("=") else None
        combine = self.expect_name().value if self.accept_name("combine") else None
        interface.append(SignalDecl(name, direction, init, combine, token.loc))

    def parse_interface_fragment(self, default_direction: str = LOCAL) -> List[SignalDecl]:
        decls: List[SignalDecl] = []
        if self.peek().kind == EOF:
            return decls
        while True:
            token = self.peek()
            direction = default_direction
            if token.kind == NAME and token.value in (IN, OUT, INOUT):
                direction = token.value
                self.advance()
            name = self.expect_name().value
            init = self.parse_expression() if self.accept_punct("=") else None
            decls.append(SignalDecl(name, direction, init, None, token.loc))
            if not self.accept_punct(","):
                break
        return decls

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_block(self) -> A.Stmt:
        """``{ stmt* }`` with ``signal`` declarations scoping to block end."""
        self.expect_punct("{")
        body = self._parse_statement_sequence(stop="}")
        self.expect_punct("}")
        return body

    def _parse_statement_sequence(self, stop: str) -> A.Stmt:
        items: List[A.Stmt] = []
        while True:
            self._skip_semis()
            token = self.peek()
            if token.kind == EOF or token.is_punct(stop):
                break
            if token.is_name("signal"):
                self.advance()
                decls = self._parse_local_signal_decls()
                self._skip_semis()
                rest = self._parse_statement_sequence(stop)
                items.append(A.Local(decls, rest, token.loc))
                break
            items.append(self.parse_statement())
        if not items:
            return A.Nothing()
        if len(items) == 1:
            return items[0]
        return A.Seq(items)

    def _parse_local_signal_decls(self) -> List[SignalDecl]:
        decls: List[SignalDecl] = []
        while True:
            token = self.expect_name()
            init = self.parse_expression() if self.accept_punct("=") else None
            combine = self.expect_name().value if self.accept_name("combine") else None
            decls.append(SignalDecl(token.value, LOCAL, init, combine, token.loc))
            if not self.accept_punct(","):
                return decls

    def parse_statement(self) -> A.Stmt:
        token = self.peek()
        if token.kind != NAME:
            if token.is_punct("{"):
                return self.parse_block()
            raise ParseError(f"expected a statement, found {token.value!r}", token.loc)

        word = token.value
        # Labelled statement: `Name: stmt`
        if word not in STATEMENT_KEYWORDS and self.at_punct(":", offset=1):
            self.advance()
            self.advance()
            return A.Trap(word, self.parse_statement(), token.loc)

        handler = _STATEMENT_HANDLERS.get(word)
        if handler is not None:
            return handler(self)
        raise ParseError(f"unknown statement {word!r}", token.loc)

    # -- individual statements ------------------------------------------------

    def _stmt_nothing(self) -> A.Stmt:
        loc = self.advance().loc
        return A.Nothing(loc)

    def _stmt_pause(self) -> A.Stmt:
        loc = self.advance().loc
        return A.Pause(loc)

    def _stmt_halt(self) -> A.Stmt:
        loc = self.advance().loc
        return A.Halt(loc)

    def _stmt_emit(self) -> A.Stmt:
        loc = self.advance().loc
        name = self.expect_name().value
        value: Optional[E.Expr] = None
        if self.accept_punct("("):
            if not self.at_punct(")"):
                value = self.parse_expression()
            self.expect_punct(")")
        return A.Emit(name, value, loc)

    def _stmt_sustain(self) -> A.Stmt:
        loc = self.advance().loc
        name = self.expect_name().value
        value: Optional[E.Expr] = None
        if self.accept_punct("("):
            if not self.at_punct(")"):
                value = self.parse_expression()
            self.expect_punct(")")
        return A.Sustain(name, value, loc)

    def _parse_delay_head(self) -> A.Delay:
        """``[immediate] count(n, e)`` or ``[immediate] (e)``."""
        immediate = self.accept_name("immediate")
        loc = self.peek().loc
        if self.at_name("count"):
            self.advance()
            self.expect_punct("(")
            count = self.parse_expression()
            self.expect_punct(",")
            guard = self.parse_expression()
            self.expect_punct(")")
            return A.Delay(guard, immediate, count, loc)
        self.expect_punct("(")
        if self.accept_name("immediate"):
            immediate = True
        guard = self.parse_expression()
        self.expect_punct(")")
        return A.Delay(guard, immediate, None, loc)

    def _stmt_await(self) -> A.Stmt:
        loc = self.advance().loc
        immediate = self.accept_name("immediate")
        if self.at_name("count"):
            self.advance()
            self.expect_punct("(")
            count = self.parse_expression()
            self.expect_punct(",")
            guard = self.parse_expression()
            self.expect_punct(")")
            return A.Await(A.Delay(guard, immediate, count, loc), loc)
        guard = self.parse_expression()
        return A.Await(A.Delay(guard, immediate, None, loc), loc)

    def _stmt_abort(self) -> A.Stmt:
        loc = self.advance().loc
        delay = self._parse_delay_head()
        body = self.parse_block()
        return A.Abort(delay, body, loc)

    def _stmt_weakabort(self) -> A.Stmt:
        loc = self.advance().loc
        delay = self._parse_delay_head()
        body = self.parse_block()
        return A.WeakAbort(delay, body, loc)

    def _stmt_suspend(self) -> A.Stmt:
        loc = self.advance().loc
        delay = self._parse_delay_head()
        body = self.parse_block()
        return A.Suspend(delay, body, loc)

    def _stmt_every(self) -> A.Stmt:
        loc = self.advance().loc
        delay = self._parse_delay_head()
        body = self.parse_block()
        return A.Every(delay, body, loc)

    def _stmt_do(self) -> A.Stmt:
        loc = self.advance().loc
        body = self.parse_block()
        self.expect_name("every")
        delay = self._parse_delay_head()
        return A.DoEvery(body, delay, loc)

    def _stmt_fork(self) -> A.Stmt:
        loc = self.advance().loc
        branches = [self.parse_block()]
        while self.at_name("par"):
            self.advance()
            branches.append(self.parse_block())
        if len(branches) == 1:
            return branches[0]
        return A.Par(branches, loc)

    def _stmt_loop(self) -> A.Stmt:
        loc = self.advance().loc
        return A.Loop(self.parse_block(), loc)

    def _stmt_if(self) -> A.Stmt:
        loc = self.advance().loc
        self.expect_punct("(")
        test = self.parse_expression()
        self.expect_punct(")")
        then = self.parse_block() if self.at_punct("{") else self.parse_statement()
        orelse: Optional[A.Stmt] = None
        if self.accept_name("else"):
            orelse = self.parse_block() if self.at_punct("{") else self.parse_statement()
        return A.If(test, then, orelse, loc)

    def _stmt_break(self) -> A.Stmt:
        loc = self.advance().loc
        label = self.expect_name().value
        return A.Break(label, loc)

    def _stmt_let(self) -> A.Stmt:
        loc = self.advance().loc
        name = self.expect_name().value
        self.expect_punct("=")
        value = self.parse_expression()
        return A.Atom([A.Assign(name, value, loc)], loc)

    def _stmt_atom(self) -> A.Stmt:
        loc = self.advance().loc
        return A.Atom(self.parse_host_block(), loc)

    def _stmt_run(self) -> A.Stmt:
        loc = self.advance().loc
        name = self.expect_name().value
        bindings: Dict[str, str] = {}
        var_args: Dict[str, E.Expr] = {}
        self.expect_punct("(")
        if not self.at_punct(")"):
            while True:
                if self.at_punct("..."):
                    # `run M(...)`: remaining interface signals bind by name.
                    self.advance()
                elif self.at_name() and self.at_name("as", offset=1):
                    first = self.expect_name().value
                    self.expect_name("as")
                    second = self.expect_name().value
                    bindings[first] = second
                elif self.at_name() and self.at_punct("=", offset=1):
                    var = self.expect_name().value
                    self.expect_punct("=")
                    var_args[var] = self.parse_expression()
                else:
                    token = self.peek()
                    raise ParseError(
                        f"bad run argument near {token.value!r} "
                        "(expected '...', 'sig as other' or 'var=value')",
                        token.loc,
                    )
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        module: Union[str, A.Module] = name
        if name in self.modules:
            module = self.modules.get(name)
        return A.Run(module, bindings, var_args, loc)

    def _stmt_async(self) -> A.Stmt:
        loc = self.advance().loc
        signal: Optional[str] = None
        if self.at_name() and not self.at_punct("{"):
            signal = self.expect_name().value
        start = self.parse_host_block()
        kill = on_suspend = on_resume = None
        while True:
            if self.at_name("kill"):
                self.advance()
                kill = self.parse_host_block()
            elif self.at_name("suspend"):
                self.advance()
                on_suspend = self.parse_host_block()
            elif self.at_name("resume"):
                self.advance()
                on_resume = self.parse_host_block()
            else:
                break
        return A.Exec(start, signal, kill, on_suspend, on_resume, name="async", loc=loc)

    # ------------------------------------------------------------------
    # host statements
    # ------------------------------------------------------------------

    def parse_host_block(self) -> List[A.HostStmt]:
        self.expect_punct("{")
        stmts: List[A.HostStmt] = []
        while True:
            self._skip_semis()
            if self.at_punct("}") or self.peek().kind == EOF:
                break
            stmts.append(self.parse_host_statement())
        self.expect_punct("}")
        return stmts

    def parse_host_statement(self) -> A.HostStmt:
        token = self.peek()
        if token.is_name("let"):
            self.advance()
            name = self.expect_name().value
            self.expect_punct("=")
            return A.Assign(name, self.parse_expression(), token.loc)
        expr = self.parse_expression()
        if isinstance(expr, E.AssignExpr):
            if isinstance(expr.target, E.Var):
                return A.Assign(expr.target.name, expr.value, token.loc)
            return A.TargetAssign(expr.target, expr.value, token.loc)
        return A.ExprStmt(expr, token.loc)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> E.Expr:
        expr = self._parse_ternary()
        if self.at_punct("=") and isinstance(expr, (E.Var, E.Attr, E.Index)):
            loc = self.advance().loc
            return E.AssignExpr(expr, self.parse_expression(), loc)
        return expr

    def _parse_ternary(self) -> E.Expr:
        test = self._parse_or()
        if self.accept_punct("?"):
            then = self.parse_expression()
            self.expect_punct(":")
            orelse = self.parse_expression()
            return E.Cond(test, then, orelse, test.loc)
        return test

    def _parse_or(self) -> E.Expr:
        left = self._parse_and()
        while self.at_punct("||"):
            self.advance()
            left = E.BinOp("||", left, self._parse_and(), left.loc)
        return left

    def _parse_and(self) -> E.Expr:
        left = self._parse_equality()
        while self.at_punct("&&"):
            self.advance()
            left = E.BinOp("&&", left, self._parse_equality(), left.loc)
        return left

    def _parse_equality(self) -> E.Expr:
        left = self._parse_relational()
        while self.peek().kind == PUNCT and self.peek().value in ("==", "!=", "===", "!=="):
            op = self.advance().value
            left = E.BinOp(op, left, self._parse_relational(), left.loc)
        return left

    def _parse_relational(self) -> E.Expr:
        left = self._parse_additive()
        while self.peek().kind == PUNCT and self.peek().value in ("<", "<=", ">", ">="):
            op = self.advance().value
            left = E.BinOp(op, left, self._parse_additive(), left.loc)
        return left

    def _parse_additive(self) -> E.Expr:
        left = self._parse_multiplicative()
        while self.peek().kind == PUNCT and self.peek().value in ("+", "-"):
            op = self.advance().value
            left = E.BinOp(op, left, self._parse_multiplicative(), left.loc)
        return left

    def _parse_multiplicative(self) -> E.Expr:
        left = self._parse_unary()
        while self.peek().kind == PUNCT and self.peek().value in ("*", "/", "%"):
            op = self.advance().value
            left = E.BinOp(op, left, self._parse_unary(), left.loc)
        return left

    def _parse_unary(self) -> E.Expr:
        token = self.peek()
        if token.kind == PUNCT and token.value in ("!", "-", "+"):
            self.advance()
            return E.UnOp(token.value, self._parse_unary(), token.loc)
        if token.kind == PUNCT and token.value in ("++", "--"):
            self.advance()
            return E.IncDec(token.value, self._parse_unary(), token.loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> E.Expr:
        expr = self._parse_primary()
        while True:
            if self.at_punct("."):
                self.advance()
                name = self.expect_name().value
                if (
                    isinstance(expr, E.Var)
                    and name in _SIGNAL_ACCESSORS
                    and expr.name not in _NON_SIGNAL_BASES
                ):
                    expr = E.SigRef(expr.name, name, expr.loc)
                else:
                    expr = E.Attr(expr, name, expr.loc)
            elif self.at_punct("("):
                self.advance()
                args: List[E.Expr] = []
                if not self.at_punct(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                expr = E.Call(expr, args, expr.loc)
            elif self.at_punct("["):
                self.advance()
                key = self.parse_expression()
                self.expect_punct("]")
                expr = E.Index(expr, key, expr.loc)
            else:
                return expr

    def _lambda_params_ahead(self) -> Optional[int]:
        """If the upcoming ``( ... )`` is an arrow-function parameter list,
        return the offset of the token *after* the ``=>``; else ``None``."""
        if not self.at_punct("("):
            return None
        offset = 1
        depth = 1
        while depth > 0:
            token = self.peek(offset)
            if token.kind == EOF:
                return None
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
            offset += 1
        return offset if self.peek(offset).is_punct("=>") else None

    def _parse_primary(self) -> E.Expr:
        token = self.peek()
        if token.kind == NUMBER or token.kind == STRING:
            self.advance()
            return E.Lit(token.value, token.loc)
        if token.is_name("true"):
            self.advance()
            return E.Lit(True, token.loc)
        if token.is_name("false"):
            self.advance()
            return E.Lit(False, token.loc)
        if token.is_name("null"):
            self.advance()
            return E.Lit(None, token.loc)
        if token.kind == NAME:
            # `x => expr` single-parameter arrow function
            if self.at_punct("=>", offset=1):
                self.advance()
                self.advance()
                return E.Lambda([token.value], self.parse_expression(), token.loc)
            self.advance()
            return E.Var(token.value, token.loc)
        if token.is_punct("("):
            if self._lambda_params_ahead() is not None:
                self.advance()
                params: List[str] = []
                if not self.at_punct(")"):
                    while True:
                        params.append(self.expect_name().value)
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                self.expect_punct("=>")
                return E.Lambda(params, self.parse_expression(), token.loc)
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if token.is_punct("["):
            self.advance()
            items: List[E.Expr] = []
            if not self.at_punct("]"):
                while True:
                    items.append(self.parse_expression())
                    if not self.accept_punct(","):
                        break
            self.expect_punct("]")
            return E.ArrayLit(items, token.loc)
        if token.is_punct("{"):
            self.advance()
            fields: List[Tuple[Union[str, E.Expr], E.Expr]] = []
            if not self.at_punct("}"):
                while True:
                    key: Union[str, E.Expr]
                    if self.at_punct("["):
                        self.advance()
                        key = self.parse_expression()
                        self.expect_punct("]")
                    elif self.peek().kind == STRING:
                        key = self.advance().value
                    else:
                        key = self.expect_name().value
                    if self.accept_punct(":"):
                        value = self.parse_expression()
                    elif isinstance(key, str):
                        value = E.Var(key, token.loc)  # `{login}` shorthand
                    else:
                        raise ParseError("computed key requires a value", token.loc)
                    fields.append((key, value))
                    if not self.accept_punct(","):
                        break
            self.expect_punct("}")
            return E.ObjectLit(fields, token.loc)
        raise ParseError(f"expected an expression, found {token.value!r}", token.loc)


_STATEMENT_HANDLERS = {
    "nothing": Parser._stmt_nothing,
    "pause": Parser._stmt_pause,
    "yield": Parser._stmt_pause,
    "halt": Parser._stmt_halt,
    "emit": Parser._stmt_emit,
    "sustain": Parser._stmt_sustain,
    "await": Parser._stmt_await,
    "abort": Parser._stmt_abort,
    "weakabort": Parser._stmt_weakabort,
    "suspend": Parser._stmt_suspend,
    "every": Parser._stmt_every,
    "do": Parser._stmt_do,
    "fork": Parser._stmt_fork,
    "loop": Parser._stmt_loop,
    "if": Parser._stmt_if,
    "break": Parser._stmt_break,
    "let": Parser._stmt_let,
    "atom": Parser._stmt_atom,
    "hop": Parser._stmt_atom,
    "run": Parser._stmt_run,
    "async": Parser._stmt_async,
}


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def _parser_for(text: str, filename: str, modules: Optional[A.ModuleTable] = None) -> Parser:
    return Parser(tokenize(text, filename), modules)


def parse_expression(text: str, filename: str = "<expr>") -> E.Expr:
    """Parse a standalone host expression."""
    parser = _parser_for(text, filename)
    expr = parser.parse_expression()
    token = parser.peek()
    if token.kind != EOF:
        raise ParseError(f"trailing input after expression: {token.value!r}", token.loc)
    return expr


def parse_statement(text: str, filename: str = "<stmt>",
                    modules: Optional[A.ModuleTable] = None) -> A.Stmt:
    """Parse a statement sequence (no enclosing braces required)."""
    parser = _parser_for(text, filename, modules)
    body = parser._parse_statement_sequence(stop="\0")
    token = parser.peek()
    if token.kind != EOF:
        raise ParseError(f"trailing input after statement: {token.value!r}", token.loc)
    return body


def parse_module(text: str, filename: str = "<module>",
                 modules: Optional[A.ModuleTable] = None) -> A.Module:
    """Parse a single ``module ... { ... }`` definition."""
    parser = _parser_for(text, filename, modules)
    module = parser.parse_module()
    parser._skip_semis()
    token = parser.peek()
    if token.kind != EOF:
        raise ParseError(f"trailing input after module: {token.value!r}", token.loc)
    return module


def parse_program(text: str, filename: str = "<program>",
                  modules: Optional[A.ModuleTable] = None) -> A.ModuleTable:
    """Parse a sequence of module definitions into a module table.

    Later modules may ``run`` or ``implements`` earlier ones.
    """
    return _parser_for(text, filename, modules).parse_program()


def parse_interface_fragment(text: str, default_direction: str = LOCAL) -> List[SignalDecl]:
    """Parse a compact signal-declaration list: ``"in a=1, out b"``."""
    parser = _parser_for(text, "<interface>")
    decls = parser.parse_interface_fragment(default_direction)
    token = parser.peek()
    if token.kind != EOF:
        raise ParseError(f"trailing input after interface: {token.value!r}", token.loc)
    return decls
