"""Token definitions for the HipHop surface syntax."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SourceLocation

# token kinds
NAME = "NAME"
NUMBER = "NUMBER"
STRING = "STRING"
PUNCT = "PUNCT"
EOF = "EOF"

#: Reserved words.  They are lexed as NAME tokens; the parser decides
#: contextually (``count``, ``immediate`` and ``as`` are contextual and may
#: still appear as identifiers in expressions).
KEYWORDS = frozenset(
    """
    module implements in out inout var signal emit sustain nothing pause
    yield halt fork par loop if else abort weakabort suspend await every do
    count immediate break run as async kill resume atom hop let true false
    null
    """.split()
)

#: Words that can never be a statement-leading identifier label.
STATEMENT_KEYWORDS = KEYWORDS - {"count", "immediate", "as", "in", "out", "inout"}

#: Multi-character punctuation, longest first (the lexer tries in order).
PUNCTUATIONS = (
    "...",
    "===",
    "!==",
    "=>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    ".",
    "?",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
)


class Token:
    __slots__ = ("kind", "value", "loc")

    def __init__(self, kind: str, value: Any, loc: SourceLocation):
        self.kind = kind
        self.value = value
        self.loc = loc

    def is_punct(self, value: str) -> bool:
        return self.kind == PUNCT and self.value == value

    def is_name(self, value: Optional[str] = None) -> bool:
        if self.kind != NAME:
            return False
        return value is None or self.value == value

    def is_keyword(self, value: str) -> bool:
        return self.kind == NAME and self.value == value and value in KEYWORDS

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.loc})"
