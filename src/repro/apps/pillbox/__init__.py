"""The Lisinopril prescription pillbox (paper section 4.1)."""

from repro.apps.pillbox.app import (
    DEFAULT_PRESCRIPTION,
    PillboxApp,
    Prescription,
    build_pillbox_machine,
    pillbox_table,
)

__all__ = [
    "PillboxApp",
    "Prescription",
    "DEFAULT_PRESCRIPTION",
    "build_pillbox_machine",
    "pillbox_table",
]
