"""The Lisinopril pillbox (paper section 4.1), modules and driver.

The prescription, made temporally rigorous by the paper's doctor
interview:

* 1 tablet daily, preferred dose window 8PM–11PM;
* at least ``min_dose_interval`` (8 h) between doses — ``Try`` presses
  earlier raise ``TryTooCloseError``;
* at most ``max_dose_interval`` (34 h) without a dose —
  ``NoDoseSinceTooLongError`` is sustained until a dose goes through;
* the ``Try`` button alarms when the previous dose is older than 30 h
  (approaching the 34 h wall); ``Conf`` alarms when confirmation lags.

The HipHop program is the paper's listing with one addition it leaves to
"run Clock(...)": the dose-window signal is computed synchronously from
the wall-clock ``Time`` input.  Time advances by a host driver emitting
one ``Mn`` (minute) tick per simulated minute, so a month of treatment
runs in milliseconds of test time.

All user and system events are recorded in a dated log (design point 4 of
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.lang.ast import ModuleTable
from repro.runtime import ReactiveMachine
from repro.syntax import parse_program

#: Paper section 4.1.2 — the smart Button: active until pressed; after
#: ``d`` ticks without a press, raises its Alert on every further tick.
BUTTON_SOURCE = """
module Button(var d, in Tick, in B, out Active, out Alert) {
  emit Active(true); emit Alert(false);
  abort (B.now) {
    await count(d, Tick.now);
    do { emit Alert(true) } every (Tick.now)
  }
  emit Alert(false); emit Active(false)
}
"""

#: The main module, following the paper's listing.  Phases per dose cycle:
#: 1. wait for Try (alert if the wait approaches the 34h wall),
#: 2. deliver, warn if outside the window, wait for Conf (alert if late),
#: 3. refuse further Try presses for the 8h minimum interval.
LISINOPRIL_SOURCE = """
module Lisinopril(in Mn, in Try, in Conf, in Time = 0, in Reset,
                  out TryActive, out TryAlert, out ConfActive, out ConfAlert,
                  out DeliverDose, out RecordDose, out TryNotInWindowWarning,
                  out NoDoseSinceTooLongError, out TryTooCloseError,
                  out InWindow,
                  var TryDelay, var ConfDelay,
                  var MinDoseInterval, var MaxDoseInterval) {
  do {
    signal InDoseWindow;
    fork {
      // the Clock leg: derive the dose-window status each minute
      do { emit InDoseWindow(inDoseWindow(Time.nowval));
           emit InWindow(inDoseWindow(Time.nowval)) } every (Mn.now)
    } par {
      loop {
        DoseOK: fork {
          // phase 1: wait for Try, alert when last dose gets old
          run Button(d=TryDelay, Tick as Mn, B as Try,
                     Active as TryActive, Alert as TryAlert);
          // Try received: deliver, but warn if out of the dose window
          emit DeliverDose(Time.nowval);
          if (!InDoseWindow.nowval) {
            emit TryNotInWindowWarning()
          }
          // phase 2: wait for confirmation, keep alerting if late
          run Button(d=ConfDelay, Tick as Mn, B as Conf,
                     Active as ConfActive, Alert as ConfAlert);
          // confirmation received
          emit RecordDose(Time.nowval);
          break DoseOK
        } par {
          // in phases 1-2: error if too long a wait since the last dose
          await count(MaxDoseInterval - MinDoseInterval, Mn.now);
          sustain NoDoseSinceTooLongError()
        }
        // phase 3: wait out the minimum interval, refusing Try presses
        abort count(MinDoseInterval, Mn.now) {
          every (Try.now) { emit TryTooCloseError() }
        }
      }
    }
  } every (Reset.now)
}
"""

PILLBOX_PROGRAM = BUTTON_SOURCE + "\n" + LISINOPRIL_SOURCE


_PILLBOX_TABLE: Optional[ModuleTable] = None


def pillbox_table() -> ModuleTable:
    """Parsed once per process; combined with the structural compile
    cache, repeated ``PillboxApp()`` constructions are cache-hit-only."""
    global _PILLBOX_TABLE
    if _PILLBOX_TABLE is None:
        _PILLBOX_TABLE = parse_program(PILLBOX_PROGRAM)
    return _PILLBOX_TABLE


@dataclass
class Prescription:
    """Timing parameters, in minutes (the paper's hour figures by default)."""

    window_start: int = 20 * 60  # 8 PM, minutes since midnight
    window_end: int = 23 * 60  # 11 PM
    min_dose_interval: int = 8 * 60  # 8 h wall between doses
    max_dose_interval: int = 34 * 60  # 34 h maximum without a dose
    try_alarm_after: int = 30 * 60  # Try alert at 30 h without a dose
    conf_alarm_after: int = 15  # Conf alert 15 min after Try

    def in_window(self, time_minutes: int) -> bool:
        minute_of_day = time_minutes % (24 * 60)
        return self.window_start <= minute_of_day < self.window_end


DEFAULT_PRESCRIPTION = Prescription()


def build_pillbox_machine(
    prescription: Prescription = DEFAULT_PRESCRIPTION,
    table: Optional[ModuleTable] = None,
    backend: str = "auto",
) -> ReactiveMachine:
    table = table or pillbox_table()
    machine = ReactiveMachine(
        table.get("Lisinopril"),
        modules=table,
        backend=backend,
        host_globals={
            "inDoseWindow": prescription.in_window,
            # phase 1 starts min_dose_interval after the previous dose, so
            # the Button counts the *remaining* minutes to the 30h alarm
            # (same convention as the paper's MaxDoseInterval -
            # MinDoseInterval for the 34h error)
            "TryDelay": prescription.try_alarm_after - prescription.min_dose_interval,
            "ConfDelay": prescription.conf_alarm_after,
            "MinDoseInterval": prescription.min_dose_interval,
            "MaxDoseInterval": prescription.max_dose_interval,
        },
    )
    return machine


class PillboxApp:
    """The machine plus a minute clock driver and the event log.

    ``tick()`` advances one simulated minute; ``press_try`` /
    ``press_conf`` are the two GUI buttons.  Every observable output is
    logged with its wall time for later analysis (the paper's design
    point 4).
    """

    LOGGED = (
        "DeliverDose",
        "RecordDose",
        "TryNotInWindowWarning",
        "NoDoseSinceTooLongError",
        "TryTooCloseError",
        "TryAlert",
        "ConfAlert",
    )

    def __init__(
        self,
        prescription: Prescription = DEFAULT_PRESCRIPTION,
        start_minute: int = 19 * 60,  # 7 PM on day zero
        backend: str = "auto",
    ):
        self.prescription = prescription
        self.machine = build_pillbox_machine(prescription, backend=backend)
        self.time = start_minute
        self.log: List[Tuple[int, str, Any]] = []
        self.machine.react({"Time": self.time, "Mn": True})

    # -- event capture ------------------------------------------------------

    def _record(self, result) -> None:
        for name in self.LOGGED:
            if result.present(name):
                value = result[name]
                if name in ("TryAlert", "ConfAlert") and not value:
                    continue  # only log raised alerts
                self.log.append((self.time, name, value))

    def _react(self, inputs: Dict[str, Any]):
        result = self.machine.react(inputs)
        self._record(result)
        return result

    # -- driver ---------------------------------------------------------------

    def tick(self, minutes: int = 1) -> None:
        """Advance the clock by ``minutes`` one-minute reactions."""
        for _ in range(minutes):
            self.time += 1
            self._react({"Mn": True, "Time": self.time})

    def tick_hours(self, hours: float) -> None:
        self.tick(int(hours * 60))

    def press_try(self):
        return self._react({"Try": True, "Time": self.time})

    def press_conf(self):
        return self._react({"Conf": True, "Time": self.time})

    def reset(self):
        return self._react({"Reset": True, "Time": self.time})

    # -- observations -------------------------------------------------------------

    @property
    def try_active(self) -> bool:
        return bool(self.machine.TryActive.nowval)

    @property
    def conf_active(self) -> bool:
        return bool(self.machine.ConfActive.nowval)

    @property
    def try_alert(self) -> bool:
        return bool(self.machine.TryAlert.nowval)

    @property
    def conf_alert(self) -> bool:
        return bool(self.machine.ConfAlert.nowval)

    @property
    def in_window(self) -> bool:
        return self.prescription.in_window(self.time)

    def doses(self) -> List[int]:
        """Recorded (confirmed) dose times."""
        return [t for t, name, _ in self.log if name == "RecordDose"]

    def events(self, name: str) -> List[Tuple[int, Any]]:
        return [(t, value) for t, n, value in self.log if n == name]
