"""Score programming: a Python score description compiled to HipHop.

The composer describes the musical path — which groups and tanks open,
in which order, gated by how many audience selections or how many seconds
— and this module generates the HipHop score program (paper section
4.2.2): groups map to activation signals, tanks to sub-modules that
deactivate on exhaustion, sequencing to statement sequences, simultaneous
groups to ``fork/par``, and timed sections to ``abort (seconds ...)``.

The generated module follows the paper's excerpt::

    abort (seconds.nowval === 20) {
      emit ActivateCellos(true);
      await count(5, CellosIn.now);
      run Tank_Trombones(...);
      fork { run Tank_Trumpets(...) } par { run Tank_Horns(...) }
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.lang.ast import Module, ModuleTable
from repro.apps.skini.model import Group, Tank, make_patterns
from repro.syntax import parse_program

# ---------------------------------------------------------------------------
# score description AST
# ---------------------------------------------------------------------------


class Step:
    """One step of the composed musical path."""

    def to_source(self, indent: str) -> str:
        raise NotImplementedError

    def groups_used(self) -> List[str]:
        return []


@dataclass
class Activate(Step):
    """Open (or close) a group for audience selection."""

    group: str
    on: bool = True

    def to_source(self, indent: str) -> str:
        flag = "true" if self.on else "false"
        return f"{indent}emit Activate{self.group}({flag});"

    def groups_used(self) -> List[str]:
        return [self.group]


@dataclass
class AwaitSelections(Step):
    """Block until the audience has picked ``count`` patterns of a group."""

    count: int
    group: str

    def to_source(self, indent: str) -> str:
        return f"{indent}await count({self.count}, {self.group}In.now);"

    def groups_used(self) -> List[str]:
        return [self.group]


@dataclass
class RunTank(Step):
    """Play a tank through: activate it and wait until every pattern has
    been selected once."""

    tank: str

    def to_source(self, indent: str) -> str:
        return f"{indent}run Tank_{self.tank}(...);"

    def groups_used(self) -> List[str]:
        return [self.tank]


@dataclass
class Wait(Step):
    """Let ``seconds`` elapse."""

    seconds: int

    def to_source(self, indent: str) -> str:
        return f"{indent}await count({self.seconds}, second.now);"


@dataclass
class Sequence(Step):
    steps: List[Step]

    def to_source(self, indent: str) -> str:
        return "\n".join(step.to_source(indent) for step in self.steps)

    def groups_used(self) -> List[str]:
        return [g for step in self.steps for g in step.groups_used()]


@dataclass
class Fork(Step):
    """Simultaneous sub-paths (groups playing together)."""

    branches: List[Step]

    def to_source(self, indent: str) -> str:
        blocks = []
        for i, branch in enumerate(self.branches):
            keyword = "fork" if i == 0 else "par"
            blocks.append(
                f"{indent}{keyword} {{\n{branch.to_source(indent + '  ')}\n{indent}}}"
            )
        return "\n".join(blocks)

    def groups_used(self) -> List[str]:
        return [g for branch in self.branches for g in branch.groups_used()]


@dataclass
class Section(Step):
    """A hard-timed section: aborted when the wall clock passes
    ``until_seconds`` (the paper's ``abort(seconds.nowval === 20)``)."""

    until_seconds: int
    body: Step

    def to_source(self, indent: str) -> str:
        inner = self.body.to_source(indent + "  ")
        return (
            f"{indent}abort (seconds.nowval >= {self.until_seconds}) {{\n"
            f"{inner}\n{indent}}}"
        )

    def groups_used(self) -> List[str]:
        return self.body.groups_used()


@dataclass
class Score:
    """A complete composition: the ensemble and the musical path."""

    name: str
    groups: List[Group] = field(default_factory=list)
    path: Optional[Step] = None

    def group(self, name: str) -> Group:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(name)

    @property
    def tanks(self) -> List[Tank]:
        return [g for g in self.groups if isinstance(g, Tank)]


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


def _tank_module_source(tank: Tank) -> str:
    """A tank activates itself, terminates when each pattern was selected
    once (enforced by the driver), then deactivates."""
    return f"""
module Tank_{tank.name}(in {tank.input_signal}, out {tank.activate_signal}) {{
  emit {tank.activate_signal}(true);
  await count({len(tank.patterns)}, {tank.input_signal}.now);
  emit {tank.activate_signal}(false)
}}
"""


def generate_score_source(score: Score) -> str:
    """The full HipHop program text for a score (tank modules + main)."""
    if score.path is None:
        raise ValueError("score has no musical path")
    parts: List[str] = []
    for tank in score.tanks:
        parts.append(_tank_module_source(tank))

    inputs = ["in seconds = 0", "in second"]
    outputs: List[str] = []
    for group in score.groups:
        inputs.append(f"in {group.input_signal}")
        # a tank's own final deactivation can coincide with the score's
        # curtain: combine same-instant activations with logical AND so
        # deactivation wins deterministically
        outputs.append(f"out {group.activate_signal} = false combine andBool")
    interface = ", ".join(inputs + outputs)

    body = score.path.to_source("  ")
    deactivations = "\n".join(
        f"  emit {group.activate_signal}(false);" for group in score.groups
    )
    parts.append(
        f"module Score_{score.name}({interface}) {{\n"
        f"{body}\n"
        f"  // curtain: close everything at the end of the path\n"
        f"{deactivations}\n"
        f"}}\n"
    )
    return "\n".join(parts)


def generate_score_module(score: Score) -> Tuple[Module, ModuleTable]:
    """Parse the generated program; returns the main module and the table."""
    table = parse_program(generate_score_source(score))
    return table.get(f"Score_{score.name}"), table


# ---------------------------------------------------------------------------
# ready-made scores
# ---------------------------------------------------------------------------


def make_paper_score() -> Score:
    """The section-4.2.2 excerpt: 20 s section — cellos open, after five
    cello picks the trombone tank plays, then trumpets and horns together."""
    cellos = Group("Cellos", make_patterns("cello", 8))
    trombones = Tank("Trombones", make_patterns("trombone", 4))
    trumpets = Tank("Trumpets", make_patterns("trumpet", 3))
    horns = Tank("Horns", make_patterns("horn", 3))
    path = Section(
        20,
        Sequence(
            [
                Activate("Cellos"),
                AwaitSelections(5, "Cellos"),
                RunTank("Trombones"),
                Fork([RunTank("Trumpets"), RunTank("Horns")]),
            ]
        ),
    )
    return Score("Manca", [cellos, trombones, trumpets, horns], path)


def make_large_score(sections: int = 20, groups_per_section: int = 4,
                     patterns_per_group: int = 6) -> Score:
    """A synthetic classical-scale score for the paper's §5.3 size
    experiments (their largest scores reach ~10,000 nets)."""
    groups: List[Group] = []
    section_steps: List[Step] = []
    for s in range(sections):
        branches: List[Step] = []
        for g in range(groups_per_section):
            name = f"S{s}G{g}"
            if g % 2 == 0:
                group: Group = Group(name, make_patterns(f"inst{g}", patterns_per_group))
                branches.append(
                    Sequence(
                        [
                            Activate(name),
                            AwaitSelections(patterns_per_group, name),
                            Activate(name, on=False),
                        ]
                    )
                )
            else:
                group = Tank(name, make_patterns(f"inst{g}", patterns_per_group))
                branches.append(RunTank(name))
            groups.append(group)
        section_steps.append(Section((s + 1) * 30, Fork(branches)))
    return Score("Large", groups, Sequence(section_steps))
