"""Skini's musical objects: patterns, groups, tanks, and the synthesizer.

A *pattern* is a short composed music element (1–2 s).  Patterns are
offered to the audience through *groups* (each pattern selectable many
times while the group is active) and *tanks* (each pattern selectable only
once) — paper section 4.2.1.  The *synthesizer* is our DAW stand-in: it
queues selected patterns on a beat-aligned timeline, which tests and
benchmarks can inspect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Pattern:
    """A short music segment."""

    pid: str
    instrument: str
    beats: int = 2

    def __str__(self) -> str:
        return self.pid


class Group:
    """A named set of patterns, selectable repeatedly while active."""

    def __init__(self, name: str, patterns: Sequence[Pattern]):
        self.name = name
        self.patterns = list(patterns)
        self.active = False
        self.selection_count = 0

    @property
    def input_signal(self) -> str:
        return f"{self.name}In"

    @property
    def activate_signal(self) -> str:
        return f"Activate{self.name}"

    def selectable(self) -> List[Pattern]:
        return list(self.patterns) if self.active else []

    def select(self, pattern: Pattern) -> Pattern:
        if not self.active:
            raise ValueError(f"group {self.name} is not active")
        self.selection_count += 1
        return pattern

    def __repr__(self) -> str:
        state = "active" if self.active else "inactive"
        return f"Group({self.name}, {len(self.patterns)} patterns, {state})"


class Tank(Group):
    """A group whose patterns are each selectable exactly once (implemented
    in the paper as an array of one-pattern groups)."""

    def __init__(self, name: str, patterns: Sequence[Pattern]):
        super().__init__(name, patterns)
        self.remaining = list(patterns)

    def selectable(self) -> List[Pattern]:
        return list(self.remaining) if self.active else []

    def select(self, pattern: Pattern) -> Pattern:
        if pattern not in self.remaining:
            raise ValueError(f"pattern {pattern.pid} already consumed in tank {self.name}")
        self.remaining.remove(pattern)
        return super().select(pattern)

    @property
    def exhausted(self) -> bool:
        return not self.remaining

    def refill(self) -> None:
        self.remaining = list(self.patterns)

    def __repr__(self) -> str:
        return f"Tank({self.name}, {len(self.remaining)}/{len(self.patterns)} left)"


@dataclass
class QueuedPlay:
    """One synthesizer timeline entry."""

    time_s: float
    pattern: Pattern
    group: str


class Synthesizer:
    """The DAW stand-in: selected patterns are queued to play on the next
    beat boundary.  Keeps the full timeline for inspection."""

    def __init__(self, bpm: int = 120):
        self.bpm = bpm
        self.timeline: List[QueuedPlay] = []

    @property
    def beat_seconds(self) -> float:
        return 60.0 / self.bpm

    def queue(self, time_s: float, pattern: Pattern, group: str) -> QueuedPlay:
        beat = self.beat_seconds
        aligned = ((time_s // beat) + 1) * beat
        play = QueuedPlay(aligned, pattern, group)
        self.timeline.append(play)
        return play

    def played(self, group: Optional[str] = None) -> List[QueuedPlay]:
        if group is None:
            return list(self.timeline)
        return [p for p in self.timeline if p.group == group]

    def instruments(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for play in self.timeline:
            counts[play.pattern.instrument] = counts.get(play.pattern.instrument, 0) + 1
        return counts


def make_patterns(instrument: str, count: int, beats: int = 2) -> List[Pattern]:
    """Generate ``count`` patterns for one instrument."""
    return [Pattern(f"{instrument}-{i}", instrument, beats) for i in range(count)]
