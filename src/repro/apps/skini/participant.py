"""The Skini *participant*: one audience member as a reactive machine.

The paper's Skini deployment (section 4.2) runs one conductor score plus
one small synchronous program per audience member's device: the client
queues a pattern request, waits for the conductor to schedule it into a
tank, plays it, and loops.  At concert scale that is thousands of
instances of the *same* module — the motivating workload for the
structural compile cache and :class:`~repro.runtime.fleet.MachineFleet`:
the module compiles once, every participant shares the plan, and each
participant reaction touches only its own few dirty nets.

``make_audience_fleet(1000)`` is the pool used by the fleet variant of
``examples/skini_concert.py`` and by ``benchmarks/bench_fleet.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import Module
from repro.runtime.fleet import MachineFleet
from repro.runtime.recovery import FleetSupervisor
from repro.syntax import parse_module

#: One audience member.  `select` carries the pattern the participant
#: tapped; the request stays up (sustained) until the conductor grants it
#: with `grant`; the pattern then plays until `stop`, after which the
#: participant reports `done` with its running total and loops back to
#: listening.
PARTICIPANT_PROGRAM = """
module Participant(in select, in grant, in stop,
                   out request, out playing, out done = 0) {
  let played = 0;
  loop {
    await (select.now);
    abort (grant.now) {
      sustain request(select.nowval)
    }
    abort (stop.now) {
      sustain playing(grant.nowval)
    }
    atom { played = played + 1 }
    emit done(played)
  }
}
"""

_PARTICIPANT: Optional[Module] = None


def participant_module() -> Module:
    """The parsed participant module (parsed once per process; machine
    construction additionally hits the structural compile cache, so every
    participant shares one compiled circuit and plan)."""
    global _PARTICIPANT
    if _PARTICIPANT is None:
        _PARTICIPANT = parse_module(PARTICIPANT_PROGRAM)
    return _PARTICIPANT


def make_audience_fleet(size: int, backend: str = "auto", **kwargs) -> MachineFleet:
    """A fleet of ``size`` participant machines sharing one compiled plan.

    The participant plan is pure (acyclic, straight-line), so with
    ``backend="auto"`` any audience of 64+ members also gets the
    bit-parallel lockstep engine: one word evaluation per instant drives
    every quiescent member, and members touched individually (a tap, a
    grant, a snapshot) transparently fall back to their scalar path."""
    return MachineFleet(participant_module(), size=size, backend=backend, **kwargs)


def make_supervised_audience(
    size: int,
    backend: str = "auto",
    checkpoint_every: Optional[int] = 25,
    max_retries: int = 1,
    quarantine_after: int = 3,
    **kwargs,
) -> FleetSupervisor:
    """The durable concert: an audience fleet wrapped in a
    :class:`~repro.runtime.recovery.FleetSupervisor`.

    Each participant gets its own write-ahead journal and a checkpoint
    every ``checkpoint_every`` instants, so one crashing phone (or one
    poison input — quarantined after ``quarantine_after`` identical
    failures) never stalls the conductor's pulse: ``react_all`` always
    completes the instant for the healthy members, and a crashed member
    is recovered exactly — same pattern queue, same play state — from
    its snapshot + journal tail.
    """
    return FleetSupervisor(
        make_audience_fleet(size, backend=backend, **kwargs),
        checkpoint_every=checkpoint_every,
        max_retries=max_retries,
        quarantine_after=quarantine_after,
    )
