"""Skini: massively interactive music (paper section 4.2)."""

from repro.apps.skini.model import Group, Pattern, Synthesizer, Tank
from repro.apps.skini.score import (
    Activate,
    AwaitSelections,
    Fork,
    RunTank,
    Score,
    Section,
    Sequence,
    Wait,
    generate_score_module,
    make_paper_score,
    make_large_score,
)
from repro.apps.skini.participant import (
    PARTICIPANT_PROGRAM,
    make_audience_fleet,
    make_supervised_audience,
    participant_module,
)
from repro.apps.skini.performance import Audience, Performance

__all__ = [
    "Pattern",
    "Group",
    "Tank",
    "Synthesizer",
    "Score",
    "Section",
    "Sequence",
    "Fork",
    "Activate",
    "AwaitSelections",
    "RunTank",
    "Wait",
    "generate_score_module",
    "make_paper_score",
    "make_large_score",
    "Audience",
    "Performance",
    "PARTICIPANT_PROGRAM",
    "participant_module",
    "make_audience_fleet",
    "make_supervised_audience",
]
