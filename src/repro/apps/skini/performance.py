"""Live performance engine: machine + audience + synthesizer.

The paper's architecture: the HipHop score program orchestrates which
groups/tanks are open; audience smartphones select patterns from open
groups (each selection is both queued to the synthesizer by the Hop.js
layer and fed back to HipHop as the group's input signal); the clock keeps
the reactive program in sync with the beat.

Our substitution for the real concert: a seeded :class:`Audience` that
picks patterns at a configurable rate, and the
:class:`~repro.apps.skini.model.Synthesizer` timeline stub.  Everything is
deterministic under a fixed seed.
"""

from __future__ import annotations

import random
import time as _time
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime import ReactiveMachine
from repro.apps.skini.model import Group, Pattern, Synthesizer
from repro.apps.skini.score import Score, generate_score_module


class Audience:
    """A simulated audience: each simulated second, every listener picks a
    pattern from some open group with probability ``eagerness``."""

    def __init__(self, size: int = 20, eagerness: float = 0.25, seed: int = 2020):
        self.size = size
        self.eagerness = eagerness
        self.random = random.Random(seed)
        self.selections = 0

    def pick(self, open_groups: List[Group]) -> List[Tuple[Group, Pattern]]:
        """Selections made during one second of the show."""
        picks: List[Tuple[Group, Pattern]] = []
        candidates = [g for g in open_groups if g.selectable()]
        if not candidates:
            return picks
        for _listener in range(self.size):
            if self.random.random() >= self.eagerness:
                continue
            group = self.random.choice(candidates)
            selectable = group.selectable()
            if not selectable:
                continue
            pattern = self.random.choice(selectable)
            picks.append((group, pattern))
            self.selections += 1
        return picks


class Performance:
    """Runs a score against an audience, second by second.

    ``step()`` advances one simulated second: the clock reaction fires,
    audience selections are applied (each one queues music *and* reacts
    into the score program), and group activation outputs are folded into
    the model objects.
    """

    def __init__(
        self,
        score: Score,
        audience: Optional[Audience] = None,
        bpm: int = 120,
        backend: str = "auto",
    ):
        self.score = score
        self.audience = audience or Audience()
        self.synth = Synthesizer(bpm)
        module, table = generate_score_module(score)
        self.machine = ReactiveMachine(
            module,
            modules=table,
            host_globals={"andBool": lambda a, b: bool(a and b)},
            backend=backend,
        )
        self.seconds = 0
        self.reaction_times_ms: List[float] = []
        self._groups_by_activate = {g.activate_signal: g for g in score.groups}
        self._react({})

    # -- plumbing -----------------------------------------------------------

    def _react(self, inputs: Dict[str, Any]) -> None:
        start = _time.perf_counter()
        result = self.machine.react(inputs)
        self.reaction_times_ms.append((_time.perf_counter() - start) * 1000.0)
        for name, value in result.items():
            group = self._groups_by_activate.get(name)
            if group is not None:
                group.active = bool(value)

    # -- the show -------------------------------------------------------------

    def open_groups(self) -> List[Group]:
        return [g for g in self.score.groups if g.active]

    def step(self) -> None:
        """One simulated second of the performance."""
        self.seconds += 1
        self._react({"seconds": self.seconds, "second": True})
        for group, pattern in self.audience.pick(self.open_groups()):
            # two phones may race for the same tank pattern within the
            # second; the server honours the first request only
            if not group.active or pattern not in group.selectable():
                continue
            group.select(pattern)
            self.synth.queue(float(self.seconds), pattern, group.name)
            self._react({group.input_signal: pattern.pid})

    def run(self, seconds: int) -> "Performance":
        for _ in range(seconds):
            if self.machine.terminated:
                break
            self.step()
        return self

    # -- observations ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.machine.terminated

    def max_reaction_ms(self) -> float:
        return max(self.reaction_times_ms) if self.reaction_times_ms else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "seconds": self.seconds,
            "selections": self.audience.selections,
            "plays": len(self.synth.timeline),
            "instruments": self.synth.instruments(),
            "max_reaction_ms": round(self.max_reaction_ms(), 3),
            "nets": self.machine.stats()["nets"],
            "finished": self.finished,
        }
