"""The JavaScript-style login implementation (paper section 2.1).

A faithful Python transcription of the paper's register-and-callback
version: global state variables (``R``-prefixed, as in the paper) mutated
from event handlers, with manual cross-component calls (``authenticate``
invokes ``logout`` itself, a request counter detects stale replies, timers
are cleared by hand).

This is the *baseline* the paper argues against; we keep it runnable so
the test suite can check observational equivalence with the HipHop version
(experiment E7) and the benchmark can quantify the v1 → v2 reengineering
cost.

``CallbackLoginV2`` adds the section-3 quarantine.  Note how many methods
it has to override — in the HipHop version the original modules are reused
unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.apps.login.hiphop import MAX_SESSION_TIME


class CallbackLogin:
    """Version 1: the paper's six registers and four functions."""

    #: names of the components (methods) of the v1 implementation; v2
    #: reports which of these it had to modify (experiment E7)
    COMPONENTS = ("nameKeypress", "passwdKeypress", "authenticate", "startSession", "logout")

    def __init__(self, loop: Any, auth_service: Any, max_session_time: int = MAX_SESSION_TIME):
        self.loop = loop
        self.auth_service = auth_service
        self.max_session_time = max_session_time
        # the paper's registers
        self.Rname = ""
        self.Rpasswd = ""
        self.RenableLogin = False
        self.RconnState = "disconn"
        self.Rtime = 0
        self.Rintv: Any = False
        self.Rconn = 0
        #: GUI update hook (the paper's update()); also used by the tests
        self.listeners: List[Callable[[str, Any], None]] = []

    # -- observation ------------------------------------------------------

    def _update(self, what: str, value: Any) -> None:
        for listener in self.listeners:
            listener(what, value)

    def _set_conn_state(self, state: str) -> None:
        self.RconnState = state
        self._update("connState", state)

    def _set_enable_login(self, enabled: bool) -> None:
        self.RenableLogin = enabled
        self._update("enableLogin", enabled)

    # -- component 1: identity handling -----------------------------------

    def enableLoginButton(self) -> bool:
        return len(self.Rname) >= 2 and len(self.Rpasswd) >= 2

    def nameKeypress(self, value: str) -> None:
        self.Rname = value
        self._set_enable_login(self.enableLoginButton())

    def passwdKeypress(self, value: str) -> None:
        self.Rpasswd = value
        self._set_enable_login(self.enableLoginButton())

    # -- component 2: authentication ---------------------------------------

    def authenticate(self) -> None:
        conn = self.Rconn = self.Rconn + 1
        # the paper's JS calls logout() here purely for cleanup; the state
        # is immediately overwritten with "connecting", so no GUI update
        # for the transient disconnection (matching the HipHop version,
        # where the killed Session never reaches its final emit)
        self._quiet_logout()
        self._set_conn_state("connecting")

        def reply(granted: bool) -> None:
            # stale replies (another login started since) are dropped by
            # hand, using the request counter — the bookkeeping HipHop's
            # preemption makes unnecessary
            if granted and conn == self.Rconn:
                self.startSession()
            elif conn == self.Rconn:
                self._set_conn_state("error")

        self.auth_service(self.Rname, self.Rpasswd).post().then(reply)

    # -- component 3: sessions ----------------------------------------------

    def startSession(self) -> None:
        self._set_conn_state("connected")
        self.Rtime = 0

        def tick() -> None:
            self.Rtime += 1
            if self.Rtime > self.max_session_time:
                self.logout()
            self._update("time", self.Rtime)

        self.Rintv = self.loop.set_interval(tick, 1000)
        self._update("time", self.Rtime)

    def logout(self) -> None:
        was_connected = self.RconnState == "connected"
        if was_connected:
            self._set_conn_state("disconnected")
        else:
            self.RconnState = "disconnected"
        self._clear_session_timer()

    def _quiet_logout(self) -> None:
        self.RconnState = "disconnected"
        self._clear_session_timer()

    def _clear_session_timer(self) -> None:
        if self.Rintv:
            self.loop.clear_interval(self.Rintv)
            self.Rintv = False

    # -- GUI entry points -----------------------------------------------------

    def click_login(self) -> None:
        if self.RenableLogin:
            self.authenticate()

    def click_logout(self) -> None:
        self.logout()


class CallbackLoginV2(CallbackLogin):
    """Version 2 (quarantine): the reengineering the paper describes.

    Almost every v1 component needs modification: ``authenticate`` must
    count failures and honour the quarantine, both keypress handlers must
    disable login while quarantined, and new registers plus a quarantine
    timer are added.  ``MODIFIED_COMPONENTS`` records the damage for
    experiment E7.
    """

    MODIFIED_COMPONENTS = ("nameKeypress", "passwdKeypress", "authenticate")
    NEW_COMPONENTS = ("enterQuarantine", "leaveQuarantine")

    def __init__(
        self,
        loop: Any,
        auth_service: Any,
        max_session_time: int = MAX_SESSION_TIME,
        max_attempts: int = 3,
        quarantine_seconds: int = 5,
    ):
        super().__init__(loop, auth_service, max_session_time)
        self.max_attempts = max_attempts
        self.quarantine_seconds = quarantine_seconds
        self.Rfailures = 0
        self.Rquarantine = False
        self.Rqintv: Any = False

    # modified: keypresses must not enable login during quarantine
    def nameKeypress(self, value: str) -> None:
        self.Rname = value
        self._set_enable_login(not self.Rquarantine and self.enableLoginButton())

    def passwdKeypress(self, value: str) -> None:
        self.Rpasswd = value
        self._set_enable_login(not self.Rquarantine and self.enableLoginButton())

    # modified: count failures, ignore quarantined requests and replies
    def authenticate(self) -> None:
        if self.Rquarantine:
            return
        conn = self.Rconn = self.Rconn + 1
        self.logout()
        self._set_conn_state("connecting")

        def reply(granted: bool) -> None:
            if conn != self.Rconn or self.Rquarantine:
                return
            if granted:
                self.Rfailures = 0
                self.startSession()
            else:
                self.Rfailures += 1
                self._set_conn_state("error")
                if self.Rfailures >= self.max_attempts:
                    self.enterQuarantine()

        self.auth_service(self.Rname, self.Rpasswd).post().then(reply)

    # new components
    def enterQuarantine(self) -> None:
        self.Rquarantine = True
        self.Rfailures = 0
        self._set_conn_state("quarantine")
        self._set_enable_login(False)
        elapsed = {"t": 0}

        def tick() -> None:
            elapsed["t"] += 1
            if elapsed["t"] > self.quarantine_seconds:
                self.leaveQuarantine()

        self.Rqintv = self.loop.set_interval(tick, 1000)

    def leaveQuarantine(self) -> None:
        if self.Rqintv:
            self.loop.clear_interval(self.Rqintv)
            self.Rqintv = False
        self.Rquarantine = False
        self._set_conn_state("disconnected")
        self._set_enable_login(self.enableLoginButton())
