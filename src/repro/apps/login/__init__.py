"""The login panel of paper sections 2 and 3.

Two implementations of the same specification:

* :mod:`repro.apps.login.hiphop` — the HipHop version (modules Identity,
  Authenticate, Session, Main; and the v2 evolution Freeze + MainV2 that
  reuses Main *unchanged*);
* :mod:`repro.apps.login.baseline` — the register-and-callback JavaScript
  style version of section 2.1 (and its v2, which had to modify almost
  every component — the paper's modularity argument, our experiment E7).

:mod:`repro.apps.login.gui` wires either implementation to the virtual DOM
as in section 2.4.
"""

from repro.apps.login.hiphop import (
    MAX_SESSION_TIME,
    build_login_machine,
    build_login_v2_machine,
    build_resilient_login_machine,
    login_table,
)
from repro.apps.login.baseline import CallbackLogin, CallbackLoginV2

__all__ = [
    "build_login_machine",
    "build_login_v2_machine",
    "build_resilient_login_machine",
    "login_table",
    "CallbackLogin",
    "CallbackLoginV2",
    "MAX_SESSION_TIME",
]
