"""The login web page of paper section 2.4, over the virtual DOM.

Builds the same widget tree the paper's Hop.js service generates: two
input boxes feeding ``name``/``passwd``, a login button whose enabledness
tracks ``enableLogin``, a logout button, a connection-status react node and
a session-time react node.
"""

from __future__ import annotations

from typing import Any

from repro.dom import Document


class LoginPage:
    """The assembled page; widgets are exposed as attributes for tests."""

    def __init__(self, machine: Any):
        self.machine = machine
        doc = self.doc = Document(machine)

        self.name_input = doc.input(
            id="name", onkeyup=lambda ev: machine.react({"name": ev.value})
        )
        self.passwd_input = doc.input(
            id="passwd", onkeyup=lambda ev: machine.react({"passwd": ev.value})
        )
        self.login_button = doc.button(
            "login", id="login", onclick=lambda ev: machine.react({"login": True})
        )
        self.login_button.bind_enabled(lambda: bool(machine.enableLogin.nowval))
        self.status = doc.react_node(lambda: f"status={machine.connState.nowval}")
        self.logout_button = doc.button(
            "logout", id="logout", onclick=lambda ev: machine.react({"logout": True})
        )
        self.logout_button.bind_class(lambda: machine.connState.nowval)
        timebox = doc.div(id="timebox")
        timebox.bind_class(lambda: machine.connState.nowval)
        timebox.append("time: ")
        self.time = doc.react_node(lambda: machine.time.nowval, parent=timebox)

    # -- user gestures ------------------------------------------------------

    def type_name(self, text: str) -> None:
        self.name_input.keyup(text)

    def type_passwd(self, text: str) -> None:
        self.passwd_input.keyup(text)

    def click_login(self) -> None:
        self.login_button.click()

    def click_logout(self) -> None:
        self.logout_button.click()

    def render(self) -> str:
        return self.doc.render()


def build_login_page(machine: Any) -> LoginPage:
    return LoginPage(machine)
