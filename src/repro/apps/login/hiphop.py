"""The HipHop login (paper sections 2.2 and 3), in surface syntax.

The module sources below follow the paper's listings line for line
(modulo our concrete syntax).  The key property demonstrated in section 3
is reproduced exactly: ``MainV2`` *runs the unmodified* ``Main`` and adds
the quarantine behaviour purely compositionally — ``Freeze`` listens to
``connected`` and raises ``freeze`` / ``restart``, and a ``weakabort``
(strong abort would be a causality error, as the paper explains) wraps
``Main``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.lang.ast import ModuleTable
from repro.runtime import ReactiveMachine
from repro.stdlib import TIMER_SOURCE
from repro.syntax import parse_program

#: Seconds before a session is forcibly logged out (paper section 2.1).
MAX_SESSION_TIME = 30

#: Paper section 2.2.3 — enable login when both fields have >= 2 chars.
IDENTITY_SOURCE = """
module Identity(in name, in passwd, out enableLogin) {
  do {
    emit enableLogin(name.nowval.length >= 2 && passwd.nowval.length >= 2)
  } every (name.now || passwd.now)
}
"""

#: Paper section 2.2.4 — authenticate against the remote service; the
#: async is killed (and the pending reply discarded) on a new login.
AUTHENTICATE_SOURCE = """
module Authenticate(in name, in passwd, out connState, out connected) {
  emit connState("connecting");
  async connected {
    authenticateSvc(name.nowval, passwd.nowval).post().then(v => this.notify(v))
  }
}
"""

#: Paper section 2.2.5 — a session runs a Timer until logout or timeout.
SESSION_SOURCE = """
module Session(connState, time, logout) {
  emit connState("connected");
  abort (logout.now || time.nowval > MAX_SESSION_TIME) {
    run Timer(...)
  }
  emit connState("disconnected")
}
"""

#: Paper section 2.2.2 — the main orchestration.
MAIN_SOURCE = """
module Main(in name = "", in passwd = "", in login, in logout,
            out enableLogin, out connState = "disconn",
            inout time = 0, inout connected) {
  fork {
    run Identity(...)
  } par {
    every (login.now) {
      run Authenticate(...);
      if (connected.nowval) {
        run Session(...)
      } else {
        emit connState("error")
      }
    }
  }
}
"""

#: Paper section 3 — quarantine watchdog.  `sig` counts authentication
#: completions; `attempts` consecutive ones without a successful login
#: (which resets the loop) freeze the system for `max` seconds.
FREEZE_SOURCE = """
module Freeze(var max, var attempts, sig, tmo, freeze, restart) {
  do {
    await count(attempts, sig.now);
    emit freeze();
    abort (tmo.nowval > max) {
      run Timer(tmo as time, ...)
    }
    emit restart()
  } every (sig.now && sig.nowval)
}
"""

#: Paper section 3 — version 2.0 reusing Main unchanged.  At the freeze
#: instant both Main (weakly aborted, so it still runs) and the quarantine
#: branch emit connState; the declared combine function resolves the
#: collision deterministically in favour of "quarantine".
MAIN_V2_SOURCE = """
module MainV2(tmo, out connState = "disconn" combine statePriority)
    implements Main {
  signal freeze, restart;
  fork {
    loop {
      weakabort (freeze.now) { run Main(...) }
      emit connState("quarantine");
      emit enableLogin(false);
      await restart.now;
      emit connState("disconnected")
    }
  } par {
    run Freeze(max=5, attempts=3, sig as connected, ...)
  }
}
"""

#: The fault-tolerant Authenticate: the same call shape, but the post is
#: wrapped in a host-side retry combinator (``authRetry``, see
#: :func:`build_resilient_login_machine`), and a rejected request —
#: retries exhausted, timeout, outage — lands on the ``catch`` branch and
#: degrades to a denial instead of crashing the reaction.  Preemption
#: still works unchanged: killing the async discards the whole retry
#: chain's eventual settlement (stale generation).
AUTHENTICATE_RETRY_SOURCE = """
module AuthenticateR(in name, in passwd, out connState, out connected) {
  emit connState("connecting");
  async connected {
    authRetry(() => authenticateSvc(name.nowval, passwd.nowval).post())
      .then(v => this.notify(v))
      .catch(e => this.notify(false))
  }
}
"""

#: ``Main`` with the fault-tolerant authenticator swapped in — the only
#: textual difference from MAIN_SOURCE is `run AuthenticateR(...)`.
MAIN_RESILIENT_SOURCE = """
module MainR(in name = "", in passwd = "", in login, in logout,
            out enableLogin, out connState = "disconn",
            inout time = 0, inout connected) {
  fork {
    run Identity(...)
  } par {
    every (login.now) {
      run AuthenticateR(...);
      if (connected.nowval) {
        run Session(...)
      } else {
        emit connState("error")
      }
    }
  }
}
"""

LOGIN_PROGRAM = "\n".join(
    [
        TIMER_SOURCE,
        IDENTITY_SOURCE,
        AUTHENTICATE_SOURCE,
        SESSION_SOURCE,
        MAIN_SOURCE,
        FREEZE_SOURCE,
        MAIN_V2_SOURCE,
        AUTHENTICATE_RETRY_SOURCE,
        MAIN_RESILIENT_SOURCE,
    ]
)


_LOGIN_TABLE: Optional[ModuleTable] = None


def login_table() -> ModuleTable:
    """Parse the full login program (v1 + v2 modules), once per process;
    with the structural compile cache this makes repeated
    :func:`build_login_machine` calls cache-hit-only."""
    global _LOGIN_TABLE
    if _LOGIN_TABLE is None:
        _LOGIN_TABLE = parse_program(LOGIN_PROGRAM)
    return _LOGIN_TABLE


def state_priority(old: str, new: str) -> str:
    """Combine for same-instant connState emissions: quarantine dominates
    (order-independent, so microscheduling order cannot leak through)."""
    if old == "quarantine" or new == "quarantine":
        return "quarantine"
    return new


def _host_globals(loop: Any, auth_service: Any, max_session_time: int) -> Dict[str, Any]:
    globals_ = dict(loop.bindings())
    globals_["authenticateSvc"] = auth_service
    globals_["MAX_SESSION_TIME"] = max_session_time
    globals_["statePriority"] = state_priority
    return globals_


def build_login_machine(
    loop: Any,
    auth_service: Any,
    max_session_time: int = MAX_SESSION_TIME,
    table: Optional[ModuleTable] = None,
    backend: str = "auto",
) -> ReactiveMachine:
    """Compile ``Main`` (v1) into a machine wired to the host loop and the
    (simulated) authentication service."""
    table = table or login_table()
    machine = ReactiveMachine(
        table.get("Main"),
        modules=table,
        host_globals=_host_globals(loop, auth_service, max_session_time),
        backend=backend,
    )
    machine.attach_loop(loop)
    return machine


def build_login_v2_machine(
    loop: Any,
    auth_service: Any,
    max_session_time: int = MAX_SESSION_TIME,
    table: Optional[ModuleTable] = None,
    backend: str = "auto",
) -> ReactiveMachine:
    """Compile ``MainV2`` (quarantine) — Main is reused unmodified."""
    table = table or login_table()
    machine = ReactiveMachine(
        table.get("MainV2"),
        modules=table,
        host_globals=_host_globals(loop, auth_service, max_session_time),
        backend=backend,
    )
    machine.attach_loop(loop)
    return machine


def build_resilient_login_machine(
    loop: Any,
    auth_service: Any,
    max_session_time: int = MAX_SESSION_TIME,
    table: Optional[ModuleTable] = None,
    retry_policy: Optional[Any] = None,
    timeout_ms: Optional[float] = None,
) -> ReactiveMachine:
    """Compile ``MainR``: ``Main`` with authentication wrapped in
    ``with_retry`` (exponential backoff on the host loop, per-attempt
    ``timeout_ms``), so transient outages and hung requests degrade to a
    denied login instead of a stuck "connecting" state."""
    from repro.host.resilience import RetryPolicy, with_retry

    table = table or login_table()
    policy = retry_policy or RetryPolicy(max_attempts=4, base_delay_ms=200.0)
    globals_ = _host_globals(loop, auth_service, max_session_time)
    globals_["authRetry"] = lambda op: with_retry(loop, op, policy, timeout_ms=timeout_ms)
    machine = ReactiveMachine(
        table.get("MainR"),
        modules=table,
        host_globals=globals_,
    )
    machine.attach_loop(loop)
    return machine
