"""The paper's three applications: login panel, medical pillbox, Skini."""
