"""Exception hierarchy for hiphop-py.

Every error raised by the library derives from :class:`HipHopError` so that
client code can catch library failures with a single handler.  The hierarchy
mirrors the paper's three phases: parse-time errors, compile-time errors, and
run-time errors (most importantly :class:`CausalityError`, the synchronous
deadlock detection described in section 5.2 of the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence


class HipHopError(Exception):
    """Base class for all hiphop-py errors."""


class SourceLocation:
    """A position in a surface-syntax source text.

    Attributes are 1-based, matching common editor conventions.
    """

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str = "<hiphop>", line: int = 1, column: int = 1):
        self.filename = filename
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and self.filename == other.filename
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))


class ParseError(HipHopError):
    """Raised by the lexer or parser on malformed surface syntax."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class ExpansionError(HipHopError):
    """Raised while lowering surface statements to the kernel language."""


class LinkError(HipHopError):
    """Raised while inlining a ``run`` statement (unknown module, bad
    signal binding, arity mismatch on ``var`` parameters, ...)."""


class ValidationError(HipHopError):
    """Raised by static validation (unknown signals, unbound ``break``
    labels, instantaneous loops, ...)."""


class CompileError(HipHopError):
    """Raised during circuit translation for programs the compiler cannot
    implement (should be rare: validation catches most problems first)."""


class CausalityError(HipHopError):
    """A synchronous deadlock: the constructive fixpoint left some nets
    undefined.  The paper (section 5.2) requires these to be *detected and
    reported*, never silently mis-executed.

    :param nets: human-readable descriptions of the unresolved nets.
    """

    def __init__(self, message: str, nets: Sequence[str] = ()):
        self.nets = list(nets)
        if self.nets:
            message = message + "\n  unresolved: " + ", ".join(self.nets)
        super().__init__(message)


class SignalError(HipHopError):
    """Bad signal usage detected at run time (e.g. emitting an input
    signal from inside the program, or reading an undeclared signal)."""


class MultipleEmitError(SignalError):
    """A valued signal without a combine function was emitted more than
    once in a single reaction; the result would be nondeterministic."""


class MachineError(HipHopError):
    """Reactive-machine protocol violations (reacting re-entrantly,
    providing unknown input signal names, ...)."""


class SnapshotError(MachineError):
    """A machine snapshot could not be taken or restored: snapshot
    requested mid-reaction, malformed payload, or a compile-fingerprint
    mismatch (restoring onto a structurally different program)."""


class MigrationError(SnapshotError):
    """A snapshot could not be migrated across program versions: the
    descriptor does not match the snapshot's fingerprint, or the payload
    shape disagrees with the descriptor that claims to describe it."""


class OverloadError(MachineError):
    """A bounded :class:`~repro.runtime.ingress.Mailbox` refused an input
    under its ``reject`` policy (or an admission controller refused it at
    the fleet boundary).  The refusal is *recorded* in the mailbox stats
    before this is raised — overload shedding is always an explicit,
    observable policy decision, never a silent drop.

    :param inputs: the refused input map (``None`` when not applicable).
    :param pending: how many input maps were already queued.
    """

    def __init__(self, message: str, inputs: Optional[dict] = None,
                 pending: int = 0):
        self.inputs = inputs
        self.pending = pending
        super().__init__(message)


class ReactionBudgetExceeded(MachineError):
    """An instant ran past its reaction deadline: the net-evaluation
    budget threaded through :meth:`ReactiveMachine.react` was exhausted
    before the reaction (including any deferred sub-instants it queued)
    stabilized.

    This is a *recoverable* abort: registers are only latched after a
    successful fixpoint, so a :class:`~repro.runtime.recovery.MachineSupervisor`
    rolls the aborted instant back to its pre-instant boundary via the
    ordinary checkpoint/replay path.

    :param budget: the configured budget, in net evaluations.
    :param evaluated: how many evaluations had been spent when the
        deadline fired.
    """

    def __init__(self, message: str, budget: Optional[int] = None,
                 evaluated: Optional[int] = None):
        self.budget = budget
        self.evaluated = evaluated
        super().__init__(message)


class ShardError(MachineError):
    """Multi-process shard protocol violations: a worker refused a
    command, an artifact could not be hydrated, or a member was addressed
    on a shard that does not host it."""


class WorkerDied(ShardError):
    """A shard worker process died (SIGKILL, OOM, segfault) or missed its
    reaction deadline.  The :class:`~repro.runtime.shard.ShardManager`
    raises this *after* re-placing the dead shard's members onto
    surviving workers, so by the time a caller sees it the fleet is whole
    again — the exception reports the failure, it does not leave one.

    :param worker_id: the dead worker's id.
    :param recovered: global member ids re-placed onto survivors.
    """

    def __init__(self, message: str, worker_id: Optional[int] = None,
                 recovered: Sequence[int] = ()):
        self.worker_id = worker_id
        self.recovered = list(recovered)
        super().__init__(message)


class FleetReactionError(MachineError):
    """One or more fleet members failed during a batch instant.

    The batch is *completed* for every healthy member before this is
    raised, so the fleet is never left half-advanced within one logical
    instant.

    :param completed: indices of the members whose reaction succeeded.
    :param failures: mapping of member index to the exception it raised.
    :param results: per-member results in member order (``None`` at the
        failed indices); a dict for ``react_each`` batches.
    """

    def __init__(self, message: str, completed: Sequence[int] = (),
                 failures: Optional[dict] = None, results: Optional[object] = None):
        self.completed = list(completed)
        self.failures = dict(failures or {})
        self.results = results
        super().__init__(message)


class CrashError(HipHopError):
    """An injected crash from the chaos harness
    (:class:`repro.host.MachineCrasher`): the process hosting a reactive
    machine is pretended dead, either mid-instant or between instants."""


class InstantaneousLoopError(ValidationError):
    """A ``loop`` body may terminate in the same instant it starts, which
    would make the reaction diverge.  Rejected statically, as in Esterel."""


# ---------------------------------------------------------------------------
# The asynchronous boundary (host services, supervision combinators)
# ---------------------------------------------------------------------------


class AsyncError(HipHopError):
    """Base class for failures crossing the asynchronous boundary: remote
    services rejecting, timing out, hanging, or being shielded by a
    supervision combinator.  These are *values* flowing through promise
    rejection paths, not control-flow exceptions inside a reaction."""


class ServiceFailure(AsyncError):
    """A simulated remote service rejected the request (the generic
    injected-fault rejection of :class:`repro.host.FlakyService`)."""


class ServiceUnavailable(ServiceFailure):
    """The request arrived during a configured outage window."""


class ServiceTimeout(AsyncError):
    """No reply arrived within the configured timeout; the late reply (if
    any) is discarded by the settle-once promise discipline."""


class CircuitOpenError(AsyncError):
    """A :class:`repro.host.CircuitBreaker` rejected the call without
    attempting it because the circuit is open (or saturated half-open)."""


class RetryExhaustedError(AsyncError):
    """``with_retry`` gave up: every attempt rejected.

    :param attempts: number of attempts made.
    :param errors: the per-attempt rejection reasons, oldest first.
    """

    def __init__(self, message: str, attempts: int = 0, errors: Sequence[BaseException] = ()):
        self.attempts = attempts
        self.errors = list(errors)
        super().__init__(message)
