"""hiphop-py: a Python reproduction of HipHop.js (Berry & Serrano, PLDI 2020).

Synchronous reactive programming for Python: Esterel-style concurrency,
signals and preemption, compiled to augmented boolean circuits and executed
atomically by a reactive machine.

Quickstart::

    from repro import ReactiveMachine, parse_module

    ABRO = parse_module('''
        module ABRO(in A, in B, in R, out O) {
          do {
            fork { await A.now } par { await B.now }
            emit O
          } every (R.now)
        }
    ''')
    machine = ReactiveMachine(ABRO)
    machine.react({"A": True})
    assert machine.react({"B": True}).present("O")
"""

from repro.errors import (
    CausalityError,
    CompileError,
    CrashError,
    FleetReactionError,
    HipHopError,
    LinkError,
    MachineError,
    MultipleEmitError,
    OverloadError,
    ParseError,
    ReactionBudgetExceeded,
    ShardError,
    SignalError,
    SnapshotError,
    ValidationError,
    WorkerDied,
)
from repro.lang import ast, dsl, expr
from repro.lang.ast import Module, ModuleTable
from repro.lang.signals import SignalDecl, VarDecl
from repro.compiler import (
    CompileOptions,
    clear_compile_cache,
    compile_cache_stats,
    compile_cached,
    compile_module,
)
from repro.runtime import (
    FileJournal,
    FleetIngress,
    FleetSupervisor,
    Gateway,
    GatewayClient,
    MachineFleet,
    MachineSupervisor,
    Mailbox,
    MemoryJournal,
    ReactionResult,
    ReactiveMachine,
    ShardManager,
    TokenBucket,
    TornJournalWarning,
)
from repro.syntax import parse_expression, parse_module, parse_program, parse_statement

__version__ = "1.0.0"

__all__ = [
    "ReactiveMachine",
    "ReactionResult",
    "MachineFleet",
    "FleetIngress",
    "Gateway",
    "GatewayClient",
    "Mailbox",
    "TokenBucket",
    "MachineSupervisor",
    "FleetSupervisor",
    "ShardManager",
    "MemoryJournal",
    "FileJournal",
    "TornJournalWarning",
    "Module",
    "ModuleTable",
    "SignalDecl",
    "VarDecl",
    "compile_module",
    "compile_cached",
    "compile_cache_stats",
    "clear_compile_cache",
    "CompileOptions",
    "parse_module",
    "parse_program",
    "parse_statement",
    "parse_expression",
    "dsl",
    "ast",
    "expr",
    "HipHopError",
    "ParseError",
    "ValidationError",
    "LinkError",
    "CompileError",
    "CausalityError",
    "SignalError",
    "MultipleEmitError",
    "MachineError",
    "SnapshotError",
    "FleetReactionError",
    "CrashError",
    "OverloadError",
    "ReactionBudgetExceeded",
    "ShardError",
    "WorkerDied",
    "__version__",
]
