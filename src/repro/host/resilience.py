"""Supervision combinators for the asynchronous boundary.

The paper's ``async … kill …`` statement gives HipHop programs *temporal*
control over asynchronous work (preempt it, race it against signals), but
the host side still needs the classic supervision toolkit: timeouts,
retries with backoff, and circuit breakers.  These combinators wrap any
*promise-like* object — anything with ``.then(fn)`` and (optionally)
``.catch(fn)``, such as :class:`repro.host.ServiceResponse` — and
schedule exclusively on the host loop's timers, so under
:class:`repro.host.SimulatedLoop` every retry schedule and breaker
transition is deterministic and replayable.

All rejection reasons are :class:`repro.errors.AsyncError` subclasses;
nothing here raises across the loop — failures stay values on the
rejection path, ready to be turned into HipHop signals (see
:mod:`repro.stdlib.resilience`).
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import CircuitOpenError, RetryExhaustedError, ServiceTimeout
from repro.host.services import ServiceResponse


def loop_now_ms(loop: Any) -> float:
    """The loop's clock in milliseconds; wall clock when the loop has no
    ``now_ms`` (both our loops do — this is a fallback for foreign loops)."""
    now = getattr(loop, "now_ms", None)
    return float(now) if now is not None else time.monotonic() * 1000.0


def _chain(promise: Any, on_value: Callable[[Any], None], on_error: Callable[[Any], None]) -> None:
    promise.then(on_value)
    catch = getattr(promise, "catch", None)
    if catch is not None:
        catch(on_error)


def with_timeout(loop: Any, promise: Any, timeout_ms: float) -> ServiceResponse:
    """A response that mirrors ``promise`` but rejects with
    :class:`ServiceTimeout` if it has not settled within ``timeout_ms``.
    The underlying promise is not cancelled; its late settlement is simply
    discarded (settle-once)."""
    guarded = ServiceResponse(loop)
    handle = loop.set_timeout(
        lambda: guarded.reject(ServiceTimeout(f"no reply within {timeout_ms:g} ms")),
        timeout_ms,
    )

    def settle(settle_fn: Callable[[Any], None]) -> Callable[[Any], None]:
        def deliver(payload: Any) -> None:
            handle.cancel()
            settle_fn(payload)

        return deliver

    _chain(promise, settle(guarded.resolve), settle(guarded.reject))
    return guarded


class RetryPolicy:
    """Exponential backoff with optional jitter.

    Delay before attempt ``n+1`` is
    ``min(base * factor**(n-1), max_delay) + uniform(0, jitter)``, drawn
    from the injected RNG — seed it (or share the loop's seeded RNG) for
    deterministic schedules under :class:`SimulatedLoop`.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_ms: float = 100.0,
        factor: float = 2.0,
        max_delay_ms: float = 10_000.0,
        jitter_ms: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay_ms = base_delay_ms
        self.factor = factor
        self.max_delay_ms = max_delay_ms
        self.jitter_ms = jitter_ms
        self.rng = rng if rng is not None else random.Random(0)

    def delay_ms(self, attempt: int) -> float:
        """Backoff delay after the ``attempt``-th failure (1-based)."""
        delay = min(self.base_delay_ms * self.factor ** (attempt - 1), self.max_delay_ms)
        if self.jitter_ms:
            delay += self.rng.uniform(0.0, self.jitter_ms)
        return delay


def with_retry(
    loop: Any,
    operation: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    timeout_ms: Optional[float] = None,
) -> ServiceResponse:
    """Run ``operation()`` (returning a promise-like) until it resolves,
    retrying rejected attempts on the policy's backoff schedule.

    ``timeout_ms`` wraps each attempt in :func:`with_timeout`, so hung
    requests count as failures instead of stalling the retry loop.  After
    ``policy.max_attempts`` rejections the result rejects with
    :class:`RetryExhaustedError` carrying the per-attempt errors.
    """
    policy = policy or RetryPolicy()
    result = ServiceResponse(loop)
    errors: List[BaseException] = []

    def attempt() -> None:
        try:
            promise = operation()
        except Exception as err:
            on_error(err)
            return
        if timeout_ms is None:
            _chain(promise, result.resolve, on_error)
            return
        # timeout inlined (not composed via with_timeout) to keep the
        # fault-free fast path at a single extra dispatch hop
        settled = [False]

        def deliver(settle_fn: Callable[[Any], None], payload: Any) -> None:
            if settled[0]:
                return
            settled[0] = True
            handle.cancel()
            settle_fn(payload)

        handle = loop.set_timeout(
            lambda: deliver(on_error, ServiceTimeout(f"no reply within {timeout_ms:g} ms")),
            timeout_ms,
        )
        _chain(
            promise,
            lambda value: deliver(result.resolve, value),
            lambda err: deliver(on_error, err),
        )

    def on_error(err: Any) -> None:
        errors.append(err)
        if len(errors) >= policy.max_attempts:
            result.reject(
                RetryExhaustedError(
                    f"all {policy.max_attempts} attempts failed (last: {err!r})",
                    attempts=len(errors),
                    errors=errors,
                )
            )
        else:
            loop.set_timeout(attempt, policy.delay_ms(len(errors)))

    attempt()
    return result


class CircuitBreaker:
    """A closed/open/half-open breaker around promise-returning calls.

    * **closed** — calls pass through; ``failure_threshold`` *consecutive*
      rejections open the circuit.
    * **open** — calls reject immediately with :class:`CircuitOpenError`
      (no load reaches the service) until ``cooldown_ms`` of loop time has
      passed.
    * **half-open** — after the cooldown, up to ``half_open_probes``
      concurrent probe calls pass through; a probe success closes the
      circuit, a probe failure re-opens it for another cooldown.

    Transitions are evaluated lazily against the loop clock on each
    :meth:`call`, so the breaker needs no timers of its own and behaves
    identically on simulated and real loops.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        loop: Any,
        failure_threshold: int = 5,
        cooldown_ms: float = 30_000.0,
        half_open_probes: int = 1,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self._loop = loop
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.half_open_probes = half_open_probes
        self.name = name
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms: Optional[float] = None
        self._probes_in_flight = 0
        self.stats: Dict[str, int] = {
            "calls": 0,
            "successes": 0,
            "failures": 0,
            "fast_rejections": 0,
            "opens": 0,
        }

    def _refresh(self) -> None:
        if (
            self.state == self.OPEN
            and loop_now_ms(self._loop) - (self.opened_at_ms or 0.0) >= self.cooldown_ms
        ):
            self.state = self.HALF_OPEN
            self._probes_in_flight = 0

    def _open(self) -> None:
        self.state = self.OPEN
        self.opened_at_ms = loop_now_ms(self._loop)
        self.stats["opens"] += 1

    def call(self, operation: Callable[[], Any]) -> Any:
        """Invoke ``operation()`` through the breaker; returns its promise,
        or an immediately-rejected :class:`ServiceResponse` when the
        circuit refuses the call."""
        self._refresh()
        self.stats["calls"] += 1
        if self.state == self.OPEN or (
            self.state == self.HALF_OPEN and self._probes_in_flight >= self.half_open_probes
        ):
            self.stats["fast_rejections"] += 1
            rejected = ServiceResponse(self._loop)
            rejected.reject(CircuitOpenError(f"circuit {self.name!r} is {self.state}"))
            return rejected
        if self.state == self.HALF_OPEN:
            self._probes_in_flight += 1
        try:
            promise = operation()
        except Exception as err:
            self._on_failure(err)
            rejected = ServiceResponse(self._loop)
            rejected.reject(err)
            return rejected
        _chain(promise, self._on_success, self._on_failure)
        return promise

    def _on_success(self, _value: Any) -> None:
        self.stats["successes"] += 1
        self.consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            self._probes_in_flight = 0

    def _on_failure(self, _error: Any) -> None:
        self.stats["failures"] += 1
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self._open()
        elif self.state == self.CLOSED and self.consecutive_failures >= self.failure_threshold:
            self._open()

    def reset(self) -> None:
        """Re-arm the breaker: back to *closed* with zero consecutive
        failures and no probes in flight (cumulative :attr:`stats` are
        kept).  Called by ``ReactiveMachine.reset`` on every breaker
        registered via ``register_breaker``, so a reset machine is not
        born degraded by its previous life's failures."""
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms = None
        self._probes_in_flight = 0

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time view for ``machine.health`` and dashboards."""
        self._refresh()
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opened_at_ms": self.opened_at_ms,
            **self.stats,
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, {self.state})"
