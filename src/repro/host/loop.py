"""Event loops for driving reactive machines.

:class:`SimulatedLoop` is a deterministic discrete-event scheduler with
*virtual* time: timers fire when the test calls :meth:`advance`, so the
paper's second-granularity session timers or minute-granularity pillbox
clocks run in microseconds and reproducibly.  It implements the JavaScript
timer API surface the paper's programs use (``setInterval`` /
``clearInterval`` / ``setTimeout``) plus ``call_soon`` for machine
integration.

:class:`AsyncioLoop` adapts a real :mod:`asyncio` loop behind the same
interface for wall-clock deployments.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple


class TimerHandle:
    """Cancellation token returned by the timer functions."""

    __slots__ = ("uid", "cancelled")

    def __init__(self, uid: int):
        self.uid = uid
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"TimerHandle(#{self.uid}, {state})"


class SimulatedLoop:
    """Deterministic virtual-time event loop.

    Time is in milliseconds (JavaScript convention).  Callbacks scheduled
    with :meth:`call_soon` run before any timer at the same instant, in
    FIFO order.
    """

    def __init__(self) -> None:
        self.now_ms: float = 0.0
        self._heap: List[Tuple[float, int, TimerHandle, Callable[[], None], Optional[float]]] = []
        self._soon: Deque[Callable[[], None]] = deque()
        self._uids = itertools.count()

    # -- the JavaScript-style timer API --------------------------------------

    def set_timeout(self, callback: Callable[[], None], delay_ms: float) -> TimerHandle:
        handle = TimerHandle(next(self._uids))
        heapq.heappush(self._heap, (self.now_ms + delay_ms, handle.uid, handle, callback, None))
        return handle

    def set_interval(self, callback: Callable[[], None], period_ms: float) -> TimerHandle:
        if period_ms <= 0:
            raise ValueError("interval period must be positive")
        handle = TimerHandle(next(self._uids))
        heapq.heappush(
            self._heap, (self.now_ms + period_ms, handle.uid, handle, callback, period_ms)
        )
        return handle

    def clear_timeout(self, handle: Optional[TimerHandle]) -> None:
        if handle is not None:
            handle.cancel()

    clear_interval = clear_timeout

    def call_soon(self, callback: Callable[[], None]) -> None:
        self._soon.append(callback)

    # -- time control -----------------------------------------------------------

    def flush_soon(self) -> int:
        """Run queued ``call_soon`` callbacks (including ones they queue).
        Returns the number executed."""
        count = 0
        while self._soon:
            callback = self._soon.popleft()
            callback()
            count += 1
            if count > 1_000_000:
                raise RuntimeError("call_soon storm: possible reaction loop")
        return count

    def advance(self, delta_ms: float) -> int:
        """Advance virtual time, firing due timers in order.  Returns the
        number of callbacks executed.  ``delta_ms`` must be >= 0: virtual
        time is monotone (use ``advance(0)`` to drain due work)."""
        if delta_ms < 0:
            raise ValueError(
                f"cannot advance virtual time backwards (delta_ms={delta_ms})"
            )
        deadline = self.now_ms + delta_ms
        fired = self.flush_soon()
        while self._heap and self._heap[0][0] <= deadline:
            when, uid, handle, callback, period = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now_ms = when
            if period is not None:
                heapq.heappush(self._heap, (when + period, uid, handle, callback, period))
            callback()
            fired += 1
            fired += self.flush_soon()
        self.now_ms = deadline
        return fired

    def advance_seconds(self, seconds: float) -> int:
        return self.advance(seconds * 1000.0)

    def run_until_idle(self, max_ms: float = 3_600_000.0) -> int:
        """Advance until no timers remain, or at most ``max_ms`` past the
        current instant.  The bound is fixed at entry, so a self-rearming
        timer chain (each callback scheduling the next) terminates after
        ``max_ms`` of virtual time instead of sliding the window forever."""
        deadline = self.now_ms + max_ms
        fired = self.flush_soon()
        while self._heap and self._heap[0][0] <= deadline:
            # max(0, ...): a callback may have scheduled a timer with a
            # negative delay, i.e. already due; advance(0) drains it.
            fired += self.advance(max(0.0, self._heap[0][0] - self.now_ms))
        return fired

    # -- machine integration -----------------------------------------------------

    def bindings(self) -> Dict[str, Any]:
        """Host-global bindings exposing the JS timer API to HipHop
        programs (pass as ``host_globals`` to the machine)."""
        return {
            "setInterval": lambda fn, ms: self.set_interval(fn, ms),
            "clearInterval": self.clear_interval,
            "setTimeout": lambda fn, ms: self.set_timeout(fn, ms),
            "clearTimeout": self.clear_timeout,
            "now": lambda: self.now_ms,
        }


class AsyncioLoop:
    """Thin adapter exposing the same interface over a real asyncio loop.

    Without an explicit ``loop`` the adapter binds to the *running* loop
    (``asyncio.get_event_loop`` is deprecated outside one and would create
    a stray loop); construct it inside ``asyncio.run(...)`` or pass the
    loop you drive yourself.
    """

    def __init__(self, loop: Optional[Any] = None):
        import asyncio

        self._asyncio = asyncio
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                raise RuntimeError(
                    "AsyncioLoop: no running asyncio event loop; construct the "
                    "adapter inside asyncio.run(...) (or a running loop), or "
                    "pass an event loop explicitly"
                ) from None
        self.loop = loop

    @property
    def now_ms(self) -> float:
        """The loop's monotonic clock, in milliseconds (same unit and
        binding name as :attr:`SimulatedLoop.now_ms`)."""
        return self.loop.time() * 1000.0

    def set_timeout(self, callback: Callable[[], None], delay_ms: float) -> Any:
        return self.loop.call_later(delay_ms / 1000.0, callback)

    def set_interval(self, callback: Callable[[], None], period_ms: float) -> Any:
        if period_ms <= 0:
            raise ValueError("interval period must be positive")
        state = {"cancelled": False, "handle": None}

        def tick() -> None:
            if state["cancelled"]:
                return
            callback()
            state["handle"] = self.loop.call_later(period_ms / 1000.0, tick)

        state["handle"] = self.loop.call_later(period_ms / 1000.0, tick)

        class _IntervalHandle:
            def cancel(self_inner) -> None:
                state["cancelled"] = True
                if state["handle"] is not None:
                    state["handle"].cancel()

        return _IntervalHandle()

    def clear_timeout(self, handle: Any) -> None:
        if handle is not None:
            handle.cancel()

    clear_interval = clear_timeout

    def call_soon(self, callback: Callable[[], None]) -> None:
        self.loop.call_soon(callback)

    def bindings(self) -> Dict[str, Any]:
        # Same surface as SimulatedLoop.bindings(): programs using `now()`
        # must stay portable across the two loops.
        return {
            "setInterval": lambda fn, ms: self.set_interval(fn, ms),
            "clearInterval": self.clear_interval,
            "setTimeout": lambda fn, ms: self.set_timeout(fn, ms),
            "clearTimeout": self.clear_timeout,
            "now": lambda: self.now_ms,
        }
