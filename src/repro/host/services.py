"""Simulated remote services.

The paper's login example posts credentials to a third-party OAuth server
(``authenticateSvc(name, passwd).post().then(v => ...)``).  We reproduce
the same call shape against a deterministic in-process service: ``post()``
returns a promise-like :class:`ServiceResponse` whose ``then`` callback
fires after a configurable latency on the host loop.

This substitution keeps the paper's asynchronous code path intact — the
async statement starts a non-blocking request, the reply arrives in a
later reaction, and preempted requests are discarded — while making tests
deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


class ServiceResponse:
    """A promise-like object: ``.then(fn)`` runs ``fn(value)`` when the
    simulated request completes."""

    def __init__(self, loop: Any, value_fn: Callable[[], Any], latency_ms: float):
        self._loop = loop
        self._value_fn = value_fn
        self._latency_ms = latency_ms
        self._callbacks: List[Callable[[Any], None]] = []
        self._fired = False
        self._value: Any = None
        loop.set_timeout(self._fire, latency_ms)

    def _fire(self) -> None:
        self._fired = True
        self._value = self._value_fn()
        for callback in self._callbacks:
            callback(self._value)
        self._callbacks = []

    def then(self, callback: Callable[[Any], None]) -> "ServiceResponse":
        if self._fired:
            self._loop.call_soon(lambda: callback(self._value))
        else:
            self._callbacks.append(callback)
        return self


class _PendingRequest:
    """The object returned by ``authenticateSvc(name, passwd)``; calling
    ``.post()`` actually sends it (mirrors the Hop.js service API)."""

    def __init__(self, service: "AuthService", name: str, passwd: str):
        self._service = service
        self.name = name
        self.passwd = passwd

    def post(self) -> ServiceResponse:
        return self._service.post(self.name, self.passwd)


class AuthService:
    """A simulated authentication server.

    :param loop: host loop used for latency simulation.
    :param accounts: mapping of valid name → password.
    :param latency_ms: round-trip time of one authentication request.
    """

    def __init__(
        self,
        loop: Any,
        accounts: Optional[Dict[str, str]] = None,
        latency_ms: float = 150.0,
    ):
        self.loop = loop
        self.accounts = dict(accounts or {})
        self.latency_ms = latency_ms
        #: request log: (time_ms, name, granted)
        self.log: List[Tuple[float, str, bool]] = []
        #: force the next n requests to fail regardless of credentials
        self.outage_requests = 0

    def add_account(self, name: str, passwd: str) -> None:
        self.accounts[name] = passwd

    def check(self, name: str, passwd: str) -> bool:
        if self.outage_requests > 0:
            self.outage_requests -= 1
            return False
        return self.accounts.get(name) == passwd

    def post(self, name: str, passwd: str) -> ServiceResponse:
        def resolve() -> bool:
            granted = self.check(name, passwd)
            self.log.append((getattr(self.loop, "now_ms", 0.0), name, granted))
            return granted

        return ServiceResponse(self.loop, resolve, self.latency_ms)

    def __call__(self, name: str, passwd: str) -> _PendingRequest:
        """Make the service callable exactly like the paper's
        ``authenticateSvc(name, passwd)``."""
        return _PendingRequest(self, name, passwd)
