"""Simulated remote services, with failures.

The paper's login example posts credentials to a third-party OAuth server
(``authenticateSvc(name, passwd).post().then(v => ...)``).  We reproduce
the same call shape against a deterministic in-process service: ``post()``
returns a promise-like :class:`ServiceResponse` whose ``then`` callback
fires after a configurable latency on the host loop.

This substitution keeps the paper's asynchronous code path intact — the
async statement starts a non-blocking request, the reply arrives in a
later reaction, and preempted requests are discarded — while making tests
deterministic.

Beyond the happy path, :class:`ServiceResponse` is a settle-once promise
with a rejection branch (``.catch``) and an optional timeout, and
:class:`FlakyService` injects every failure mode a real network exhibits
(errors, latency jitter, hangs, outage windows) from a seeded RNG, so the
whole failure space replays bit-identically in virtual time.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceFailure, ServiceTimeout, ServiceUnavailable

#: ServiceResponse settlement states.
PENDING = "pending"
RESOLVED = "resolved"
REJECTED = "rejected"


class ServiceResponse:
    """A settle-once promise: ``.then(fn)`` runs ``fn(value)`` on success,
    ``.catch(fn)`` runs ``fn(error)`` on rejection.

    Delivery discipline (uniform, regardless of registration time): every
    callback is dispatched through ``loop.call_soon`` once the response is
    settled *and* the callback is registered, in registration order.
    Callbacks therefore never run synchronously inside the timer that
    settles the response, nor inside ``then``/``catch`` themselves — the
    same asynchrony a real network client exhibits.  The first settlement
    wins; later ``resolve``/``reject`` calls (e.g. a reply racing a
    timeout) are ignored.

    :param value_fn: when given, the response self-settles after
        ``latency_ms`` with ``value_fn()`` — or rejects with the exception
        it raises.  Without it, the creator settles the response
        explicitly through :meth:`resolve` / :meth:`reject`.
    :param timeout_ms: when given, reject with :class:`ServiceTimeout`
        unless settled earlier.
    """

    def __init__(
        self,
        loop: Any,
        value_fn: Optional[Callable[[], Any]] = None,
        latency_ms: float = 0.0,
        timeout_ms: Optional[float] = None,
    ):
        self._loop = loop
        self._callbacks: List[Tuple[str, Callable[[Any], None]]] = []
        self.state = PENDING
        self._value: Any = None
        self._error: Optional[BaseException] = None
        if value_fn is not None:
            loop.set_timeout(lambda: self._settle_from(value_fn), latency_ms)
        self._timeout_handle = (
            loop.set_timeout(self._on_timeout, timeout_ms) if timeout_ms is not None else None
        )

    # -- registration ------------------------------------------------------

    def then(self, callback: Callable[[Any], None]) -> "ServiceResponse":
        self._add("then", callback)
        return self

    def catch(self, callback: Callable[[Any], None]) -> "ServiceResponse":
        self._add("catch", callback)
        return self

    def _add(self, kind: str, callback: Callable[[Any], None]) -> None:
        if self.state == PENDING:
            self._callbacks.append((kind, callback))
        else:
            self._dispatch(kind, callback)

    # -- settlement --------------------------------------------------------

    def resolve(self, value: Any) -> None:
        self._settle(RESOLVED, value)

    def reject(self, error: BaseException) -> None:
        self._settle(REJECTED, error)

    def _settle_from(self, value_fn: Callable[[], Any]) -> None:
        try:
            value = value_fn()
        except Exception as err:
            self.reject(err)
        else:
            self.resolve(value)

    def _on_timeout(self) -> None:
        self.reject(ServiceTimeout("service reply timed out"))

    def _settle(self, state: str, payload: Any) -> None:
        if self.state != PENDING:
            return  # settle-once: late replies / racing timeouts are dropped
        self.state = state
        if state == RESOLVED:
            self._value = payload
        else:
            self._error = payload
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
        callbacks, self._callbacks = self._callbacks, []
        for kind, callback in callbacks:
            self._dispatch(kind, callback)

    def _dispatch(self, kind: str, callback: Callable[[Any], None]) -> None:
        if kind == "then" and self.state == RESOLVED:
            value = self._value
            self._loop.call_soon(lambda: callback(value))
        elif kind == "catch" and self.state == REJECTED:
            error = self._error
            self._loop.call_soon(lambda: callback(error))

    def __repr__(self) -> str:
        return f"ServiceResponse({self.state})"


class _PendingRequest:
    """The object returned by ``authenticateSvc(name, passwd)``; calling
    ``.post()`` actually sends it (mirrors the Hop.js service API)."""

    def __init__(self, service: "AuthService", name: str, passwd: str):
        self._service = service
        self.name = name
        self.passwd = passwd

    def post(self) -> ServiceResponse:
        return self._service.post(self.name, self.passwd)


class AuthService:
    """A simulated authentication server.

    :param loop: host loop used for latency simulation.
    :param accounts: mapping of valid name → password.
    :param latency_ms: round-trip time of one authentication request.
    """

    def __init__(
        self,
        loop: Any,
        accounts: Optional[Dict[str, str]] = None,
        latency_ms: float = 150.0,
    ):
        self.loop = loop
        self.accounts = dict(accounts or {})
        self.latency_ms = latency_ms
        #: request log: (time_ms, name, granted)
        self.log: List[Tuple[float, str, bool]] = []
        #: force the next n requests to fail regardless of credentials
        self.outage_requests = 0

    def add_account(self, name: str, passwd: str) -> None:
        self.accounts[name] = passwd

    def check(self, name: str, passwd: str) -> bool:
        if self.outage_requests > 0:
            self.outage_requests -= 1
            return False
        return self.accounts.get(name) == passwd

    def _now(self) -> float:
        return float(getattr(self.loop, "now_ms", 0.0))

    def post(self, name: str, passwd: str) -> ServiceResponse:
        def resolve() -> bool:
            granted = self.check(name, passwd)
            self.log.append((self._now(), name, granted))
            return granted

        return ServiceResponse(self.loop, resolve, self.latency_ms)

    def __call__(self, name: str, passwd: str) -> _PendingRequest:
        """Make the service callable exactly like the paper's
        ``authenticateSvc(name, passwd)``."""
        return _PendingRequest(self, name, passwd)


class FlakyService(AuthService):
    """An :class:`AuthService` that misbehaves on purpose, reproducibly.

    Every request draws the same fixed sequence from the injected seeded
    RNG (hang draw, error draw, latency draw — always all three, even when
    a rate is zero), so a given seed always yields the same failure
    schedule regardless of which knobs are enabled.

    :param error_rate: probability a request rejects with
        :class:`ServiceFailure`.
    :param hang_rate: probability a request never settles at all (pair
        with ``timeout_ms`` to turn hangs into :class:`ServiceTimeout`).
    :param latency_jitter_ms: uniform extra latency in ``[0, jitter]``
        added to ``latency_ms`` per request.
    :param outage_windows: ``(start_ms, end_ms)`` virtual-time intervals;
        requests *completing* inside one reject with
        :class:`ServiceUnavailable`.
    :param timeout_ms: per-response timeout (see :class:`ServiceResponse`).
    :param seed: seed for the private RNG; pass ``rng`` to share one.
    """

    def __init__(
        self,
        loop: Any,
        accounts: Optional[Dict[str, str]] = None,
        latency_ms: float = 150.0,
        *,
        error_rate: float = 0.0,
        hang_rate: float = 0.0,
        latency_jitter_ms: float = 0.0,
        outage_windows: Tuple[Tuple[float, float], ...] = (),
        timeout_ms: Optional[float] = None,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(loop, accounts, latency_ms)
        self.error_rate = error_rate
        self.hang_rate = hang_rate
        self.latency_jitter_ms = latency_jitter_ms
        self.outage_windows = list(outage_windows)
        self.timeout_ms = timeout_ms
        self.rng = rng if rng is not None else random.Random(seed)
        #: per-failure-mode counters, for assertions and health reports
        self.stats: Dict[str, int] = {
            "requests": 0,
            "errors": 0,
            "hangs": 0,
            "outages": 0,
            "served": 0,
        }

    def in_outage(self, time_ms: float) -> bool:
        return any(start <= time_ms < end for start, end in self.outage_windows)

    def post(self, name: str, passwd: str) -> ServiceResponse:
        self.stats["requests"] += 1
        hang_draw = self.rng.random()
        error_draw = self.rng.random()
        latency = self.latency_ms + self.rng.uniform(0.0, self.latency_jitter_ms)

        response = ServiceResponse(self.loop, timeout_ms=self.timeout_ms)
        if hang_draw < self.hang_rate:
            self.stats["hangs"] += 1
            return response  # never settles; only a timeout can reject it

        def settle() -> None:
            now = self._now()
            if self.in_outage(now):
                self.stats["outages"] += 1
                self.log.append((now, name, False))
                response.reject(ServiceUnavailable(f"service outage at t={now:.0f}ms"))
            elif error_draw < self.error_rate:
                self.stats["errors"] += 1
                self.log.append((now, name, False))
                response.reject(ServiceFailure("injected service failure"))
            else:
                self.stats["served"] += 1
                granted = self.check(name, passwd)
                self.log.append((now, name, granted))
                response.resolve(granted)

        self.loop.set_timeout(settle, latency)
        return response
