"""Deterministic fault injection for the host loop.

:class:`ChaosLoop` is a :class:`~repro.host.SimulatedLoop` that perturbs
the schedule the way a loaded machine or a flaky transport would — timers
drift within a slack window (reordering near-simultaneous callbacks), and
``call_soon`` wakeups are dropped or duplicated — while staying fully
deterministic: one seed, one schedule.  A failing seed is therefore a
reproducible test case, not a flake.

The perturbations deliberately target the two channels the reactive
machine relies on: timers (service latencies, HipHop ``Timer`` modules)
and ``call_soon`` (queued reactions from ``this.react`` / ``notify``).
Safety invariants — no stale grant after preemption, no double dispense —
must survive *any* such schedule; liveness only holds when wakeups are
not dropped, so keep ``drop_soon_rate`` at zero for convergence checks.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.errors import CrashError
from repro.host.loop import SimulatedLoop, TimerHandle


class _PhasedIntervalHandle:
    """Cancellation token for a phase-shifted interval: cancels the arming
    timeout and, once armed, the interval itself."""

    def __init__(self) -> None:
        self.cancelled = False
        self.inner: Optional[TimerHandle] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self.inner is not None:
            self.inner.cancel()


class ChaosLoop(SimulatedLoop):
    """A seeded, schedule-perturbing :class:`SimulatedLoop`.

    :param seed: RNG seed; the whole perturbed schedule is a pure function
        of it (and the program's scheduling calls).  Pass ``rng`` to share
        a generator instead.
    :param timer_slack_ms: each ``set_timeout`` delay is shifted by a
        uniform draw in ``[-slack, +slack]`` (clamped at 0), reordering
        timers closer together than the slack.  Interval *periods* are
        kept exact so periodic processes stay periodic; only their phase
        shifts.
    :param drop_soon_rate: probability a ``call_soon`` callback is lost.
    :param duplicate_soon_rate: probability a ``call_soon`` callback runs
        twice (at-least-once delivery).
    """

    def __init__(
        self,
        seed: int = 0,
        timer_slack_ms: float = 0.0,
        drop_soon_rate: float = 0.0,
        duplicate_soon_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        self.seed = seed
        self.rng = rng if rng is not None else random.Random(seed)
        self.timer_slack_ms = timer_slack_ms
        self.drop_soon_rate = drop_soon_rate
        self.duplicate_soon_rate = duplicate_soon_rate
        #: how much chaos was actually injected, for reports and debugging
        self.chaos_stats: Dict[str, int] = {"jittered": 0, "dropped": 0, "duplicated": 0}

    def set_timeout(self, callback: Callable[[], None], delay_ms: float) -> TimerHandle:
        if self.timer_slack_ms:
            shift = self.rng.uniform(-self.timer_slack_ms, self.timer_slack_ms)
            delay_ms = max(0.0, delay_ms + shift)
            self.chaos_stats["jittered"] += 1
        return super().set_timeout(callback, delay_ms)

    def set_interval(self, callback: Callable[[], None], period_ms: float) -> Any:
        # Shift only the first firing: the period itself stays exact.
        if not self.timer_slack_ms:
            return super().set_interval(callback, period_ms)
        phase = self.rng.uniform(0.0, self.timer_slack_ms)
        self.chaos_stats["jittered"] += 1
        handle = _PhasedIntervalHandle()

        def arm() -> None:
            if not handle.cancelled:
                handle.inner = SimulatedLoop.set_interval(self, callback, period_ms)

        SimulatedLoop.set_timeout(self, arm, phase)
        return handle

    def call_soon(self, callback: Callable[[], None]) -> None:
        if self.drop_soon_rate and self.rng.random() < self.drop_soon_rate:
            self.chaos_stats["dropped"] += 1
            return
        super().call_soon(callback)
        if self.duplicate_soon_rate and self.rng.random() < self.duplicate_soon_rate:
            self.chaos_stats["duplicated"] += 1
            super().call_soon(callback)

    def __repr__(self) -> str:
        return (
            f"ChaosLoop(seed={self.seed}, slack={self.timer_slack_ms}ms, "
            f"stats={self.chaos_stats})"
        )


class MachineCrasher:
    """Deterministic crash injection for one reactive machine.

    Two fault shapes, both raising :class:`~repro.errors.CrashError`
    exactly once per arming (the crasher disarms itself as it fires):

    * :meth:`kill_between_instants` — the *next* ``react()`` call dies
      before touching any machine state (the clean crash: the machine is
      still at an instant boundary and a snapshot+journal recovery loses
      nothing but the killed instant's write-ahead entry).
    * :meth:`kill_mid_instant` — the machine dies *inside* a reaction,
      after a seeded number of payload-visible host calls
      (``env_for``/``emit_value``).  Signals, counters and the frame may
      be torn, but registers are not: all three backends latch registers
      only after a successful fixpoint, so restoring the last checkpoint
      and replaying the journal reconstructs the exact pre-crash state.

    Injection works by shadowing the machine's host-callback methods
    with instance attributes; :meth:`disarm` removes them.  Pair with a
    :class:`ChaosLoop` (share its ``rng``) for a fully seeded
    crash-under-chaos schedule.
    """

    def __init__(self, machine: Any, seed: int = 0, rng: Optional[random.Random] = None):
        self.machine = machine
        self.rng = rng if rng is not None else random.Random(seed)
        self.armed: Optional[str] = None
        self.crash_stats: Dict[str, int] = {"mid_instant": 0, "between_instants": 0}
        self._countdown = 0

    # -- fault arming ----------------------------------------------------

    def kill_between_instants(self) -> None:
        """Arm a crash of the next ``react()`` call, before it starts."""
        self.disarm()
        self.armed = "between"
        machine = self.machine

        def crashed_react(inputs: Optional[Dict[str, Any]] = None, **_kwargs: Any) -> Any:
            self.disarm()
            self.crash_stats["between_instants"] += 1
            raise CrashError(
                f"injected crash: machine {machine.name!r} killed between "
                f"instants (at reaction {machine.reaction_count})"
            )

        machine.__dict__["react"] = crashed_react

    def kill_mid_instant(self, after_calls: Optional[int] = None) -> None:
        """Arm a crash *inside* a subsequent reaction: the machine dies on
        the ``after_calls``-th payload host call (``env_for`` or
        ``emit_value``; seeded 1..8 when not given)."""
        self.disarm()
        self.armed = "mid"
        self._countdown = after_calls if after_calls is not None else self.rng.randint(1, 8)
        machine = self.machine
        original_env_for = machine.env_for
        original_emit_value = machine.emit_value

        def crash_if_due() -> None:
            self._countdown -= 1
            if self._countdown <= 0:
                self.disarm()
                self.crash_stats["mid_instant"] += 1
                raise CrashError(
                    f"injected crash: machine {machine.name!r} killed "
                    f"mid-instant (during reaction {machine.reaction_count})"
                )

        def env_for(scope: Dict[str, int]) -> Any:
            crash_if_due()
            return original_env_for(scope)

        def emit_value(slot: int, value: Any) -> None:
            crash_if_due()
            original_emit_value(slot, value)

        machine.__dict__["env_for"] = env_for
        machine.__dict__["emit_value"] = emit_value

    def kill_at_random(self) -> str:
        """Arm one of the two fault shapes, chosen by the seeded RNG;
        returns which (``"mid"`` / ``"between"``)."""
        if self.rng.random() < 0.5:
            self.kill_between_instants()
        else:
            self.kill_mid_instant()
        return self.armed or ""

    def disarm(self) -> None:
        """Remove any armed fault (also called automatically as a fault
        fires, so each arming kills at most once)."""
        self.armed = None
        for name in ("react", "env_for", "emit_value"):
            self.machine.__dict__.pop(name, None)

    def __repr__(self) -> str:
        return (
            f"MachineCrasher({self.machine.name}, armed={self.armed!r}, "
            f"stats={self.crash_stats})"
        )


class WorkerCrasher:
    """Deterministic crash injection for a
    :class:`~repro.runtime.shard.ShardManager`'s worker *processes* —
    the real-SIGKILL sibling of :class:`MachineCrasher`.

    Where :class:`MachineCrasher` raises an in-process
    :class:`~repro.errors.CrashError`, this arms an actual
    ``os.kill(pid, SIGKILL)`` inside a seeded worker, so the whole shard
    (its machines, mailboxes, and pipe endpoints) vanishes exactly the
    way an OOM-kill or segfault would.  Two fault shapes, mirroring the
    single-machine crasher:

    * :meth:`kill_between_instants` — the worker dies right before
      processing its next driving command, cleanly between instants;
    * :meth:`kill_mid_instant` — the worker dies immediately after a
      seeded number of write-ahead journal appends, i.e. with an
      instant's inputs durably journaled but uncommitted and its host
      effects unfired (the crash window recovery must redo *live*).

    Arming is remote and asynchronous: the fault fires on a later
    driving call (``react_all``/``pump_all``/...), where the
    :class:`~repro.runtime.shard.ShardManager` detects the death and
    fails the members over.  Each arming kills at most one worker.
    """

    def __init__(self, manager: Any, seed: int = 0, rng: Optional[random.Random] = None):
        self.manager = manager
        self.rng = rng if rng is not None else random.Random(seed)
        self.crash_stats: Dict[str, int] = {"mid_instant": 0, "between_instants": 0}

    def _pick_worker(self, worker_id: Optional[int]) -> int:
        live = self.manager.live_workers()
        if not live:
            raise CrashError("no live worker to crash")
        if worker_id is not None:
            return worker_id
        return self.rng.choice(sorted(w.id for w in live))

    # -- fault arming ----------------------------------------------------

    def kill_between_instants(self, worker_id: Optional[int] = None) -> int:
        """Arm a SIGKILL of a (seeded) live worker right before its next
        driving command; returns the doomed worker's id."""
        wid = self._pick_worker(worker_id)
        self.manager.arm_crash(wid, "between")
        self.crash_stats["between_instants"] += 1
        return wid

    def kill_mid_instant(
        self,
        worker_id: Optional[int] = None,
        after_appends: Optional[int] = None,
    ) -> int:
        """Arm a SIGKILL of a (seeded) live worker after its
        ``after_appends``-th write-ahead journal append (seeded 1..8 when
        not given) — mid-instant, mid-batch; returns the worker's id."""
        wid = self._pick_worker(worker_id)
        count = after_appends if after_appends is not None else self.rng.randint(1, 8)
        self.manager.arm_crash(wid, "mid", after_appends=count)
        self.crash_stats["mid_instant"] += 1
        return wid

    def kill_at_random(self) -> str:
        """Arm one of the two fault shapes on a seeded worker; returns
        which (``"mid"`` / ``"between"``)."""
        if self.rng.random() < 0.5:
            self.kill_between_instants()
            return "between"
        self.kill_mid_instant()
        return "mid"

    def __repr__(self) -> str:
        return f"WorkerCrasher(stats={self.crash_stats})"


class LoadGenerator:
    """Deterministic traffic generation against a loop's (virtual) time.

    Two canonical overload shapes, both pure functions of the seed:

    * :meth:`poisson` — **open-loop** traffic: events arrive with
      exponentially distributed gaps at a target rate, regardless of how
      fast the system drains them (the arrival process of independent
      Skini participants tapping their phones).
    * :meth:`bursts` — **closed-loop** burst traffic: a burst of
      back-to-back events, a gap, the next burst (the thundering-herd
      shape of a conductor cue or a reconnect storm).

    Each event calls ``sink(inputs)`` with the map built by
    ``make_inputs(event_index)``; the sink is typically
    :meth:`Mailbox.offer <repro.runtime.ingress.Mailbox.offer>`, a
    :class:`~repro.runtime.fleet.FleetIngress` route, or a bare
    ``machine.react``.  Sink exceptions (e.g.
    :class:`~repro.errors.OverloadError` under the ``reject`` policy)
    are counted in ``stats["sink_errors"]`` and do not stop the run —
    overload experiments must outlive the overload.
    """

    def __init__(
        self,
        loop: Any,
        sink: Callable[[Dict[str, Any]], Any],
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ):
        self.loop = loop
        self.sink = sink
        self.seed = seed
        self.rng = rng if rng is not None else random.Random(seed)
        self.stats: Dict[str, int] = {"scheduled": 0, "delivered": 0, "sink_errors": 0}

    def _deliver(self, make_inputs: Callable[[int], Dict[str, Any]], index: int) -> None:
        self.stats["delivered"] += 1
        try:
            self.sink(make_inputs(index))
        except Exception:
            self.stats["sink_errors"] += 1

    def poisson(
        self,
        rate_per_s: float,
        duration_ms: float,
        make_inputs: Callable[[int], Dict[str, Any]] = lambda i: {},
    ) -> int:
        """Schedule open-loop Poisson arrivals at ``rate_per_s`` over the
        next ``duration_ms`` of loop time (exponential inter-arrival
        gaps, drawn up front so the schedule is a pure function of the
        seed).  Returns the number of events scheduled; drive the loop
        (``advance`` / real time) to deliver them."""
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if duration_ms < 0:
            raise ValueError("duration must be >= 0")
        mean_gap_ms = 1000.0 / rate_per_s
        at = self.rng.expovariate(1.0) * mean_gap_ms
        index = 0
        while at <= duration_ms:
            event = index

            def fire(event: int = event) -> None:
                self._deliver(make_inputs, event)

            self.loop.set_timeout(fire, at)
            self.stats["scheduled"] += 1
            index += 1
            at += self.rng.expovariate(1.0) * mean_gap_ms
        return index

    def bursts(
        self,
        burst_size: int,
        gap_ms: float,
        count: int,
        make_inputs: Callable[[int], Dict[str, Any]] = lambda i: {},
        start_ms: float = 0.0,
    ) -> int:
        """Schedule ``count`` bursts of ``burst_size`` back-to-back events
        (same loop instant), ``gap_ms`` apart, starting ``start_ms`` from
        now.  Returns the number of events scheduled."""
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if gap_ms <= 0:
            raise ValueError("gap_ms must be positive")
        index = 0
        for burst in range(count):
            at = start_ms + burst * gap_ms
            for _ in range(burst_size):
                event = index

                def fire(event: int = event) -> None:
                    self._deliver(make_inputs, event)

                self.loop.set_timeout(fire, at)
                self.stats["scheduled"] += 1
                index += 1
        return index

    def __repr__(self) -> str:
        return f"LoadGenerator(seed={self.seed}, stats={self.stats})"
