"""Deterministic fault injection for the host loop.

:class:`ChaosLoop` is a :class:`~repro.host.SimulatedLoop` that perturbs
the schedule the way a loaded machine or a flaky transport would — timers
drift within a slack window (reordering near-simultaneous callbacks), and
``call_soon`` wakeups are dropped or duplicated — while staying fully
deterministic: one seed, one schedule.  A failing seed is therefore a
reproducible test case, not a flake.

The perturbations deliberately target the two channels the reactive
machine relies on: timers (service latencies, HipHop ``Timer`` modules)
and ``call_soon`` (queued reactions from ``this.react`` / ``notify``).
Safety invariants — no stale grant after preemption, no double dispense —
must survive *any* such schedule; liveness only holds when wakeups are
not dropped, so keep ``drop_soon_rate`` at zero for convergence checks.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.host.loop import SimulatedLoop, TimerHandle


class _PhasedIntervalHandle:
    """Cancellation token for a phase-shifted interval: cancels the arming
    timeout and, once armed, the interval itself."""

    def __init__(self) -> None:
        self.cancelled = False
        self.inner: Optional[TimerHandle] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self.inner is not None:
            self.inner.cancel()


class ChaosLoop(SimulatedLoop):
    """A seeded, schedule-perturbing :class:`SimulatedLoop`.

    :param seed: RNG seed; the whole perturbed schedule is a pure function
        of it (and the program's scheduling calls).  Pass ``rng`` to share
        a generator instead.
    :param timer_slack_ms: each ``set_timeout`` delay is shifted by a
        uniform draw in ``[-slack, +slack]`` (clamped at 0), reordering
        timers closer together than the slack.  Interval *periods* are
        kept exact so periodic processes stay periodic; only their phase
        shifts.
    :param drop_soon_rate: probability a ``call_soon`` callback is lost.
    :param duplicate_soon_rate: probability a ``call_soon`` callback runs
        twice (at-least-once delivery).
    """

    def __init__(
        self,
        seed: int = 0,
        timer_slack_ms: float = 0.0,
        drop_soon_rate: float = 0.0,
        duplicate_soon_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        self.seed = seed
        self.rng = rng if rng is not None else random.Random(seed)
        self.timer_slack_ms = timer_slack_ms
        self.drop_soon_rate = drop_soon_rate
        self.duplicate_soon_rate = duplicate_soon_rate
        #: how much chaos was actually injected, for reports and debugging
        self.chaos_stats: Dict[str, int] = {"jittered": 0, "dropped": 0, "duplicated": 0}

    def set_timeout(self, callback: Callable[[], None], delay_ms: float) -> TimerHandle:
        if self.timer_slack_ms:
            shift = self.rng.uniform(-self.timer_slack_ms, self.timer_slack_ms)
            delay_ms = max(0.0, delay_ms + shift)
            self.chaos_stats["jittered"] += 1
        return super().set_timeout(callback, delay_ms)

    def set_interval(self, callback: Callable[[], None], period_ms: float) -> Any:
        # Shift only the first firing: the period itself stays exact.
        if not self.timer_slack_ms:
            return super().set_interval(callback, period_ms)
        phase = self.rng.uniform(0.0, self.timer_slack_ms)
        self.chaos_stats["jittered"] += 1
        handle = _PhasedIntervalHandle()

        def arm() -> None:
            if not handle.cancelled:
                handle.inner = SimulatedLoop.set_interval(self, callback, period_ms)

        SimulatedLoop.set_timeout(self, arm, phase)
        return handle

    def call_soon(self, callback: Callable[[], None]) -> None:
        if self.drop_soon_rate and self.rng.random() < self.drop_soon_rate:
            self.chaos_stats["dropped"] += 1
            return
        super().call_soon(callback)
        if self.duplicate_soon_rate and self.rng.random() < self.duplicate_soon_rate:
            self.chaos_stats["duplicated"] += 1
            super().call_soon(callback)

    def __repr__(self) -> str:
        return (
            f"ChaosLoop(seed={self.seed}, slack={self.timer_slack_ms}ms, "
            f"stats={self.chaos_stats})"
        )
