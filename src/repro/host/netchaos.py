"""Seeded network chaos for the WebSocket gateway.

The sharding layer proved the runtime survives SIGKILLed *processes*
(:class:`~repro.host.chaos.WorkerCrasher`); this module is the same
discipline for the *network*: every failure a real edge sees — dropped
connections, stalled peers, writes torn mid-frame, duplicated and
reordered delivery after a reconnect — injected deterministically from a
seed, so a failing storm is a reproducible test case.

Two layers:

* :func:`memory_pipe` / :class:`MemoryEndpoint` — an in-process duplex
  byte stream with the asyncio ``StreamReader``/``StreamWriter`` surface
  the gateway uses (``read``/``write``/``drain``/``close``/``abort``).
  A thousand simulated WebSocket clients cost a thousand Python objects,
  not a thousand sockets, and the whole exchange is deterministic.
* :class:`ChaosTransport` — wraps any endpoint (memory or real TCP
  stream pair) and perturbs the *write* path with seeded faults, plus an
  externally callable :meth:`ChaosTransport.kill` for reconnect-storm
  drills.  Reads pass through untouched: TCP already guarantees ordered
  byte delivery within one connection, so the interesting chaos is what
  happens *around* connections — which is exactly what killing them
  mid-write and replaying client retransmissions exercises.

Fault model (independent seeded draws per write):

=================  ========================================================
``drop_rate``      the connection dies before the write reaches the wire
``partial_rate``   a strict prefix of the write is delivered, then death
                   (the peer is left holding a torn WebSocket frame)
``duplicate_rate`` the write is delivered twice (client retransmission
                   after an ack loss — the double-apply attack)
``reorder_rate``   the write is held and swapped with the next one
                   (re-delivery order after resume is not guaranteed)
``stall_rate``     ``drain`` sleeps a seeded delay first (a slow consumer
                   — the degradation-ladder trigger)
=================  ========================================================
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Optional, Tuple


class _Direction:
    """One direction of an in-memory duplex stream: a bounded byte buffer
    with EOF semantics and an async reader wakeup."""

    __slots__ = ("_buffer", "_eof", "_event")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._eof = False
        self._event = asyncio.Event()

    def feed(self, data: bytes) -> None:
        if self._eof or not data:
            return
        self._buffer += data
        self._event.set()

    def feed_eof(self) -> None:
        self._eof = True
        self._event.set()

    async def read(self, n: int = -1) -> bytes:
        while not self._buffer:
            if self._eof:
                return b""
            self._event.clear()
            await self._event.wait()
        if n is None or n < 0 or n >= len(self._buffer):
            data = bytes(self._buffer)
            self._buffer.clear()
        else:
            data = bytes(self._buffer[:n])
            del self._buffer[:n]
        return data

    def at_eof(self) -> bool:
        return self._eof and not self._buffer


class MemoryEndpoint:
    """One end of an in-memory duplex pipe, presenting the stream surface
    the gateway and its clients use (a ``StreamReader`` *and*
    ``StreamWriter`` in one object — pass it as both).

    ``close()`` half-closes like a TCP FIN (the peer's reads drain then
    EOF; its writes are discarded); ``abort()`` is the RST — both
    directions EOF immediately, pending readers wake up empty.
    """

    def __init__(self, inbox: _Direction, peer: "_Direction", name: str = "mem"):
        self._inbox = inbox
        self._peer_inbox = peer
        self._closed = False
        self.name = name

    # -- reader surface --------------------------------------------------

    async def read(self, n: int = -1) -> bytes:
        return await self._inbox.read(n)

    def at_eof(self) -> bool:
        return self._inbox.at_eof()

    # -- writer surface --------------------------------------------------

    def write(self, data: bytes) -> None:
        if self._closed:
            return
        self._peer_inbox.feed(bytes(data))

    async def drain(self) -> None:
        # yield so the peer's reader can run — keeps one chatty client
        # from monopolizing the event loop the way real sockets would not
        await asyncio.sleep(0)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer_inbox.feed_eof()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        await asyncio.sleep(0)

    def abort(self) -> None:
        self.close()
        self._inbox.feed_eof()

    def get_extra_info(self, name: str, default: Any = None) -> Any:
        if name == "peername":
            return ("memory", self.name)
        return default

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"MemoryEndpoint({self.name}, {state})"


def memory_pipe(name: str = "pipe") -> Tuple[MemoryEndpoint, MemoryEndpoint]:
    """A connected duplex pair ``(client_end, server_end)``."""
    a_to_b = _Direction()
    b_to_a = _Direction()
    client = MemoryEndpoint(b_to_a, a_to_b, name=f"{name}:client")
    server = MemoryEndpoint(a_to_b, b_to_a, name=f"{name}:server")
    return client, server


class ChaosTransport:
    """A seeded fault-injecting wrapper around a duplex endpoint (or a
    ``(reader, writer)`` pair — pass ``writer`` separately for real
    asyncio streams).  Use the wrapper itself as both reader and writer.

    All perturbation is on the write path (see the module docstring for
    the fault model); a fired drop or partial write kills the connection
    the way a mid-flight TCP reset would, and every subsequent operation
    raises :class:`ConnectionResetError` (writes) or returns EOF (reads).
    :meth:`kill` injects the same death externally — the storm trigger.

    The wrapper never reconnects; resurrection is the *client's* job
    (capped exponential backoff in
    :class:`~repro.runtime.gateway.GatewayClient`), which is the behavior
    under test.
    """

    def __init__(
        self,
        endpoint: Any,
        writer: Any = None,
        seed: int = 0,
        rng: Optional[random.Random] = None,
        drop_rate: float = 0.0,
        partial_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_ms: Tuple[float, float] = (1.0, 20.0),
    ):
        self._reader = endpoint
        self._writer = writer if writer is not None else endpoint
        self.rng = rng if rng is not None else random.Random(seed)
        self.drop_rate = drop_rate
        self.partial_rate = partial_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.stall_rate = stall_rate
        self.stall_ms = stall_ms
        self.dead = False
        self._held: Optional[bytes] = None
        self.stats: Dict[str, int] = {
            "writes": 0, "dropped": 0, "partial": 0, "duplicated": 0,
            "reordered": 0, "stalled": 0, "killed": 0,
        }

    # -- reader surface --------------------------------------------------

    async def read(self, n: int = -1) -> bytes:
        if self.dead:
            return b""
        return await self._reader.read(n)

    def at_eof(self) -> bool:
        if self.dead:
            return True
        at_eof = getattr(self._reader, "at_eof", None)
        return bool(at_eof()) if at_eof is not None else False

    # -- writer surface --------------------------------------------------

    def write(self, data: bytes) -> None:
        if self.dead:
            raise ConnectionResetError("chaos transport is dead")
        self.stats["writes"] += 1
        rng = self.rng
        if self.drop_rate and rng.random() < self.drop_rate:
            self.stats["dropped"] += 1
            self.kill()
            raise ConnectionResetError("chaos: connection dropped before write")
        if self.partial_rate and len(data) > 1 and rng.random() < self.partial_rate:
            cut = rng.randrange(1, len(data))
            self._writer.write(data[:cut])
            self.stats["partial"] += 1
            self.kill()
            raise ConnectionResetError(
                f"chaos: connection died {cut}/{len(data)} bytes into a write"
            )
        if self.reorder_rate and self._held is None and rng.random() < self.reorder_rate:
            # hold this write; it goes out *after* the next one
            self._held = bytes(data)
            self.stats["reordered"] += 1
            return
        self._writer.write(data)
        if self._held is not None:
            held, self._held = self._held, None
            self._writer.write(held)
        if self.duplicate_rate and rng.random() < self.duplicate_rate:
            self._writer.write(data)
            self.stats["duplicated"] += 1

    async def drain(self) -> None:
        if self.stall_rate and self.rng.random() < self.stall_rate:
            self.stats["stalled"] += 1
            low, high = self.stall_ms
            await asyncio.sleep(self.rng.uniform(low, high) / 1000.0)
        if self.dead:
            raise ConnectionResetError("chaos transport is dead")
        await self._writer.drain()

    def close(self) -> None:
        if self._held is not None:
            held, self._held = self._held, None
            if not self.dead:
                self._writer.write(held)
        self._writer.close()

    def is_closing(self) -> bool:
        return self.dead or self._writer.is_closing()

    async def wait_closed(self) -> None:
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def abort(self) -> None:
        self.kill()

    def get_extra_info(self, name: str, default: Any = None) -> Any:
        return self._writer.get_extra_info(name, default)

    # -- external fault injection ---------------------------------------

    def kill(self) -> None:
        """Hard-kill the connection (both directions, like a TCP RST):
        the peer sees EOF, local reads see EOF, local writes raise.  The
        storm driver calls this on live connections to trigger reconnect
        waves."""
        if self.dead:
            return
        self.dead = True
        self._held = None
        self.stats["killed"] += 1
        abort = getattr(self._writer, "abort", None)
        if abort is not None:
            abort()
        else:  # real StreamWriter: reach for the transport-level RST
            transport = getattr(self._writer, "transport", None)
            if transport is not None:
                transport.abort()
            else:  # pragma: no cover - defensive
                self._writer.close()
        feed_eof = getattr(self._reader, "feed_eof", None)
        if feed_eof is not None and self._reader is not self._writer:
            try:
                feed_eof()
            except Exception:  # pragma: no cover - reader already done
                pass

    def __repr__(self) -> str:
        state = "dead" if self.dead else "live"
        return f"ChaosTransport({state}, stats={self.stats})"
