"""Host substrate: event loops and simulated remote services.

The paper's HipHop.js runs inside JavaScript's event loop and talks to
remote services (the OAuth ``authenticateSvc``).  This package provides
the Python equivalents: a deterministic virtual-time loop for tests and
examples, an asyncio adapter for real deployments, and simulated services
with configurable latency.
"""

from repro.host.loop import SimulatedLoop, AsyncioLoop
from repro.host.services import AuthService, ServiceResponse

__all__ = ["SimulatedLoop", "AsyncioLoop", "AuthService", "ServiceResponse"]
