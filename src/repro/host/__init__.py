"""Host substrate: event loops, simulated remote services, supervision.

The paper's HipHop.js runs inside JavaScript's event loop and talks to
remote services (the OAuth ``authenticateSvc``).  This package provides
the Python equivalents: a deterministic virtual-time loop for tests and
examples, an asyncio adapter for real deployments, simulated services
with configurable latency *and failures* (:class:`FlakyService`), the
supervision combinators that tame them (:func:`with_timeout`,
:func:`with_retry`, :class:`CircuitBreaker`), and a seeded fault-injection
loop (:class:`ChaosLoop`) for chaos testing in virtual time.
"""

from repro.host.loop import SimulatedLoop, AsyncioLoop
from repro.host.services import AuthService, FlakyService, ServiceResponse
from repro.host.resilience import (
    CircuitBreaker,
    RetryPolicy,
    loop_now_ms,
    with_retry,
    with_timeout,
)
from repro.host.chaos import ChaosLoop, LoadGenerator, MachineCrasher, WorkerCrasher
from repro.host.netchaos import ChaosTransport, MemoryEndpoint, memory_pipe

__all__ = [
    "SimulatedLoop",
    "AsyncioLoop",
    "ChaosLoop",
    "MachineCrasher",
    "WorkerCrasher",
    "LoadGenerator",
    "ChaosTransport",
    "MemoryEndpoint",
    "memory_pipe",
    "AuthService",
    "FlakyService",
    "ServiceResponse",
    "CircuitBreaker",
    "RetryPolicy",
    "with_retry",
    "with_timeout",
    "loop_now_ms",
]
