"""Resilience overhead — the fault-tolerant authenticator (``MainR``:
retry + per-attempt timeout wrapped around the same ``Main`` orchestration)
must cost < 10% wall time on the fault-free fast path."""

import time

from repro.apps.login import (
    build_login_machine,
    build_resilient_login_machine,
    login_table,
)
from repro.host import AuthService, RetryPolicy, SimulatedLoop

ACCOUNTS = {"alice": "secret"}
CYCLES = 20  # login/session/logout gestures per scenario run


def _drive(machine, loop):
    machine.react({})
    machine.react({"name": "alice", "passwd": "secret"})
    for _ in range(CYCLES):
        machine.react({"login": True})
        loop.advance(200)  # reply lands, session starts
        loop.advance_seconds(2)  # session clock ticks
        machine.react({"logout": True})
    assert machine.connState.nowval == "disconnected"


def _scenario(builder, table):
    loop = SimulatedLoop()
    svc = AuthService(loop, ACCOUNTS, latency_ms=50)
    machine = builder(loop, svc, table)
    return machine, loop


def _time_scenario_ms(builder, table):
    machine, loop = _scenario(builder, table)
    start = time.perf_counter()
    _drive(machine, loop)
    return (time.perf_counter() - start) * 1000.0


def _build_plain(loop, svc, table):
    return build_login_machine(loop, svc, table=table)


def _build_resilient(loop, svc, table):
    return build_resilient_login_machine(
        loop, svc, table=table,
        retry_policy=RetryPolicy(max_attempts=4, base_delay_ms=200.0),
        timeout_ms=2_000,
    )


def measure_overhead(rounds=25):
    """Best wall time of the same gesture workload on ``Main`` vs
    ``MainR``; returns (plain_ms, resilient_ms, overhead_fraction).

    The two variants are interleaved round by round (so clock-speed drift
    hits both) and the minimum is compared — the standard estimator when
    the noise is strictly additive scheduler/container jitter."""
    table = login_table()
    # warm both paths (imports, parse caches) before timing
    _time_scenario_ms(_build_plain, table)
    _time_scenario_ms(_build_resilient, table)
    plain, resilient = [], []
    for _ in range(rounds):
        plain.append(_time_scenario_ms(_build_plain, table))
        resilient.append(_time_scenario_ms(_build_resilient, table))
    best_plain, best_resilient = min(plain), min(resilient)
    return best_plain, best_resilient, (best_resilient - best_plain) / best_plain


def test_fast_path_overhead_under_ten_percent():
    # one re-measure on a miss: the gate is for regressions, not for
    # container scheduler spikes
    plain, resilient, overhead = measure_overhead()
    if overhead >= 0.10:
        plain, resilient, overhead = min(
            (plain, resilient, overhead), measure_overhead(), key=lambda m: m[2]
        )
    assert overhead < 0.10, (
        f"resilience overhead {overhead:.1%} (plain {plain:.2f} ms, "
        f"resilient {resilient:.2f} ms)"
    )


def test_identical_observable_behaviour_on_fast_path():
    table = login_table()
    logs = []
    for builder in (_build_plain, _build_resilient):
        machine, loop = _scenario(builder, table)
        states = []
        machine.add_listener("connState", states.append)
        _drive(machine, loop)
        logs.append(states)
    assert logs[0] == logs[1]


if __name__ == "__main__":
    plain, resilient, overhead = measure_overhead()
    print(f"plain Main:      {plain:8.2f} ms / {CYCLES} login cycles")
    print(f"resilient MainR: {resilient:8.2f} ms / {CYCLES} login cycles")
    print(f"overhead:        {overhead:8.1%} (budget 10%)")
