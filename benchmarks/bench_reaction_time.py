"""E6 — reaction time is ≈ linear in circuit size, and even the largest
Skini score reacts far inside the 300 ms musical pulse (paper §5.3: "the
HipHop.js reaction time never exceeds 15ms").  Both reaction backends
are measured; the levelized plan must beat the worklist by ≥2× on the
largest steady-state Skini workload (see docs/performance.md), and the
per-backend medians are recorded in BENCH_reaction.json."""

import json
import time
from pathlib import Path

import pytest

from repro import ReactiveMachine, compile_module
from repro.apps.skini import Audience, Performance, make_large_score
from workloads import compiled_machine, drive_steady_state, fit_slope

SIZES = (2, 8, 32, 64)
BACKENDS = ("worklist", "levelized", "sparse")
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_reaction.json"


def _update_bench_json(section, payload):
    """Merge one section into BENCH_reaction.json (tests may run alone)."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("units", SIZES)
def test_reaction(benchmark, units, backend):
    machine = compiled_machine(units, backend=backend)
    inputs = drive_steady_state(machine)
    benchmark(lambda: machine.react(inputs))


def _median_reaction_ms(machine, inputs, rounds=30):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        machine.react(inputs)
        samples.append((time.perf_counter() - start) * 1000.0)
    samples.sort()
    return samples[len(samples) // 2]


def test_reaction_time_linear_in_circuit_size():
    nets, times = [], []
    for units in SIZES:
        machine = compiled_machine(units)
        inputs = drive_steady_state(machine)
        nets.append(machine.stats()["nets"])
        times.append(_median_reaction_ms(machine, inputs))
    _slope, corr = fit_slope(nets, times)
    assert corr > 0.95, f"reaction time not linear in nets: {list(zip(nets, times))}"


def test_largest_score_within_pulse_budget(benchmark):
    """The paper's headline: the largest available score reacts in <=15 ms
    against a 300 ms pulse.  We build a comparable-scale score and require
    the same two orders of safety margin shape (well under the budget)."""
    score = make_large_score(sections=60, groups_per_section=5, patterns_per_group=6)
    perf = Performance(score, Audience(size=0))
    perf.step()
    group = score.groups[0]
    inputs = {"seconds": 1, "second": True}
    benchmark(lambda: perf.machine.react(inputs))
    median = _median_reaction_ms(perf.machine, inputs, rounds=20)
    assert median < 300.0, f"pulse budget blown: {median:.2f} ms"
    assert median < 50.0, f"expected a wide safety margin, got {median:.2f} ms"


def test_live_performance_latency_distribution():
    score = make_large_score(sections=20, groups_per_section=4)
    perf = Performance(score, Audience(size=60, eagerness=0.5, seed=5))
    perf.run(120)
    assert perf.reaction_times_ms, "performance produced no reactions"
    assert perf.max_reaction_ms() < 300.0


def test_levelized_speedup_on_largest_score():
    """The tentpole claim: on the largest steady-state Skini workload the
    levelized straight-line backend reacts ≥2× faster (median) than the
    worklist.  The per-backend medians land in BENCH_reaction.json for
    machine consumption (CI trend lines, the performance doc)."""
    score = make_large_score(sections=60, groups_per_section=5, patterns_per_group=6)
    inputs = {"seconds": 1, "second": True}
    medians = {}
    stats = {}
    for backend in BACKENDS:
        perf = Performance(score, Audience(size=0), backend=backend)
        assert perf.machine.backend == backend
        perf.step()
        # settle into steady state before sampling
        _median_reaction_ms(perf.machine, inputs, rounds=10)
        medians[backend] = _median_reaction_ms(perf.machine, inputs, rounds=40)
        stats[backend] = dict(perf.machine.stats())

    speedup = medians["worklist"] / medians["levelized"]
    _update_bench_json(
        "levelized_vs_worklist",
        {
            "workload": "skini-large-score-steady-state",
            "sections": 60,
            "groups_per_section": 5,
            "patterns_per_group": 6,
            "circuit": stats["levelized"],
            "median_reaction_ms": medians,
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= 2.0, (
        f"levelized backend only {speedup:.2f}x faster "
        f"(worklist {medians['worklist']:.3f} ms, "
        f"levelized {medians['levelized']:.3f} ms)"
    )


def test_sparse_speedup_on_one_changed_input():
    """The PR-3 tentpole claim: when a steady-state reaction changes a
    single input, the sparse dirty-cone backend only evaluates that
    input's cone and reacts ≥5× faster (median) than the full levelized
    sweep.  The workload alternates the presence of one group input on
    the largest Skini score while the clock inputs stay constant, so
    exactly one input changes per reaction."""
    score = make_large_score(sections=60, groups_per_section=5, patterns_per_group=6)

    def toggled(step):
        inputs = {"seconds": 1, "second": True}
        if step % 2 == 0:
            inputs["S10G0In"] = True
        return inputs

    def median_alternating(machine, rounds):
        samples = []
        for step in range(rounds):
            inputs = toggled(step)
            start = time.perf_counter()
            machine.react(inputs)
            samples.append((time.perf_counter() - start) * 1000.0)
        samples.sort()
        return samples[len(samples) // 2]

    medians = {}
    sparse_counters = {}
    for backend in ("levelized", "sparse"):
        perf = Performance(score, Audience(size=0), backend=backend)
        assert perf.machine.backend == backend
        perf.step()
        median_alternating(perf.machine, rounds=10)  # settle
        medians[backend] = median_alternating(perf.machine, rounds=40)
        if backend == "sparse":
            sched = perf.machine._scheduler
            sparse_counters = {
                "sparse_reactions": sched.sparse_reactions,
                "full_reactions": sched.full_reactions,
            }

    speedup = medians["levelized"] / medians["sparse"]
    _update_bench_json(
        "sparse_one_changed_input",
        {
            "workload": "skini-large-score-one-toggled-input",
            "toggled_input": "S10G0In",
            "median_reaction_ms": medians,
            "speedup": round(speedup, 2),
            **sparse_counters,
        },
    )
    # steady state must actually stay on the sparse path
    assert sparse_counters["sparse_reactions"] > sparse_counters["full_reactions"]
    assert speedup >= 5.0, (
        f"sparse backend only {speedup:.2f}x faster "
        f"(levelized {medians['levelized']:.3f} ms, "
        f"sparse {medians['sparse']:.3f} ms)"
    )
