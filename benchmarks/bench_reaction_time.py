"""E6 — reaction time is ≈ linear in circuit size, and even the largest
Skini score reacts far inside the 300 ms musical pulse (paper §5.3: "the
HipHop.js reaction time never exceeds 15ms").  Both reaction backends
are measured; the levelized plan must beat the worklist by ≥2× on the
largest steady-state Skini workload (see docs/performance.md), and the
per-backend medians are recorded in BENCH_reaction.json."""

import json
import time
from pathlib import Path

import pytest

from repro import ReactiveMachine, compile_module
from repro.apps.skini import Audience, Performance, make_large_score
from workloads import compiled_machine, drive_steady_state, fit_slope

SIZES = (2, 8, 32, 64)
BACKENDS = ("worklist", "levelized")
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_reaction.json"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("units", SIZES)
def test_reaction(benchmark, units, backend):
    machine = compiled_machine(units, backend=backend)
    inputs = drive_steady_state(machine)
    benchmark(lambda: machine.react(inputs))


def _median_reaction_ms(machine, inputs, rounds=30):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        machine.react(inputs)
        samples.append((time.perf_counter() - start) * 1000.0)
    samples.sort()
    return samples[len(samples) // 2]


def test_reaction_time_linear_in_circuit_size():
    nets, times = [], []
    for units in SIZES:
        machine = compiled_machine(units)
        inputs = drive_steady_state(machine)
        nets.append(machine.stats()["nets"])
        times.append(_median_reaction_ms(machine, inputs))
    _slope, corr = fit_slope(nets, times)
    assert corr > 0.95, f"reaction time not linear in nets: {list(zip(nets, times))}"


def test_largest_score_within_pulse_budget(benchmark):
    """The paper's headline: the largest available score reacts in <=15 ms
    against a 300 ms pulse.  We build a comparable-scale score and require
    the same two orders of safety margin shape (well under the budget)."""
    score = make_large_score(sections=60, groups_per_section=5, patterns_per_group=6)
    perf = Performance(score, Audience(size=0))
    perf.step()
    group = score.groups[0]
    inputs = {"seconds": 1, "second": True}
    benchmark(lambda: perf.machine.react(inputs))
    median = _median_reaction_ms(perf.machine, inputs, rounds=20)
    assert median < 300.0, f"pulse budget blown: {median:.2f} ms"
    assert median < 50.0, f"expected a wide safety margin, got {median:.2f} ms"


def test_live_performance_latency_distribution():
    score = make_large_score(sections=20, groups_per_section=4)
    perf = Performance(score, Audience(size=60, eagerness=0.5, seed=5))
    perf.run(120)
    assert perf.reaction_times_ms, "performance produced no reactions"
    assert perf.max_reaction_ms() < 300.0


def test_levelized_speedup_on_largest_score():
    """The tentpole claim: on the largest steady-state Skini workload the
    levelized straight-line backend reacts ≥2× faster (median) than the
    worklist.  The per-backend medians land in BENCH_reaction.json for
    machine consumption (CI trend lines, the performance doc)."""
    score = make_large_score(sections=60, groups_per_section=5, patterns_per_group=6)
    inputs = {"seconds": 1, "second": True}
    medians = {}
    stats = {}
    for backend in BACKENDS:
        perf = Performance(score, Audience(size=0), backend=backend)
        assert perf.machine.backend == backend
        perf.step()
        # settle into steady state before sampling
        _median_reaction_ms(perf.machine, inputs, rounds=10)
        medians[backend] = _median_reaction_ms(perf.machine, inputs, rounds=40)
        stats[backend] = dict(perf.machine.stats())

    speedup = medians["worklist"] / medians["levelized"]
    BENCH_JSON.write_text(
        json.dumps(
            {
                "workload": "skini-large-score-steady-state",
                "sections": 60,
                "groups_per_section": 5,
                "patterns_per_group": 6,
                "circuit": stats["levelized"],
                "median_reaction_ms": medians,
                "speedup": round(speedup, 2),
            },
            indent=2,
        )
        + "\n"
    )
    assert speedup >= 2.0, (
        f"levelized backend only {speedup:.2f}x faster "
        f"(worklist {medians['worklist']:.3f} ms, "
        f"levelized {medians['levelized']:.3f} ms)"
    )
