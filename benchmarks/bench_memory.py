"""E4 + E5 — memory footprints (paper §5.3).

Paper figures: each net is a JavaScript object of 192-216 bytes; the
Lisinopril program compiles to 399 nets ≈ 86 KB; a large Skini score
reaches ~10,000 nets ≈ 2.1 MB.  Absolute bytes differ between V8 and
CPython; the claims we reproduce are the *per-net linearity* of memory
and the relative scale pillbox ≪ large score."""

import pytest

from repro import compile_module
from repro.apps.pillbox import pillbox_table
from repro.apps.skini import make_large_score
from repro.apps.skini.score import generate_score_module


def _pillbox_circuit():
    table = pillbox_table()
    return compile_module(table.get("Lisinopril"), table).circuit


def _score_circuit(sections):
    module, table = generate_score_module(
        make_large_score(sections=sections, groups_per_section=5, patterns_per_group=6)
    )
    return compile_module(module, table).circuit


def test_pillbox_footprint(benchmark):
    circuit = _pillbox_circuit()
    size = benchmark(circuit.memory_estimate)
    nets = circuit.stats()["nets"]
    # paper order of magnitude: hundreds of nets, tens of KB
    assert 100 <= nets <= 2000, nets
    assert size / nets < 1000, "per-net footprint should be a few hundred bytes"


def test_large_score_footprint(benchmark):
    circuit = _score_circuit(sections=60)
    size = benchmark(circuit.memory_estimate)
    nets = circuit.stats()["nets"]
    assert nets > 3000, nets  # thousands of nets, like the paper's scores
    pill = _pillbox_circuit()
    # relative scale: the big score dwarfs the pillbox, memory scales along
    ratio_nets = nets / pill.stats()["nets"]
    ratio_bytes = size / pill.memory_estimate()
    assert ratio_nets > 5
    assert 0.3 < ratio_bytes / ratio_nets < 3.0, (
        "memory should scale ~linearly with nets: "
        f"nets x{ratio_nets:.1f} vs bytes x{ratio_bytes:.1f}"
    )


def test_bytes_per_net_stable_across_programs():
    """The paper's per-net byte figure is program-independent; ours must
    be too (within 2x across very different programs)."""
    per_net = []
    for circuit in (_pillbox_circuit(), _score_circuit(sections=20)):
        per_net.append(circuit.memory_estimate() / circuit.stats()["nets"])
    assert max(per_net) < 2 * min(per_net), per_net


def test_per_machine_state_is_a_fraction_of_the_shared_plan():
    """With the structural compile cache, N machines of one module share
    the circuit + evaluation plan; each extra machine only pays its
    mutable state (value/register buffers, signal slots, exec slots).
    The split is what ``MachineFleet.memory_report()`` reports — the
    per-machine increment must be a small fraction of the shared part."""
    from repro import compile_cached
    from repro.apps.pillbox import pillbox_table
    from repro.apps.skini import participant_module

    table = pillbox_table()
    for module, mods in (
        (participant_module(), None),
        (table.get("Lisinopril"), table),
    ):
        compiled = compile_cached(module, mods)
        shared = compiled.circuit.memory_estimate()
        shared += compiled.evaluation_plan().memory_estimate()
        per_machine = compiled.circuit.per_machine_state_estimate()
        assert per_machine > 0
        assert per_machine < shared / 3, (
            f"{compiled.circuit.name}: per-machine state {per_machine} B "
            f"should be well under the shared footprint {shared} B"
        )
