"""E3 + ablation A2 — "quadratic expansion can occur in special cases,
due to ... reincarnation" (paper §5.3).

Nested loops with local signals force loop-body duplication; circuit size
grows super-linearly (geometrically in the nesting depth).  The A2
ablation compares the duplication policies: `never` stays linear but is
*semantically wrong* for these programs; `auto` pays only where needed."""

import pytest

from repro import CompileOptions, compile_module
from workloads import schizo_module

DEPTHS = (0, 1, 2, 3, 4)


def _nets(depth, policy="auto"):
    return compile_module(
        schizo_module(depth), options=CompileOptions(loop_duplication=policy)
    ).stats()["nets"]


@pytest.mark.parametrize("depth", DEPTHS)
def test_compile_nested(benchmark, depth):
    module = schizo_module(depth)
    nets = benchmark(lambda: compile_module(module).stats()["nets"])
    assert nets > 0


def test_quadratic_growth_with_nesting():
    sizes = [_nets(d) for d in DEPTHS]
    # super-linear: each extra nesting level roughly doubles the circuit
    growth = [b / a for a, b in zip(sizes, sizes[1:])]
    assert all(g > 1.5 for g in growth[1:]), f"growth not super-linear: {sizes}"
    # and clearly faster than the linear `never` policy
    flat = [_nets(d, "never") for d in DEPTHS]
    assert sizes[-1] > flat[-1] * 2, (sizes, flat)


def test_ablation_policies_ordering():
    """A2: never <= auto <= always at every depth."""
    for depth in DEPTHS[:4]:
        never = _nets(depth, "never")
        auto = _nets(depth, "auto")
        always = _nets(depth, "always")
        assert never <= auto <= always, (depth, never, auto, always)


def test_auto_only_pays_when_needed():
    """A plain (non-schizophrenic) program compiles identically under
    `auto` and `never` — duplication is targeted, not blanket."""
    from workloads import linear_module

    module = linear_module(8)
    auto = compile_module(module, options=CompileOptions(loop_duplication="auto"))
    never = compile_module(module, options=CompileOptions(loop_duplication="never"))
    assert auto.stats()["nets"] == never.stats()["nets"]
